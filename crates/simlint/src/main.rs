//! `cargo run -p simlint` — run every repo invariant check and exit
//! non-zero on any finding. See the crate docs (`src/lib.rs`) and
//! `crates/core/LOCKS.md` for what is enforced.

use std::process::ExitCode;

fn main() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot determine current directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = simlint::find_root(&cwd) else {
        eprintln!(
            "simlint: no workspace root found walking up from {} (looked for crates/core/LOCKS.md)",
            cwd.display()
        );
        return ExitCode::FAILURE;
    };
    let report = simlint::run_all(&root);
    if report.findings.is_empty() {
        println!(
            "simlint: clean — {} files checked (lock hierarchy, blocking denylist, wire tags, stats, unsafe hygiene)",
            report.files_scanned
        );
        return ExitCode::SUCCESS;
    }
    for f in &report.findings {
        eprintln!("{f}");
    }
    eprintln!("simlint: {} finding(s)", report.findings.len());
    ExitCode::FAILURE
}
