//! Least-Recently-Used: the baseline recency policy (§III-D).

use crate::order::KeyedList;
use crate::{PinFn, Policy};

/// Classic LRU over a hash-indexed linked list; O(1) per operation,
/// pinned entries skipped at eviction time.
#[derive(Clone, Debug, Default)]
pub struct Lru {
    order: KeyedList,
}

impl Lru {
    /// An empty LRU policy.
    pub fn new() -> Self {
        Lru {
            order: KeyedList::new(),
        }
    }

    /// Keys from least to most recently used (test/diagnostic aid).
    pub fn recency_order(&self) -> Vec<u64> {
        self.order.iter_back_to_front().collect()
    }
}

impl Policy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn contains(&self, key: u64) -> bool {
        self.order.contains(key)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn on_hit(&mut self, key: u64) {
        let present = self.order.move_to_front(key);
        assert!(present, "LRU hit on non-resident key {key}");
    }

    fn on_insert(&mut self, key: u64, _cost: u64) {
        self.order.push_front(key);
    }

    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
        let victim = self.order.iter_back_to_front().find(|&k| !pinned(k))?;
        self.order.remove(victim);
        Some(victim)
    }

    fn on_remove(&mut self, key: u64) {
        self.order.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_PIN: fn(u64) -> bool = |_| false;

    #[test]
    fn evicts_least_recent() {
        let mut p = Lru::new();
        for k in [1, 2, 3] {
            p.on_insert(k, 0);
        }
        assert_eq!(p.evict(&NO_PIN), Some(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hit_refreshes_recency() {
        let mut p = Lru::new();
        for k in [1, 2, 3] {
            p.on_insert(k, 0);
        }
        p.on_hit(1);
        assert_eq!(p.evict(&NO_PIN), Some(2));
    }

    #[test]
    fn eviction_skips_pinned() {
        let mut p = Lru::new();
        for k in [1, 2, 3] {
            p.on_insert(k, 0);
        }
        let pin = |k: u64| k == 1;
        assert_eq!(p.evict(&pin), Some(2));
    }

    #[test]
    fn all_pinned_returns_none() {
        let mut p = Lru::new();
        p.on_insert(1, 0);
        assert_eq!(p.evict(&|_| true), None);
        assert_eq!(p.len(), 1, "nothing was removed");
    }

    #[test]
    fn remove_is_idempotent() {
        let mut p = Lru::new();
        p.on_insert(1, 0);
        p.on_remove(1);
        p.on_remove(1);
        assert!(!p.contains(1));
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-resident")]
    fn hit_on_absent_key_panics() {
        let mut p = Lru::new();
        p.on_hit(9);
    }
}
