//! ECMWF-like synthetic archival trace.
//!
//! The paper replays a trace of the ECMWF ECFS archival system
//! (Grawinkel et al., FAST'15): "The resulting trace accesses 874
//! different files for a total of 659,989 times." The raw trace is not
//! publicly redistributable, so this module synthesizes a stream with
//! the same aggregate shape:
//!
//! * **Popularity skew** — archival access frequency is classically
//!   Zipf-distributed: rank-`r` file drawing probability ∝ `1/r^theta`.
//!   We default to `theta = 0.9`, the skew regime reported for archive
//!   workloads in the FAST'15 study.
//! * **Session bursts** — users retrieve runs of consecutive model
//!   outputs: with probability `session_p` the next access continues a
//!   sequential session from the current file instead of an independent
//!   Zipf draw.
//! * **Popularity-rank shuffling** — hot files are spread over the
//!   timeline rather than clustered at step 0.
//!
//! What matters for the cache experiments is reuse structure (skew +
//! bursts), not which particular files are hot; see DESIGN.md §3.

use crate::Trace;
use rand::Rng;
use simkit::SimRng;

/// Parameters of the synthetic archival trace.
#[derive(Clone, Debug)]
pub struct EcmwfSpec {
    /// Number of distinct files touched (paper: 874).
    pub n_files: u64,
    /// Total number of accesses (paper: 659,989).
    pub n_accesses: u64,
    /// Zipf exponent of the popularity distribution.
    pub theta: f64,
    /// Probability that an access continues a sequential session.
    pub session_p: f64,
}

impl Default for EcmwfSpec {
    fn default() -> Self {
        EcmwfSpec {
            n_files: 874,
            n_accesses: 659_989,
            theta: 0.9,
            session_p: 0.6,
        }
    }
}

impl EcmwfSpec {
    /// A spec with the paper's published file/access counts but a
    /// reduced access count, for fast tests.
    pub fn scaled(n_accesses: u64) -> Self {
        EcmwfSpec {
            n_accesses,
            ..Default::default()
        }
    }

    /// Generates the trace over a timeline of `n_files` steps. The
    /// produced step keys are `0..n_files`.
    pub fn generate(&self, rng: &mut SimRng) -> Trace {
        assert!(self.n_files > 0, "need at least one file");
        assert!(self.theta >= 0.0, "Zipf exponent must be non-negative");
        assert!(
            (0.0..1.0).contains(&self.session_p),
            "session probability in [0,1)"
        );

        let zipf = ZipfSampler::new(self.n_files, self.theta);
        // Map popularity rank -> step id, shuffled so hot steps are
        // scattered across the timeline (Fisher-Yates).
        let mut rank_to_step: Vec<u64> = (0..self.n_files).collect();
        for i in (1..rank_to_step.len()).rev() {
            let j = rng.gen_range(0..=i);
            rank_to_step.swap(i, j);
        }

        let mut steps = Vec::with_capacity(self.n_accesses as usize);
        let mut session_cursor: Option<u64> = None;
        for _ in 0..self.n_accesses {
            let continue_session =
                session_cursor.is_some() && rng.gen_bool(self.session_p);
            let step = if continue_session {
                (session_cursor.unwrap() + 1) % self.n_files
            } else {
                let rank = zipf.sample(rng);
                rank_to_step[rank as usize]
            };
            session_cursor = Some(step);
            steps.push(step);
        }
        Trace::single(steps)
    }
}

/// Inverse-CDF Zipf sampler over ranks `0..n` with exponent `theta`.
///
/// Precomputes the cumulative mass; sampling is a binary search —
/// O(log n) per draw, exact (no rejection), deterministic given the RNG.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. `theta == 0` degenerates to uniform.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for x in &mut cdf {
            *x /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // First index with cdf >= u.
        let mut lo = 0usize;
        let mut hi = self.cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SeedSeq;
    use std::collections::HashMap;

    #[test]
    fn zipf_rank0_is_most_popular() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SeedSeq::new(1).rng(0);
        let mut counts = vec![0u64; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Zipf(1.0): rank 0 ≈ 2x rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SeedSeq::new(2).rng(0);
        let mut counts = vec![0u64; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "not uniform: {counts:?}");
    }

    #[test]
    fn trace_matches_published_file_count() {
        let spec = EcmwfSpec::scaled(20_000);
        let mut rng = SeedSeq::new(3).rng(0);
        let t = spec.generate(&mut rng);
        assert_eq!(t.len(), 20_000);
        // All steps within the 874-file universe.
        assert!(t.accesses.iter().all(|a| a.step < 874));
        // With 20k accesses and theta=0.9 skew + sessions, most files get
        // touched.
        assert!(t.distinct_steps() > 500);
    }

    #[test]
    fn trace_is_skewed() {
        let spec = EcmwfSpec::scaled(50_000);
        let mut rng = SeedSeq::new(4).rng(0);
        let t = spec.generate(&mut rng);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for a in &t.accesses {
            *freq.entry(a.step).or_default() += 1;
        }
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // Top-10% of files take far more than 10% of accesses.
        let top = counts.iter().take(counts.len() / 10).sum::<u64>() as f64;
        assert!(
            top / 50_000.0 > 0.25,
            "expected skew, top decile has {:.1}%",
            top / 500.0
        );
    }

    #[test]
    fn trace_has_sequential_sessions() {
        let spec = EcmwfSpec::scaled(20_000);
        let mut rng = SeedSeq::new(5).rng(0);
        let t = spec.generate(&mut rng);
        let seq = t
            .accesses
            .windows(2)
            .filter(|w| w[1].step == (w[0].step + 1) % 874)
            .count() as f64;
        let frac = seq / (t.len() - 1) as f64;
        assert!(
            (0.4..0.8).contains(&frac),
            "session fraction {frac} outside expectation"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = EcmwfSpec::scaled(5_000);
        let a = spec.generate(&mut SeedSeq::new(6).rng(0));
        let b = spec.generate(&mut SeedSeq::new(6).rng(0));
        assert_eq!(a, b);
        let c = spec.generate(&mut SeedSeq::new(7).rng(0));
        assert_ne!(a, c);
    }

    #[test]
    fn default_matches_paper_statistics() {
        let spec = EcmwfSpec::default();
        assert_eq!(spec.n_files, 874);
        assert_eq!(spec.n_accesses, 659_989);
    }
}
