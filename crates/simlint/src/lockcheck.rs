//! Lock-order and blocking-denylist enforcement over source text.
//!
//! The scanner walks the token stream of each file listed in the
//! registry, tracking which documented locks are held at every point:
//!
//! * An acquisition site is an identifier matching a row's receiver,
//!   followed by a chain of field accesses (`.ident`), tuple indices
//!   (`.0`), calls and index expressions, ending in `.method(` where
//!   `method` matches the row (or any method for a `*` matcher).
//! * Chaining `.unwrap(` / `.expect(` / `.unwrap_or_else(` after the
//!   lock method preserves the guard (std poison handling).
//! * If the expression continues past that (more method calls, `?`),
//!   the guard is a **statement temporary**: it expires at the `;`
//!   that ends the statement, or when the enclosing brace closes.
//! * Otherwise, if the statement began with `let [mut] name =`, the
//!   guard is **bound** to `name`: it lives until the enclosing brace
//!   closes or an explicit `drop(name)`.
//!
//! While any lock is held, acquiring a lock of **equal or higher**
//! level is an order violation. While any `blocking: no` lock is held,
//! a call to a denylist token is an Effects-outbox violation.

use crate::lexer::{self, Tok, Token};
use crate::registry::Registry;
use crate::Finding;

/// One tracked held lock.
struct HeldLock {
    /// Index into `reg.rows`.
    row: usize,
    /// Line of the acquisition, for diagnostics.
    line: u32,
    /// `Some(name)` for a let-bound guard, `None` for a temporary.
    binding: Option<String>,
    /// Brace depth at the acquisition site.
    depth: usize,
}

const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Walks a receiver chain starting at the token *after* the receiver
/// ident. Returns `(method_name, index_of_open_paren)` for the first
/// chain segment that is a method call matching `methods` (any call if
/// `star`), or `None` if the chain ends first.
fn walk_chain(
    toks: &[Token],
    mut j: usize,
    methods: &[&str],
    star: bool,
) -> Option<(String, usize)> {
    loop {
        match toks.get(j).map(|t| &t.tok) {
            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => j = lexer::skip_balanced(toks, j),
            Some(Tok::Punct('?')) => j += 1,
            Some(Tok::Punct('.')) => match toks.get(j + 1).map(|t| &t.tok) {
                Some(Tok::Num(_)) => j += 2,
                Some(Tok::Ident(m)) => {
                    let is_call = matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('(')));
                    if is_call && (star || methods.iter().any(|w| w == m)) {
                        return Some((m.clone(), j + 2));
                    }
                    j += 2;
                }
                _ => return None,
            },
            _ => return None,
        }
    }
}

/// After the matched method's argument list, skips guard-preserving
/// `.unwrap()`-family calls and reports whether the expression
/// continues (→ temporary) or ends (→ bindable).
fn guard_is_consumed(toks: &[Token], open_paren: usize) -> bool {
    let mut k = lexer::skip_balanced(toks, open_paren);
    loop {
        if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct('.'))) {
            if let Some(Tok::Ident(m)) = toks.get(k + 1).map(|t| &t.tok) {
                if GUARD_PRESERVING.iter().any(|w| w == m)
                    && matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::Punct('(')))
                {
                    k = lexer::skip_balanced(toks, k + 2);
                    continue;
                }
            }
            return true; // further chaining consumes the guard
        }
        return matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct('?')));
    }
}

/// Scans one file's source against the registry. `file_label` is the
/// repo-relative path: it selects which rows apply and prefixes the
/// diagnostics.
pub fn check_source(file_label: &str, src: &str, reg: &Registry) -> Vec<Finding> {
    let applicable: Vec<usize> = reg
        .rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.files.iter().any(|f| f == file_label))
        .map(|(i, _)| i)
        .collect();
    if applicable.is_empty() {
        return Vec::new();
    }
    let (toks, _) = lexer::lex(src);
    let mut findings = Vec::new();
    let mut held: Vec<HeldLock> = Vec::new();
    let mut depth = 0usize;
    // The binding of the statement currently being scanned, if it
    // started with `let [mut] name =` / `let [mut] name:`.
    let mut stmt_let: Option<String> = None;
    let mut i = 0usize;

    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                // Closing a brace ends every guard scoped deeper, and
                // ends temporaries at this depth too: a `}` returning
                // to the temporary's depth closes the statement that
                // spawned it (`match x.lock() { .. }`, `if let ... {}`)
                // — bound guards live on to their scope's end.
                held.retain(|h| h.depth < depth || (h.depth == depth && h.binding.is_some()));
                i += 1;
            }
            Tok::Punct(';') => {
                held.retain(|h| h.binding.is_some() || h.depth < depth);
                stmt_let = None;
                i += 1;
            }
            Tok::Ident(w) if w == "let" => {
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mut") {
                    j += 1;
                }
                if let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) {
                    if matches!(
                        toks.get(j + 1).map(|t| &t.tok),
                        Some(Tok::Punct('=')) | Some(Tok::Punct(':'))
                    ) {
                        stmt_let = Some(name.clone());
                    }
                }
                i += 1;
            }
            Tok::Ident(w) if w == "drop" => {
                if let (Some(Tok::Punct('(')), Some(Tok::Ident(name)), Some(Tok::Punct(')'))) = (
                    toks.get(i + 1).map(|t| &t.tok),
                    toks.get(i + 2).map(|t| &t.tok),
                    toks.get(i + 3).map(|t| &t.tok),
                ) {
                    held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                }
                i += 1;
            }
            Tok::Ident(w) if reg.denylist.iter().any(|d| d == w) => {
                let is_call = matches!(
                    toks.get(i + 1).map(|t| &t.tok),
                    Some(Tok::Punct('(')) | Some(Tok::Punct(':'))
                );
                if is_call {
                    for h in held.iter().filter(|h| !reg.rows[h.row].blocking) {
                        findings.push(Finding::new(
                            "blocking-under-lock",
                            file_label,
                            toks[i].line as usize,
                            format!(
                                "call to denylisted `{}` while holding {:?} (level {}, blocking: no; acquired line {}) — collect under the lock, effect after release",
                                w,
                                reg.rows[h.row].name,
                                reg.rows[h.row].level,
                                h.line
                            ),
                        ));
                    }
                }
                i += 1;
            }
            Tok::Ident(recv) => {
                // Acquisition site? Gather methods for this receiver.
                let mut methods: Vec<&str> = Vec::new();
                let mut star = false;
                let mut row_for_method: Vec<(usize, Option<&str>)> = Vec::new();
                for &ri in &applicable {
                    for m in &reg.rows[ri].matchers {
                        if m.receiver == *recv {
                            match &m.method {
                                None => {
                                    star = true;
                                    row_for_method.push((ri, None));
                                }
                                Some(meth) => {
                                    methods.push(meth);
                                    row_for_method.push((ri, Some(meth)));
                                }
                            }
                        }
                    }
                }
                if row_for_method.is_empty() {
                    i += 1;
                    continue;
                }
                let Some((method, open)) = walk_chain(&toks, i + 1, &methods, star) else {
                    i += 1;
                    continue;
                };
                let row = row_for_method
                    .iter()
                    .find(|(_, m)| *m == Some(method.as_str()))
                    .or_else(|| row_for_method.iter().find(|(_, m)| m.is_none()))
                    .map(|(ri, _)| *ri);
                let Some(row) = row else {
                    i += 1;
                    continue;
                };
                let line = toks[i].line;
                for h in &held {
                    if reg.rows[row].level >= reg.rows[h.row].level {
                        findings.push(Finding::new(
                            "lock-order",
                            file_label,
                            line as usize,
                            format!(
                                "acquired {:?} (level {}) while holding {:?} (level {}, line {}); a new lock must be strictly below every held level",
                                reg.rows[row].name,
                                reg.rows[row].level,
                                reg.rows[h.row].name,
                                reg.rows[h.row].level,
                                h.line
                            ),
                        ));
                    }
                }
                let binding = if guard_is_consumed(&toks, open) {
                    None
                } else {
                    stmt_let.clone()
                };
                held.push(HeldLock {
                    row,
                    line,
                    binding,
                    depth,
                });
                // Resume inside the argument list so nested
                // acquisitions are seen with this lock held.
                i = open;
            }
            _ => i += 1,
        }
    }
    findings
}
