//! Prefetch agents (§IV-B): one per analysis client.
//!
//! The agent watches the client's access stream, detects forward or
//! backward k-strided trajectories "after two k-stride consecutive
//! accesses", and plans re-simulations that (1) mask the restart latency
//! and (2) match the analysis bandwidth:
//!
//! * **Re-simulation length** (§IV-B1a): enough accesses must fit into
//!   one block to cover the next restart latency, reserving two accesses
//!   to confirm the pattern —
//!   `n = ⌈alpha / max(k·tau_sim, tau_cli) + 2⌉ · k`, rounded up to a
//!   restart-interval multiple.
//! * **Prefetch trigger** (§IV-B1a): a new batch is launched at the last
//!   access that still masks the restart latency — when the remaining
//!   planned coverage drops to `⌈alpha / max(k·tau_sim, tau_cli)⌉ · k`
//!   steps.
//! * **Bandwidth matching** (§IV-B1b): if the analysis outpaces the
//!   simulation, first escalate the parallelism level; once escalation
//!   is exhausted, run `s_opt = ⌈k·tau_sim / tau_cli⌉` simulations in
//!   parallel, ramping `s` up by doubling (1, 2, 4, …) while the pattern
//!   persists, capped by `s_max`.
//! * **Backward trajectories** (§IV-B2): simulations still run forward,
//!   so blocks are whole restart intervals planned below the analysis
//!   frontier; when the analysis is slower,
//!   `n = k·alpha / (tau_cli − k·tau_sim)` (rounded up to a restart
//!   interval) with one simulation suffices, otherwise
//!   `s = k·alpha/(n·tau_cli) + k·tau_sim/tau_cli` parallel interval
//!   simulations are planned.
//!
//! The agent only *plans*; the Data Virtualizer filters blocks against
//! cache/pending state, enforces `s_max`, and emits launches.

use crate::model::StepMath;
use crate::perfmodel::Ema;
use simcache::{u64_set, U64Set};
use simkit::Dur;
use std::ops::RangeInclusive;

/// Detected access trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Increasing keys.
    Forward,
    /// Decreasing keys.
    Backward,
}

/// Inputs the agent needs from the DV's estimators at decision time.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchInputs {
    /// Current restart-latency estimate `alpha_sim`.
    pub alpha: Dur,
    /// Current inter-production estimate `tau_sim`.
    pub tau_sim: Dur,
    /// Cadence/timeline math of the context.
    pub steps: StepMath,
    /// Upper bound on simultaneous simulations (`s_max`).
    pub smax: u32,
    /// Use the conservative doubling ramp instead of launching `s_opt`
    /// simulations directly (§IV-B1b).
    pub ramp: bool,
}

/// A planned prefetch: contiguous key blocks to simulate, at a
/// parallelism level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Key ranges to simulate, one simulation per block.
    pub blocks: Vec<RangeInclusive<u64>>,
    /// Parallelism level for these launches (§IV-B1b strategy 1).
    pub level: u32,
}

/// What the DV must do after feeding an access to the agent.
#[derive(Clone, Debug, Default)]
pub struct AgentOutcome {
    /// The client changed direction/stride: kill its outstanding
    /// prefetches (§IV-C).
    pub direction_changed: bool,
    /// Launch these prefetch blocks (already deduplicated against the
    /// agent's own planning, not against the cache).
    pub plan: Option<PrefetchPlan>,
}

/// Per-client prefetch agent state.
#[derive(Clone, Debug)]
pub struct PrefetchAgent {
    /// Client consumption time per access, *excluding* DV-induced
    /// blocking: the DV samples ready-to-next-acquire gaps and feeds
    /// them via [`observe_tau_cli`](Self::observe_tau_cli). Measuring
    /// raw inter-access times instead would make a blocked analysis
    /// look exactly as slow as the simulation and defeat bandwidth
    /// matching (`s_opt` would always be 1).
    tau_cli: Ema,
    last_key: Option<u64>,
    last_stride: Option<i64>,
    /// Confirmed pattern: the stride (sign = direction, |s| = k).
    pattern: Option<i64>,
    /// Doubling ramp state `s` (§IV-B1b strategy 2).
    ramp: u32,
    /// Parallelism escalation level (§IV-B1b strategy 1).
    level: u32,
    /// Exclusive frontier of planned production: highest planned key
    /// (forward) or lowest (backward).
    frontier: Option<u64>,
    /// Keys this agent asked to prefetch (pollution detection, §IV-C).
    prefetched: U64Set,
}

impl PrefetchAgent {
    /// A fresh agent; `ema_alpha` smooths its `tau_cli` estimate.
    pub fn new(ema_alpha: f64) -> PrefetchAgent {
        PrefetchAgent {
            tau_cli: Ema::new(ema_alpha),
            last_key: None,
            last_stride: None,
            pattern: None,
            ramp: 1,
            level: 0,
            frontier: None,
            prefetched: u64_set(),
        }
    }

    /// The confirmed direction, if any.
    pub fn direction(&self) -> Option<Direction> {
        self.pattern.map(|s| {
            if s > 0 {
                Direction::Forward
            } else {
                Direction::Backward
            }
        })
    }

    /// The confirmed stride magnitude `k`, if a pattern is confirmed.
    pub fn stride_k(&self) -> Option<u64> {
        self.pattern.map(|s| s.unsigned_abs())
    }

    /// Current client consumption-time estimate.
    pub fn tau_cli(&self) -> Option<Dur> {
        self.tau_cli.estimate()
    }

    /// Feeds one consumption-time sample (`ready -> next acquire`),
    /// measured by the DV.
    pub fn observe_tau_cli(&mut self, sample: Dur) {
        self.tau_cli.observe(sample);
    }

    /// Current parallelism-escalation level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Did this agent prefetch `key` at some point? (Pollution check:
    /// a miss on such a key means it was produced and evicted before
    /// being consumed.)
    pub fn was_prefetched(&self, key: u64) -> bool {
        self.prefetched.contains(&key)
    }

    /// Resets pattern state and ramp (pollution signal resets *all*
    /// agents, §IV-C). The `tau_cli` estimate survives: client speed is
    /// not invalidated by cache pollution.
    pub fn reset(&mut self) {
        self.last_stride = None;
        self.pattern = None;
        self.ramp = 1;
        self.frontier = None;
        self.prefetched.clear();
    }

    /// Tells the agent that production up to `frontier` (inclusive) has
    /// been planned on this client's behalf (miss launches included).
    pub fn note_planned(&mut self, dir: Direction, frontier_key: u64) {
        self.frontier = Some(match (self.frontier, dir) {
            (None, _) => frontier_key,
            (Some(f), Direction::Forward) => f.max(frontier_key),
            (Some(f), Direction::Backward) => f.min(frontier_key),
        });
    }

    /// Marks keys as prefetched on behalf of this client.
    pub fn note_prefetched(&mut self, keys: impl IntoIterator<Item = u64>) {
        self.prefetched.extend(keys);
    }

    /// Feeds one access; returns what the DV should do.
    pub fn on_access(&mut self, key: u64, inputs: &PrefetchInputs) -> AgentOutcome {
        let mut outcome = AgentOutcome::default();

        let stride = self
            .last_key
            .map(|prev| key as i64 - prev as i64);
        self.last_key = Some(key);

        let Some(stride) = stride else {
            return outcome;
        };
        if stride == 0 {
            // Re-access of the same step: no trajectory information.
            return outcome;
        }

        match self.pattern {
            Some(p) if p == stride => {
                // Pattern continues.
            }
            Some(_) => {
                // Direction or stride changed: the paper kills the
                // prefetched simulations and the agent resets (§IV-C).
                outcome.direction_changed = true;
                self.pattern = None;
                self.ramp = 1;
                self.frontier = None;
                self.prefetched.clear();
                self.last_stride = Some(stride);
                return outcome;
            }
            None => {
                if self.last_stride == Some(stride) {
                    // Two consecutive identical strides: confirmed.
                    self.pattern = Some(stride);
                    self.frontier.get_or_insert(key);
                } else {
                    self.last_stride = Some(stride);
                    return outcome;
                }
            }
        }
        self.last_stride = Some(stride);

        outcome.plan = self.plan_prefetch(key, stride, inputs);
        outcome
    }

    /// Plans the next batch of prefetch blocks if the trigger condition
    /// holds.
    fn plan_prefetch(
        &mut self,
        key: u64,
        stride: i64,
        inputs: &PrefetchInputs,
    ) -> Option<PrefetchPlan> {
        let k = stride.unsigned_abs().max(1);
        let steps = inputs.steps;
        let b = steps.outputs_per_interval();
        let n_outputs = steps.n_outputs();
        let forward = stride > 0;

        let tau_cli = self.tau_cli.estimate()?;
        let alpha = inputs.alpha;
        let tau_sim = inputs.tau_sim;

        // Effective per-access service time: limited by the simulation
        // or by the analysis itself (§IV-B1a).
        let k_tau_sim = tau_sim.saturating_mul(k);
        let denom = k_tau_sim.max(tau_cli);
        let lead_accesses = if denom.is_zero() {
            1
        } else {
            div_ceil_dur(alpha, denom)
        };

        // Trigger: remaining planned coverage within the masking window?
        let frontier = self.frontier.unwrap_or(key);
        let remaining = if forward {
            frontier.saturating_sub(key)
        } else {
            key.saturating_sub(frontier)
        };
        if remaining > lead_accesses.saturating_mul(k) {
            return None;
        }

        // Strategy 1 (§IV-B1b): escalate parallelism while the analysis
        // outpaces the simulation and the simulator allows it.
        let analysis_faster = tau_cli < k_tau_sim;
        if analysis_faster && inputs.steps.n_outputs() > 0 {
            // Escalation is bounded by the driver's max level; the DV
            // maps level -> nodes. We escalate one level per trigger.
            if self.level < 8 {
                self.level += 1;
            }
        }

        // Block length n (§IV-B1a / §IV-B2), rounded up to a restart
        // interval multiple.
        let n = if forward {
            round_up_multiple((lead_accesses + 2).saturating_mul(k), b)
        } else if tau_cli > k_tau_sim {
            // Analysis slower than simulation: one sim of length
            // n = k·alpha / (tau_cli − k·tau_sim) masks everything.
            let gap = tau_cli - k_tau_sim;
            let n_raw = (alpha.as_secs_f64() * k as f64 / gap.as_secs_f64()).ceil() as u64;
            round_up_multiple(n_raw.max(1), b)
        } else {
            // Analysis faster: one restart interval per simulation;
            // parallelism comes from s below.
            b
        };

        // Strategy 2: number of parallel simulations.
        let s_opt = if forward {
            div_ceil_dur(k_tau_sim, tau_cli).max(1)
        } else {
            // s = k·alpha/(n·tau_cli) + k·tau_sim/tau_cli  (§IV-B2)
            let tc = tau_cli.as_secs_f64().max(1e-12);
            let s = (k as f64 * alpha.as_secs_f64()) / (n as f64 * tc)
                + k_tau_sim.as_secs_f64() / tc;
            s.ceil() as u64
        }
        .max(1) as u32;

        let s = if inputs.ramp {
            // Conservative mode: "start with s = 1 and double it at each
            // prefetching step" (§IV-B1b).
            let s = self.ramp.min(s_opt).min(inputs.smax).max(1);
            if self.ramp < inputs.smax.min(s_opt.max(1)) {
                self.ramp = (self.ramp * 2).min(inputs.smax);
            }
            s
        } else {
            // Default: match the analysis bandwidth immediately.
            s_opt.min(inputs.smax).max(1)
        };

        // Lay out `s` blocks of `n` steps beyond the frontier.
        let mut blocks = Vec::with_capacity(s as usize);
        let mut edge = frontier;
        for _ in 0..s {
            if forward {
                let start = edge + 1;
                if start > n_outputs {
                    break;
                }
                let stop = (edge + n).min(n_outputs);
                blocks.push(start..=stop);
                edge = stop;
            } else {
                if edge <= 1 {
                    break;
                }
                let stop = edge - 1;
                let start = edge.saturating_sub(n).max(1);
                blocks.push(start..=stop);
                edge = start;
            }
        }
        if blocks.is_empty() {
            return None;
        }
        self.frontier = Some(edge);
        for block in &blocks {
            self.prefetched.extend(block.clone());
        }
        Some(PrefetchPlan {
            blocks,
            level: self.level,
        })
    }
}

/// `⌈a / b⌉` over durations, as a count.
fn div_ceil_dur(a: Dur, b: Dur) -> u64 {
    if b.is_zero() {
        return 1;
    }
    a.as_nanos().div_ceil(b.as_nanos())
}

/// Smallest multiple of `m` that is `>= x` (and at least `m`).
fn round_up_multiple(x: u64, m: u64) -> u64 {
    let m = m.max(1);
    x.max(1).div_ceil(m) * m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(alpha_s: u64, tau_sim_s: u64) -> PrefetchInputs {
        PrefetchInputs {
            alpha: Dur::from_secs(alpha_s),
            tau_sim: Dur::from_secs(tau_sim_s),
            steps: StepMath::new(1, 4, 1000), // B = 4, N = 1000
            smax: 8,
            ramp: false,
        }
    }

    /// Feeds accesses with a fixed consumption-time sample per access.
    fn feed(
        agent: &mut PrefetchAgent,
        tau_cli_s: f64,
        keys: &[u64],
        inp: &PrefetchInputs,
    ) -> Vec<AgentOutcome> {
        keys.iter()
            .map(|&k| {
                agent.observe_tau_cli(Dur::from_secs_f64(tau_cli_s));
                agent.on_access(k, inp)
            })
            .collect()
    }

    #[test]
    fn pattern_confirmed_after_two_strides() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11], &inp);
        assert!(a.direction().is_none(), "one stride is not a pattern");
        feed(&mut a, 1.0, &[12], &inp);
        assert_eq!(a.direction(), Some(Direction::Forward));
        assert_eq!(a.stride_k(), Some(1));
    }

    #[test]
    fn backward_pattern_detected() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[50, 48, 46], &inp);
        assert_eq!(a.direction(), Some(Direction::Backward));
        assert_eq!(a.stride_k(), Some(2));
    }

    #[test]
    fn direction_change_reports_kill() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11, 12], &inp);
        let out = feed(&mut a, 1.0, &[9], &inp);
        assert!(out[0].direction_changed);
        assert!(a.direction().is_none());
        // Needs two consecutive equal strides to re-confirm: the jump
        // stride (12 -> 9) differs from the scan stride (-1), so two
        // more accesses are required.
        let out = feed(&mut a, 1.0, &[8], &inp);
        assert!(!out[0].direction_changed);
        assert!(a.direction().is_none());
        feed(&mut a, 1.0, &[7], &inp);
        assert_eq!(a.direction(), Some(Direction::Backward));
    }

    #[test]
    fn repeat_access_is_not_direction_change() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11, 12], &inp);
        let out = feed(&mut a, 1.0, &[12], &inp);
        assert!(!out[0].direction_changed);
        assert_eq!(a.direction(), Some(Direction::Forward));
    }

    #[test]
    fn forward_plan_masks_restart_latency() {
        // alpha = 4 s, tau_sim = 1 s, tau_cli = 1 s (analysis reads as
        // fast as production): lead = ceil(4/1) = 4, n = (4+2)*1 ->
        // rounded to B=4 multiple -> 8.
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 12); // miss sim covered ..=12
        let outs = feed(&mut a, 1.0, &[9, 10, 11], &inp);
        // At key 11: remaining = 12 - 11 = 1 <= 4 -> trigger.
        let plan = outs[2].plan.as_ref().expect("plan at the trigger");
        assert_eq!(plan.blocks[0], 13..=20, "n = 8 beyond frontier 12");
    }

    #[test]
    fn no_plan_while_coverage_sufficient() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        a.note_planned(Direction::Forward, 100);
        let outs = feed(&mut a, 1.0, &[10, 11, 12, 13], &inp);
        assert!(
            outs.iter().all(|o| o.plan.is_none()),
            "frontier 100 is far beyond the masking window"
        );
    }

    #[test]
    fn ramp_doubles_across_triggers() {
        // Analysis 4x faster than the simulation: s_opt = 4.
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(4),
            tau_sim: Dur::from_secs(4),
            steps: StepMath::new(1, 4, 100_000),
            smax: 8,
            ramp: true,
        };
        let mut sizes = Vec::new();
        a.note_planned(Direction::Forward, 4);
        for key in 1..=2000 {
            let out = feed(&mut a, 1.0, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                sizes.push(plan.blocks.len());
            }
            if sizes.len() >= 3 {
                break;
            }
        }
        assert!(sizes.len() >= 3, "expected several triggers: {sizes:?}");
        assert_eq!(sizes[0], 1, "ramp starts at 1");
        assert!(sizes[1] >= 2, "ramp doubled: {sizes:?}");
        assert!(sizes[2] >= sizes[1], "ramp monotone until cap: {sizes:?}");
    }

    #[test]
    fn smax_caps_the_plan() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(10),
            tau_sim: Dur::from_secs(10),
            steps: StepMath::new(1, 2, 100_000),
            smax: 2,
            ramp: false,
        };
        a.note_planned(Direction::Forward, 2);
        let mut max_blocks = 0;
        for key in 1..=200 {
            let out = feed(&mut a, 1.0, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                max_blocks = max_blocks.max(plan.blocks.len());
            }
        }
        assert!(max_blocks <= 2, "smax=2 exceeded: {max_blocks}");
    }

    #[test]
    fn backward_plan_covers_interval_below() {
        let mut a = PrefetchAgent::new(1.0);
        // Analysis slower than sim: tau_cli = 3 s, k*tau_sim = 1 s,
        // alpha = 4 s -> n = ceil(4/2) = 2 -> rounded to B=4.
        let inp = inputs(4, 1);
        a.note_planned(Direction::Backward, 41);
        let outs = feed(&mut a, 3.0, &[44, 43, 42], &inp);
        let plan = outs[2].plan.as_ref().expect("backward trigger");
        let block = plan.blocks[0].clone();
        assert!(*block.end() == 40, "plans below frontier 41: {block:?}");
        assert!(*block.start() >= 1);
    }

    #[test]
    fn backward_plan_clamps_at_key_one() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Backward, 3);
        let outs = feed(&mut a, 1.0, &[5, 4, 3], &inp);
        if let Some(plan) = &outs[2].plan {
            for b in &plan.blocks {
                assert!(*b.start() >= 1);
            }
        }
    }

    #[test]
    fn backward_faster_analysis_plans_parallel_intervals() {
        // Analysis faster than the simulation: the agent plans several
        // one-interval simulations (s from the section IV-B2 formula).
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(6),
            tau_sim: Dur::from_secs(2),
            steps: StepMath::new(1, 4, 1000),
            smax: 8,
            ramp: false,
        };
        a.note_planned(Direction::Backward, 101);
        // tau_cli = 0.5 s << 2 s: bandwidth matching kicks in after the
        // ramp warms up.
        let mut max_blocks = 0;
        let mut key = 120u64;
        for _ in 0..40 {
            let out = feed(&mut a, 0.5, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                max_blocks = max_blocks.max(plan.blocks.len());
                for b in &plan.blocks {
                    assert_eq!((b.end() - b.start() + 1) % 4, 0, "interval-aligned blocks");
                }
            }
            key -= 1;
        }
        assert!(max_blocks >= 2, "expected parallel backward plans, got {max_blocks}");
    }

    #[test]
    fn plans_stop_at_timeline_end() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(4),
            tau_sim: Dur::from_secs(1),
            steps: StepMath::new(1, 4, 20), // N = 20
            smax: 8,
            ramp: false,
        };
        a.note_planned(Direction::Forward, 18);
        let outs = feed(&mut a, 1.0, &[16, 17, 18], &inp);
        if let Some(plan) = &outs[2].plan {
            for b in &plan.blocks {
                assert!(*b.end() <= 20, "beyond timeline: {b:?}");
            }
        }
        // Once the frontier hits N, further accesses plan nothing.
        let out = feed(&mut a, 1.0, &[19], &inp);
        if let Some(plan) = &out[0].plan {
            assert!(plan.blocks.iter().all(|b| *b.end() <= 20));
        }
        let out = feed(&mut a, 1.0, &[20], &inp);
        assert!(out[0].plan.is_none(), "nothing left to prefetch");
    }

    #[test]
    fn reset_clears_pattern_and_prefetch_history() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[1, 2, 3, 4], &inp);
        a.note_prefetched([7, 8]);
        assert!(a.was_prefetched(7));
        a.reset();
        assert!(!a.was_prefetched(7));
        assert!(a.direction().is_none());
        // tau_cli knowledge survives a pollution reset.
        assert_eq!(a.tau_cli(), Some(Dur::from_secs(1)));
    }

    #[test]
    fn prefetched_keys_tracked_from_plans() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 4);
        let outs = feed(&mut a, 1.0, &[2, 3, 4], &inp);
        let plan = outs[2].plan.as_ref().expect("trigger at frontier");
        let first = *plan.blocks[0].start();
        assert!(a.was_prefetched(first));
    }

    #[test]
    fn no_plan_without_tau_cli_knowledge() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 4);
        // Accesses without any consumption-time sample: pattern can be
        // confirmed but no plan is computable.
        for key in [2u64, 3, 4] {
            let out = a.on_access(key, &inp);
            assert!(out.plan.is_none());
        }
        assert_eq!(a.direction(), Some(Direction::Forward));
    }
}
