//! DVLib: the analysis-side client library (§III-C).
//!
//! The paper's API surface, in Rust form:
//!
//! | Paper call            | Here                                   |
//! |-----------------------|----------------------------------------|
//! | `SIMFS_Init`          | [`SimfsClient::connect`]               |
//! | `SIMFS_Finalize`      | [`SimfsClient::finalize`]              |
//! | `SIMFS_Acquire`       | [`SimfsClient::acquire`]               |
//! | `SIMFS_Acquire_nb`    | [`SimfsClient::acquire_nb`]            |
//! | `SIMFS_Release`       | [`SimfsClient::release`]               |
//! | `SIMFS_Wait`          | [`SimfsClient::wait`]                  |
//! | `SIMFS_Test`          | [`SimfsClient::test`]                  |
//! | `SIMFS_Waitsome`      | [`SimfsClient::waitsome`]              |
//! | `SIMFS_Testsome`      | [`SimfsClient::testsome`]              |
//! | `SIMFS_Bitrep`        | [`SimfsClient::bitrep`]                |
//!
//! The acquire calls return a [`SimfsStatus`] carrying error state and
//! the DV's estimated waiting time, which "the analysis can use for
//! debugging, profiling, and for saving compute hours/energy" (§III-C).
//!
//! [`SimulatorSession`] is the simulator-side half: the notifications a
//! launched re-simulation sends as DVLib intercepts its create/close
//! calls (§III-B).
//!
//! [`DvCluster`] is the multi-daemon routing tier: the same API surface
//! over K daemons, each owning a disjoint set of restart intervals.
//! DVLib hashes every key's interval to its owning daemon (the exact
//! rule [`crate::dv::DvRouter`] applies intra-process) and multiplexes
//! one write-coalescing [`SimfsClient`] connection per daemon; teardown
//! ([`DvCluster::finalize`] or drop) fans out to every member, so each
//! daemon releases this client's pins.
//!
//! # Connection lifetime
//!
//! The daemon's epoll front-end closes the connection *actively* after
//! `Bye`, after a `SimFinished`, and after any protocol error (the
//! threaded front-end merely stopped reading and dropped the socket).
//! Clients must treat EOF after a goodbye as a normal teardown — which
//! these APIs do: [`SimfsClient::finalize`] consumes the session, and a
//! mid-request EOF still surfaces as `UnexpectedEof`. Dropping a
//! session without `Bye` is also safe: the daemon maps the hangup to
//! `ClientGone` (releasing pins) or `SimFailed` exactly as before.

use crate::dv::{DvRouter, FailCode};
use crate::model::StepMath;
use crate::prefetch::{AccessLog, AccessRecord, ACCESS_LOG_CAPACITY};
use crate::wire::{self, ClientKind, FrameBatch, FrameReader, Membership, Request, Response};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Typed deadline error: the payload of an
/// [`io::ErrorKind::TimedOut`] error returned when a blocking DVLib
/// call exceeds the configured [`SimfsClient::set_op_timeout`]
/// deadline — a daemon that died without closing its socket would
/// otherwise block the analysis forever. Recover it from the error via
/// [`DvTimeout::from_io`]; with auto-reconnect enabled the timeout
/// instead feeds the reconnect path and is only surfaced if that fails
/// too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DvTimeout {
    /// The DVLib operation that timed out (`"wait"`, `"bitrep"`, ...).
    pub op: &'static str,
    /// The deadline that elapsed.
    pub after: Duration,
}

impl DvTimeout {
    /// Downcasts an [`io::Error`] to the typed timeout, if that is
    /// what it carries.
    pub fn from_io(err: &io::Error) -> Option<&DvTimeout> {
        err.get_ref().and_then(|inner| inner.downcast_ref::<DvTimeout>())
    }

    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::TimedOut, self)
    }
}

impl fmt::Display for DvTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DV {} timed out after {:?}", self.op, self.after)
    }
}

impl std::error::Error for DvTimeout {}

/// Typed member-failure error: the payload of an
/// [`io::ErrorKind::NotConnected`] error returned when a [`DvCluster`]
/// operation needed a member daemon that stayed unreachable through
/// the whole down-detection window (see
/// [`DvCluster::set_down_window`]). With failover enabled
/// ([`DvCluster::set_failover`]) the cluster instead reroutes the dead
/// member's intervals to a live taker and only surfaces `MemberDown`
/// when no live taker remains. Recover it from the error via
/// [`MemberDown::from_io`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberDown {
    /// Index of the unreachable cluster member.
    pub member: usize,
    /// The DVLib operation that needed it (`"wait"`, `"acquire"`, ...).
    pub op: &'static str,
}

impl MemberDown {
    /// Downcasts an [`io::Error`] to the typed member failure, if that
    /// is what it carries.
    pub fn from_io(err: &io::Error) -> Option<&MemberDown> {
        err.get_ref().and_then(|inner| inner.downcast_ref::<MemberDown>())
    }

    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::NotConnected, self)
    }
}

impl fmt::Display for MemberDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster member {} is down (during {})", self.member, self.op)
    }
}

impl std::error::Error for MemberDown {}

/// The fixed successor rule of interval failover: the taker of dead
/// member `dead` is the first member clockwise on the membership ring
/// that is not itself down. Every client evaluates this rule
/// independently and — because the ring order is the member-list order
/// all of them share — picks the same taker without coordination. The
/// virtual harness applies the identical function, so scripted
/// takeover plans pin the real routing bit-for-bit.
pub(crate) fn successor_taker(dead: usize, size: usize, down: &[bool]) -> Option<usize> {
    (1..size).map(|i| (dead + i) % size).find(|&m| !down[m])
}

/// Floor of the reconnect backoff ladder.
const RECONNECT_MIN_DELAY: Duration = Duration::from_millis(10);
/// Cap of the reconnect backoff ladder (doubling stops here).
const RECONNECT_MAX_DELAY: Duration = Duration::from_secs(1);
/// Total time a reconnect keeps retrying before giving up — generous
/// enough to cover a daemon restart with `--recover`.
const RECONNECT_WINDOW: Duration = Duration::from_secs(30);
/// Connect-phase timeout of each individual reconnect attempt.
const RECONNECT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Connect-phase timeout of a cluster liveness probe: long enough for
/// a loaded daemon's accept queue, short enough that probing a dead
/// address does not dominate the down-detection window.
const PROBE_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Errors that mean "the connection is dead", not "the request is
/// wrong" — the triggers of the reconnect path.
fn is_disconnect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
    )
}

/// A typed acquire failure: the daemon's stable machine-readable
/// classification plus its human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailError {
    /// Stable classification (retriable / poisoned / hang-killed /
    /// corrupt-output / other) — match on this, not on the message.
    pub code: FailCode,
    /// Human-readable reason (surfaced in `SIMFS_Status`).
    pub reason: String,
}

impl std::fmt::Display for FailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.reason)
    }
}

/// Status of an acquire operation (§III-C `SIMFS_Status`).
#[derive(Clone, Debug, Default)]
pub struct SimfsStatus {
    /// Keys now available (and pinned for this client).
    pub ready: Vec<u64>,
    /// Keys that failed, with their typed errors.
    pub failed: Vec<(u64, FailError)>,
    /// Estimated waiting time for the pending keys, if the DV provided
    /// one.
    pub est_wait: Option<Duration>,
}

impl SimfsStatus {
    /// True if nothing failed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// One step of a [`SimfsClient::call`] response loop: the matching
/// reply resolves the call, anything else is stashed as a stray.
enum CallStep<T> {
    Done(T),
    Stray(Response),
}

/// [`DvCluster`]'s verdict on a member-op error, after probing the
/// member's liveness.
enum MemberVerdict {
    /// The member answers its port: the error is a session problem,
    /// not a member death — surface it unchanged.
    Surface,
    /// The cluster's *injected* bounded-wait deadline fired but the
    /// member is alive (just slow, e.g. a long re-simulation): resume
    /// waiting.
    KeepWaiting,
    /// Unreachable through the whole down-detection window: the member
    /// is dead.
    Down,
}

/// Which member-local request of a [`ClusterAcquireRequest`] an
/// internal wait/probe step addresses.
#[derive(Clone, Copy)]
enum Slot {
    /// `parts[i]` — a native acquire at the key's home member.
    Native(usize),
    /// `takeover[i]` — a tagged takeover acquire parked on a taker.
    Takeover(usize),
}

/// Handle for a non-blocking acquire (`SIMFS_Req`).
#[derive(Debug)]
pub struct AcquireRequest {
    req_id: u64,
    outstanding: HashSet<u64>,
    status: SimfsStatus,
    /// Keys the daemon reported `Queued` (they blocked on production):
    /// consumed by [`DvCluster`]'s digest recording — a blocked key's
    /// acquire-time epoch is not a ready point.
    queued: HashSet<u64>,
    /// `Some((dead_member, origin_epoch))` when this request was sent
    /// as a tagged `TakeoverAcquire` — a reconnect re-send must carry
    /// the same tag, or the taker would reject the foreign keys as
    /// misrouted.
    takeover: Option<(u32, u64)>,
}

impl AcquireRequest {
    /// Keys still pending.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True once every key resolved (ready or failed).
    pub fn done(&self) -> bool {
        self.outstanding.is_empty()
    }
}

/// An analysis session with the DV daemon (`SIMFS_Context`).
pub struct SimfsClient {
    /// Write half (a second handle to the same socket).
    stream: TcpStream,
    /// Buffered read half: drains multiple queued response frames per
    /// syscall; a read timeout never loses a partially received frame.
    reader: FrameReader<TcpStream>,
    client_id: u64,
    context: String,
    next_req: u64,
    /// Responses received while waiting for a different request (e.g. a
    /// `Ready` for an outstanding non-blocking acquire arriving during a
    /// `bitrep` round-trip). Consumed before reading the socket again.
    stray: Vec<Response>,
    /// Write-coalescing buffer: fire-and-forget frames (`Release`) are
    /// staged here and ride in the same write — and the same TCP
    /// segment — as the next request, halving the syscalls of the
    /// dominant release-then-acquire pattern. Flushed before anything
    /// that reads a response, so buffering is never observable beyond
    /// the release reaching the DV marginally later.
    pending_out: FrameBatch,
    /// The daemon's recovery epoch from the hello handshake: tells a
    /// reconnect whether it is talking to the same instance (pins are
    /// gone) or a recovered one (pins may be re-asserted).
    epoch: u64,
    /// The resolved peer address, kept for reconnects.
    addr: Option<SocketAddr>,
    /// The membership claim of the original handshake, replayed on
    /// reconnect.
    membership: Option<Membership>,
    /// key → pin count this session currently holds (Ready responses
    /// minus releases): what a reconnect re-asserts.
    held: HashMap<u64, u32>,
    /// Reconnect with capped exponential backoff and re-assert held
    /// pins when the connection dies (off by default — callers that
    /// prefer fail-fast semantics see the raw error).
    auto_reconnect: bool,
    /// Deadline for blocking calls; `None` blocks forever.
    op_timeout: Option<Duration>,
    /// Total time [`recover_session`](Self::recover_session) keeps
    /// redialing before giving up.
    reconnect_window: Duration,
    /// Successful reconnects over this session's lifetime.
    reconnects: u64,
    /// Pins restored via `Reassert` across all reconnects.
    pins_reasserted: u64,
    /// Re-entrancy guard: a failure *during* recovery must surface,
    /// not recurse into another recovery.
    recovering: bool,
}

impl SimfsClient {
    /// `SIMFS_Init`: connects and performs the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs, context: &str) -> io::Result<SimfsClient> {
        Self::connect_with(addr, context, None)
    }

    /// [`connect`](Self::connect) carrying a cluster-membership claim:
    /// the daemon verifies `(index, size, steps_hash)` against its own
    /// configuration at hello time and refuses the session on mismatch
    /// — the error names both sides' views. Used by [`DvCluster`] so a
    /// misconfigured member list or divergent [`StepMath`] fails loudly
    /// instead of silently misrouting intervals.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        context: &str,
        membership: Option<Membership>,
    ) -> io::Result<SimfsClient> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr().ok();
        let (stream, reader, client_id, epoch) =
            Self::handshake(stream, context, membership, None)?;
        Ok(SimfsClient {
            stream,
            reader,
            client_id,
            context: context.to_string(),
            next_req: 1,
            stray: Vec::new(),
            pending_out: FrameBatch::new(),
            epoch,
            addr: peer,
            membership,
            held: HashMap::new(),
            auto_reconnect: false,
            op_timeout: None,
            reconnect_window: RECONNECT_WINDOW,
            reconnects: 0,
            pins_reasserted: 0,
            recovering: false,
        })
    }

    /// The hello exchange over an already-connected socket.
    /// `prior_epoch` is `Some` on reconnects (the daemon counts them).
    fn handshake(
        mut stream: TcpStream,
        context: &str,
        membership: Option<Membership>,
        prior_epoch: Option<u64>,
    ) -> io::Result<(TcpStream, FrameReader<TcpStream>, u64, u64)> {
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Analysis,
                context: context.to_string(),
                membership,
                epoch: prior_epoch,
            }
            .encode(),
        )?;
        let frame = reader
            .read_frame()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { client_id, epoch } => Ok((stream, reader, client_id, epoch)),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// Enables (or disables) automatic reconnection: when a blocking
    /// call hits a dead connection, DVLib redials with capped
    /// exponential backoff (10 ms doubling to 1 s, for up to 30 s),
    /// re-asserts its held pins through `Reassert`, transparently
    /// re-acquires any the daemon reports gone, and re-sends whatever
    /// request was in flight. Off by default: fail-fast callers (and
    /// the cluster unwind paths) see the raw error.
    pub fn set_auto_reconnect(&mut self, on: bool) {
        self.auto_reconnect = on;
    }

    /// Sets the deadline of blocking calls (`wait`, `bitrep`,
    /// `status`, ...). On expiry they return an
    /// [`io::ErrorKind::TimedOut`] error carrying a [`DvTimeout`] —
    /// unless auto-reconnect is enabled, in which case the timeout
    /// first feeds the reconnect path. `None` (the default) blocks
    /// forever.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        self.op_timeout = timeout;
    }

    /// Sets how long a reconnect keeps redialing before giving up
    /// (default 30 s — generous enough to cover a daemon restart with
    /// `--recover`). Tests and failover-enabled clusters shrink it so
    /// a dead member is confirmed dead quickly.
    pub fn set_reconnect_window(&mut self, window: Duration) {
        self.reconnect_window = window;
    }

    /// Successful reconnects over this session's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Pins restored via `Reassert` across all reconnects.
    pub fn pins_reasserted(&self) -> u64 {
        self.pins_reasserted
    }

    /// The daemon's recovery epoch from the latest handshake.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `err` should trigger recovery, and recovery is possible.
    fn try_recover(&mut self, err: &io::Error, op: &'static str) -> bool {
        if !self.auto_reconnect || self.recovering || !is_disconnect(err) {
            return false;
        }
        self.recovering = true;
        let outcome = self.recover_session(op);
        self.recovering = false;
        outcome.is_ok()
    }

    /// Redials the daemon with capped exponential backoff, re-runs the
    /// hello handshake carrying the prior epoch, re-asserts held pins,
    /// and re-acquires the ones the daemon reports gone. The session's
    /// identity (client id, epoch) is replaced on success.
    fn recover_session(&mut self, op: &'static str) -> io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no address to reconnect to")
        })?;
        let prior_client = self.client_id;
        let prior_epoch = self.epoch;
        // Everything staged or buffered belongs to the dead session:
        // its pins are released by the daemon-side ClientGone (or the
        // crash), so stale releases and stray frames must not leak
        // into the new one.
        self.pending_out.clear();
        self.stray.clear();
        let window = self.reconnect_window;
        let deadline = Instant::now() + window;
        let mut delay = RECONNECT_MIN_DELAY;
        let (stream, reader, client_id, epoch) = loop {
            let attempt = TcpStream::connect_timeout(&addr, RECONNECT_CONNECT_TIMEOUT)
                .and_then(|s| Self::handshake(s, &self.context, self.membership, Some(prior_epoch)));
            match attempt {
                Ok(session) => break session,
                Err(e) => {
                    if Instant::now() + delay >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(RECONNECT_MAX_DELAY);
                }
            }
        };
        self.stream = stream;
        self.reader = reader;
        self.client_id = client_id;
        self.epoch = epoch;
        self.reconnects += 1;
        if self.held.is_empty() {
            return Ok(());
        }
        // Re-assert every held pin count; the daemon transfers what
        // its recovery restored and names what is gone.
        let keys: Vec<u64> = self
            .held
            .iter()
            .flat_map(|(&key, &count)| std::iter::repeat_n(key, count as usize))
            .collect();
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Reassert {
            req_id,
            prior_client,
            prior_epoch,
            keys,
        })?;
        let gone = loop {
            match self.pump_one(Some(window))? {
                Some(Response::Reasserted {
                    req_id: r,
                    restored,
                    gone,
                    ..
                }) if r == req_id => {
                    self.pins_reasserted += restored.len() as u64;
                    break gone;
                }
                Some(Response::Error { message }) => return Err(io::Error::other(message)),
                Some(_stray_from_dead_request) => {}
                None => {
                    return Err(DvTimeout { op, after: window }.into_io())
                }
            }
        };
        // Gone pins: the daemon no longer holds them — drop the counts
        // and re-acquire, so the caller's view ("I hold these keys")
        // is true again without its involvement.
        let mut reacquire: Vec<u64> = Vec::new();
        for (key, _reason) in gone {
            if let Some(n) = self.held.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.held.remove(&key);
                }
            }
            reacquire.push(key);
        }
        if !reacquire.is_empty() {
            // Ready responses re-enter `held` through dispatch; keys
            // that now fail outright stay dropped (the daemon named
            // them gone and cannot serve them).
            let _ = self.acquire(&reacquire)?;
        }
        Ok(())
    }

    /// Re-sends the unresolved keys of `req` after a reconnect (the
    /// req_id is client-assigned, so the new daemon instance simply
    /// echoes it and the existing dispatch bookkeeping keeps working).
    fn resend_outstanding(&mut self, req: &AcquireRequest) -> io::Result<()> {
        if req.outstanding.is_empty() {
            return Ok(());
        }
        let keys: Vec<u64> = req.outstanding.iter().copied().collect();
        match req.takeover {
            Some((dead_member, origin_epoch)) => self.send(&Request::TakeoverAcquire {
                req_id: req.req_id,
                dead_member,
                origin_epoch,
                keys,
            }),
            None => self.send(&Request::Acquire {
                req_id: req.req_id,
                keys,
            }),
        }
    }

    /// The DV-assigned client id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The context this session analyzes.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Sends `req` together with any staged fire-and-forget frames in
    /// one write.
    fn send(&mut self, req: &Request) -> io::Result<()> {
        self.pending_out.push_request(req);
        self.flush_pending()
    }

    /// Stages a fire-and-forget frame to ride the next coalesced write
    /// (how [`DvCluster`] attaches access digests to member traffic).
    fn stage(&mut self, req: &Request) {
        self.pending_out.push_request(req);
    }

    /// Delivers staged frames (if any) in a single write.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending_out.is_empty() {
            return Ok(());
        }
        let result = self.stream.write_all(self.pending_out.as_bytes());
        self.pending_out.clear();
        result
    }

    /// `SIMFS_Acquire_nb`: requests `keys` without blocking.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<AcquireRequest> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Acquire {
            req_id,
            keys: keys.to_vec(),
        })?;
        Ok(AcquireRequest {
            req_id,
            outstanding: keys.iter().copied().collect(),
            status: SimfsStatus::default(),
            queued: HashSet::new(),
            takeover: None,
        })
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// Tagged foreign-interval acquire (failover): requests `keys` the
    /// daemon does **not** own, declaring their home to be dead
    /// cluster member `dead_member`. The daemon validates the claim
    /// against its own membership view, rebuilds residency for each
    /// foreign interval by rescanning shared storage, and serves or
    /// re-simulates the keys under its own budget; responses resolve
    /// through [`wait`](Self::wait) exactly like a plain acquire.
    /// `origin_epoch` is the client's takeover epoch, echoed in
    /// rejections for diagnosis.
    pub fn takeover_acquire_nb(
        &mut self,
        keys: &[u64],
        dead_member: u32,
        origin_epoch: u64,
    ) -> io::Result<AcquireRequest> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::TakeoverAcquire {
            req_id,
            dead_member,
            origin_epoch,
            keys: keys.to_vec(),
        })?;
        Ok(AcquireRequest {
            req_id,
            outstanding: keys.iter().copied().collect(),
            status: SimfsStatus::default(),
            queued: HashSet::new(),
            takeover: Some((dead_member, origin_epoch)),
        })
    }

    /// Hand-back RPC (failover teardown): asks this daemon — the
    /// *taker* — to drop the takeover pins it holds for `keys`, whose
    /// home member `dead_member` has been restored. One pin release is
    /// applied per listed key occurrence; the reply reports how many.
    /// The caller must have re-acquired every listed key at the
    /// restored home member *before* this call, so the residency veto
    /// never lapses. The released pins leave this session's held set.
    pub fn hand_back(&mut self, dead_member: u32, keys: &[u64]) -> io::Result<u64> {
        let req_id = self.next_req;
        self.next_req += 1;
        let released = self.call(
            "hand_back",
            &Request::HandBack {
                req_id,
                dead_member,
                keys: keys.to_vec(),
            },
            |resp| match resp {
                Response::HandedBack { req_id: r, released } if r == req_id => {
                    Ok(CallStep::Done(released))
                }
                Response::Error { message } => Err(io::Error::other(message)),
                other => Ok(CallStep::Stray(other)),
            },
        )?;
        for &key in keys {
            self.forget_pin(key);
        }
        Ok(released)
    }

    /// Drops one held-pin count without wire traffic: the pin's daemon
    /// is gone (its pins died with it) or the release was carried by a
    /// `HandBack` frame.
    fn forget_pin(&mut self, key: u64) {
        if let Some(n) = self.held.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.held.remove(&key);
            }
        }
    }

    /// Forces a reconnect (plus `Reassert` of held pins) now,
    /// regardless of the auto-reconnect setting — how the cluster
    /// re-adopts a revived member whose session died while the member
    /// was down.
    fn reconnect_now(&mut self, op: &'static str) -> io::Result<()> {
        if self.recovering {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "recovery already in progress",
            ));
        }
        self.recovering = true;
        let outcome = self.recover_session(op);
        self.recovering = false;
        outcome
    }

    /// Processes one incoming frame into the request's bookkeeping.
    fn dispatch(&mut self, req: &mut AcquireRequest, resp: Response) -> io::Result<()> {
        match resp {
            Response::Ready { req_id, key } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.ready.push(key);
                    // A Ready is a pin grant: track it so a reconnect
                    // knows what to re-assert.
                    *self.held.entry(key).or_insert(0) += 1;
                }
            Response::Failed {
                req_id,
                key,
                code,
                reason,
            } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.failed.push((key, FailError { code, reason }));
                }
            Response::Queued {
                req_id,
                key,
                est_wait_ms,
            } if req_id == req.req_id => {
                req.queued.insert(key);
                req.status.est_wait = Some(Duration::from_millis(est_wait_ms));
            }
            Response::Error { message } => {
                return Err(io::Error::other(message));
            }
            _ => {
                // A frame for a different outstanding request: with one
                // request in flight at a time this cannot happen; with
                // multiple, callers interleave wait() calls and each
                // request sees only its own frames because req_ids
                // differ. Dropping is safe for Queued (informational);
                // Ready/Failed for other requests are re-delivered by
                // the server only once, so multiplexing callers should
                // use waitsome on a merged request instead.
            }
        }
        Ok(())
    }

    /// Receives one response; `timeout: None` blocks, otherwise returns
    /// `Ok(None)` if no complete frame arrives in time. Partial frames
    /// stay buffered in the [`FrameReader`] — a timeout never
    /// desynchronizes the stream.
    fn pump_one(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        // Anything still staged must be on the wire before we wait for
        // responses (a buffered request would deadlock the wait).
        self.flush_pending()?;
        // Drain already-buffered frames without touching the socket (or
        // its timeout configuration).
        if let Some(body) = self.reader.pop_buffered()? {
            return Response::decode(&body).map(Some);
        }
        let Some(t) = timeout else {
            return match self.reader.read_frame()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the session",
                )),
            };
        };
        // Timed probe: exactly one read syscall, so a frame arriving in
        // pieces cannot stretch the wait past one timeout window
        // (read_frame loops and would re-arm the timeout per chunk).
        self.reader.get_ref().set_read_timeout(Some(t))?;
        let result = self.reader.fill_once();
        self.reader.get_ref().set_read_timeout(None)?;
        match result {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the session",
            )),
            Ok(_) => match self.reader.pop_buffered()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Ok(None),
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Next response: strays first, then the socket.
    fn next_response(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        if !self.stray.is_empty() {
            return Ok(Some(self.stray.remove(0)));
        }
        self.pump_one(timeout)
    }

    /// One blocking receive step for `req`, honoring the op timeout
    /// and the reconnect path. Returns `Ok(true)` when a recovery
    /// replaced the session and re-sent the outstanding keys — the
    /// caller must reset its deadline.
    fn pump_for(
        &mut self,
        req: &mut AcquireRequest,
        deadline: Option<Instant>,
        op: &'static str,
    ) -> io::Result<bool> {
        // Probe in bounded chunks so a deadline is honored within
        // ~250 ms even while frames for other requests keep arriving.
        let chunk = deadline.map(|d| {
            d.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(250))
                .max(Duration::from_millis(1))
        });
        match self.next_response(chunk) {
            Ok(Some(resp)) => {
                self.dispatch(req, resp)?;
                Ok(false)
            }
            Ok(None) => {
                let Some(d) = deadline else { return Ok(false) };
                if Instant::now() < d {
                    return Ok(false);
                }
                let err = DvTimeout {
                    op,
                    after: self.op_timeout.unwrap_or_default(),
                }
                .into_io();
                if self.try_recover(&err, op) {
                    self.resend_outstanding(req)?;
                    return Ok(true);
                }
                Err(err)
            }
            Err(e) => {
                if self.try_recover(&e, op) {
                    self.resend_outstanding(req)?;
                    return Ok(true);
                }
                Err(e)
            }
        }
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves (or the
    /// [op timeout](Self::set_op_timeout) expires).
    pub fn wait(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        while !req.done() {
            if self.pump_for(req, deadline, "wait")? {
                deadline = self.op_timeout.map(|t| Instant::now() + t);
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Test`: non-blocking completion probe.
    pub fn test(&mut self, req: &mut AcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        // Drain whatever already arrived.
        while !req.done() {
            match self.next_response(Some(Duration::from_millis(1))) {
                Ok(Some(resp)) => self.dispatch(req, resp)?,
                Ok(None) => break,
                Err(e) => {
                    if self.try_recover(&e, "test") {
                        self.resend_outstanding(req)?;
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok((req.done(), req.status.clone()))
    }

    /// `SIMFS_Waitsome`: blocks until at least one more key resolves;
    /// returns the status so far.
    pub fn waitsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let resolved_before = req.status.ready.len() + req.status.failed.len();
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        while !req.done() && req.status.ready.len() + req.status.failed.len() == resolved_before {
            if self.pump_for(req, deadline, "waitsome")? {
                deadline = self.op_timeout.map(|t| Instant::now() + t);
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Testsome`: non-blocking; returns the resolved subset.
    pub fn testsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let (_, status) = self.test(req)?;
        Ok(status)
    }

    /// `SIMFS_Release`: drops this client's pin on `key`. The frame is
    /// staged and coalesced into the next request's write (releases
    /// expect no response); sessions that release and then go idle
    /// should call [`flush`](Self::flush) to push the pin drop out
    /// immediately.
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        if let Some(n) = self.held.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.held.remove(&key);
            }
        }
        self.pending_out.push_request(&Request::Release { key });
        // Cap the staging buffer: a pathological release-only loop
        // still reaches the daemon in bounded batches.
        if self.pending_out.as_bytes().len() >= 16 * 1024 {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Delivers any staged fire-and-forget frames now.
    pub fn flush(&mut self) -> io::Result<()> {
        self.flush_pending()
    }

    /// Sends a request and blocks for the response that resolves it,
    /// honoring the op timeout and the reconnect path (recovery simply
    /// re-sends `req` — req_ids are client-assigned, so the new daemon
    /// instance echoes the same one and `matcher` keeps working).
    fn call<T>(
        &mut self,
        op: &'static str,
        req: &Request,
        mut matcher: impl FnMut(Response) -> io::Result<CallStep<T>>,
    ) -> io::Result<T> {
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        if let Err(e) = self.send(req) {
            if !self.try_recover(&e, op) {
                return Err(e);
            }
            self.send(req)?;
            deadline = self.op_timeout.map(|t| Instant::now() + t);
        }
        loop {
            let chunk = deadline.map(|d| {
                d.saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(250))
                    .max(Duration::from_millis(1))
            });
            match self.pump_one(chunk) {
                Ok(Some(resp)) => match matcher(resp)? {
                    CallStep::Done(value) => return Ok(value),
                    CallStep::Stray(other) => self.stray.push(other),
                },
                Ok(None) => {
                    let Some(d) = deadline else { continue };
                    if Instant::now() < d {
                        continue;
                    }
                    let err = DvTimeout {
                        op,
                        after: self.op_timeout.unwrap_or_default(),
                    }
                    .into_io();
                    if !self.try_recover(&err, op) {
                        return Err(err);
                    }
                    self.send(req)?;
                    deadline = self.op_timeout.map(|t| Instant::now() + t);
                }
                Err(e) => {
                    if !self.try_recover(&e, op) {
                        return Err(e);
                    }
                    self.send(req)?;
                    deadline = self.op_timeout.map(|t| Instant::now() + t);
                }
            }
        }
    }

    /// `SIMFS_Bitrep`: checks the materialized file against the
    /// recorded checksum of the initial simulation. `Ok(None)` when no
    /// checksum was recorded for this key.
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.call("bitrep", &Request::Bitrep { req_id, key }, |resp| match resp {
            Response::BitrepResult {
                req_id: r,
                matches,
                known,
                ..
            } if r == req_id => Ok(CallStep::Done(known.then_some(matches))),
            Response::Failed { req_id: r, code, reason, .. } if r == req_id => {
                Err(io::Error::other(FailError { code, reason }.to_string()))
            }
            Response::Error { message } => Err(io::Error::other(message)),
            other => Ok(CallStep::Stray(other)),
        })
    }

    /// Queries the context's runtime statistics (the profiling support
    /// the status API provides, §III-C).
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.call("status", &Request::Status { req_id }, |resp| match resp {
            Response::StatusInfo {
                req_id: r,
                hits,
                misses,
                restarts,
                produced_steps,
                active_sims,
            } if r == req_id => Ok(CallStep::Done(ContextStats {
                hits,
                misses,
                restarts,
                produced_steps,
                active_sims,
            })),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Ok(CallStep::Stray(other)),
        })
    }

    /// `SIMFS_Finalize`: orderly goodbye; the DV releases this client's
    /// pins and kills its idle prefetches. The daemon closes the
    /// connection once the `Bye` is processed.
    pub fn finalize(mut self) -> io::Result<()> {
        self.send(&Request::Bye)
    }

    /// Closes the session without the `Bye` handshake, after delivering
    /// any staged `Release` frames. The daemon maps the resulting
    /// hangup to `ClientGone` exactly as for a plain drop — but the
    /// staged releases reach it first, so its pin counts drain through
    /// the normal path instead of the disconnect GC.
    pub fn close(mut self) -> io::Result<()> {
        self.flush_pending()
    }
}

impl Drop for SimfsClient {
    fn drop(&mut self) {
        // Best-effort: `Release` frames staged for write-coalescing
        // must not die in the buffer — a dropped session with staged
        // releases would otherwise strand daemon-side pins until the
        // hangup-driven `ClientGone` GC runs. Errors are ignored; the
        // socket is going away either way and `ClientGone` remains the
        // backstop.
        let _ = self.flush_pending();
    }
}

/// Runtime statistics of a simulation context, as reported by the DV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextStats {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses so far.
    pub misses: u64,
    /// Re-simulations launched.
    pub restarts: u64,
    /// Output steps produced.
    pub produced_steps: u64,
    /// Currently running re-simulations.
    pub active_sims: u64,
}

/// Handle for a non-blocking acquire spanning a [`DvCluster`]: one
/// member-local [`AcquireRequest`] per daemon that received keys.
#[derive(Debug)]
pub struct ClusterAcquireRequest {
    /// Indexed by cluster member; `None` where no keys routed.
    parts: Vec<Option<AcquireRequest>>,
    /// Failover re-routes: tagged `TakeoverAcquire` requests parked on
    /// a live *taker* member because the keys' home member is down.
    /// `(taker index, request)`; grows mid-wait when a member dies
    /// with keys in flight.
    takeover: Vec<(usize, AcquireRequest)>,
    /// Resolved status carried over from parts whose member died after
    /// resolving them: merges into the final status but is never
    /// scanned for takeover-grant recording (its re-pinned ready keys
    /// were recorded at failover time).
    carry: SimfsStatus,
    /// Queued-key markers carried over alongside `carry` (they feed
    /// the digest's ready-point flags).
    carry_queued: HashSet<u64>,
    /// The requested keys in request order, with the acquire-time
    /// epoch: the digest observation of this request, recorded into
    /// the member logs only once the request resolves — at which point
    /// the per-key `Queued` responses reveal which epochs were true
    /// ready points.
    keys: Vec<u64>,
    epoch: u64,
    /// Observation already recorded (guards double-recording when both
    /// `test` and `wait` see the request complete).
    observed: bool,
}

impl ClusterAcquireRequest {
    /// Keys still pending across all members.
    pub fn outstanding(&self) -> usize {
        self.all_parts().map(AcquireRequest::outstanding).sum()
    }

    /// True once every key resolved (ready or failed) on every member.
    pub fn done(&self) -> bool {
        self.all_parts().all(AcquireRequest::done)
    }

    /// Every member-local request: native parts plus takeover
    /// re-routes.
    fn all_parts(&self) -> impl Iterator<Item = &AcquireRequest> {
        self.parts
            .iter()
            .flatten()
            .chain(self.takeover.iter().map(|(_, part)| part))
    }

    /// Merged status across the members so far.
    fn merged(&self) -> SimfsStatus {
        let mut status = self.carry.clone();
        for part in self.all_parts() {
            status.ready.extend_from_slice(&part.status.ready);
            status.failed.extend_from_slice(part.status.failed.as_slice());
            status.est_wait = match (status.est_wait, part.status.est_wait) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        status
    }
}

/// An analysis session spanning a cluster of DV daemons (§III scaled
/// out): daemon `k` of `K` owns the restart intervals with
/// `interval % K == k`, so every request routes to exactly one member —
/// by the same interval-granularity hash [`crate::dv::DvRouter`] uses
/// for intra-process shards (raw `key % K` would scatter each
/// re-simulation's claims, waiters and productions across daemons).
/// Each member connection is a full [`SimfsClient`], so the
/// write-coalescing of fire-and-forget `Release` frames applies
/// per-daemon unchanged.
///
/// The API mirrors [`SimfsClient`]; multi-key acquires are split by
/// owning member and merged back into one [`SimfsStatus`].
///
/// # Access-stream digests
///
/// Routing splits the stream: each member daemon sees only the keys of
/// the intervals it owns, so its prefetch agents — which need the full
/// sequence to detect direction and cadence — would observe a
/// subsequence full of artificial jumps. The cluster therefore records
/// its **full pre-routing access stream** into one bounded lossy
/// [`AccessLog`] per member and forwards each member's copy as a
/// fire-and-forget `AccessDigest` frame riding that member's next
/// coalesced write. Members told at hello time that they are clustered
/// ignore their local (post-routing) view and observe the forwarded
/// stream instead. Overflows degrade to counted drops, never blocking
/// or unbounded memory; a single-daemon "cluster" skips forwarding —
/// its local view already is the full stream.
pub struct DvCluster {
    members: Vec<SimfsClient>,
    router: DvRouter,
    /// Per-member copy of the full pre-routing access stream, drained
    /// into an `AccessDigest` on that member's next coalesced write.
    logs: Vec<AccessLog>,
    /// Clock for record epochs (client-side; only gaps carry meaning).
    epoch: Instant,
    /// Reused drain buffer.
    drain_scratch: Vec<AccessRecord>,
    /// Interval failover: reroute a dead member's intervals to a live
    /// taker instead of failing the op (off by default — without it a
    /// confirmed-dead member surfaces a typed [`MemberDown`]).
    failover: bool,
    /// Members currently considered dead. Down members are probed for
    /// revival at the next acquire; with failover on, a revived
    /// member gets its taken-over pins handed back.
    down: Vec<bool>,
    /// key → (taker index, pin count) for pins this session re-homed
    /// onto takers: routes their releases and drives hand-back.
    taken_over: HashMap<u64, (usize, u32)>,
    /// Bumped on every down-detection and hand-back; tags takeover
    /// traffic so stale or misrouted claims are attributable.
    takeover_epoch: u64,
    /// How long a silent member is probed before it is declared down.
    down_window: Duration,
}

impl DvCluster {
    /// Connects to every daemon of the cluster, in member order.
    /// `steps` must match the context's step math on the daemons —
    /// it is what both sides hash intervals with; the hello handshake
    /// carries `(index, size, config_hash(steps))` so a daemon whose
    /// position or cadence disagrees rejects the session immediately.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn connect<A: ToSocketAddrs>(
        addrs: &[A],
        context: &str,
        steps: StepMath,
    ) -> io::Result<DvCluster> {
        assert!(!addrs.is_empty(), "a cluster needs at least one daemon");
        let size = addrs.len() as u32;
        let steps_hash = steps.config_hash();
        let members = addrs
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                SimfsClient::connect_with(
                    addr,
                    context,
                    Some(Membership {
                        index: index as u32,
                        size,
                        steps_hash,
                    }),
                )
            })
            .collect::<io::Result<Vec<_>>>()?;
        let router = DvRouter::new(steps, size);
        let logs = (0..members.len())
            .map(|_| AccessLog::new(ACCESS_LOG_CAPACITY))
            .collect();
        let down = vec![false; members.len()];
        Ok(DvCluster {
            members,
            router,
            logs,
            epoch: Instant::now(),
            drain_scratch: Vec::new(),
            failover: false,
            down,
            taken_over: HashMap::new(),
            takeover_epoch: 0,
            down_window: RECONNECT_WINDOW,
        })
    }

    /// Records a *resolved* request's accesses (in request order, at
    /// their acquire-time epoch) into every member's digest log.
    /// Deferred to resolution so the per-key `Queued` responses can
    /// mark which epochs were true ready points — a blocked key's
    /// following gap is production wait, not consumption, and must not
    /// be sampled into tau_cli (the same rule the daemon applies to
    /// its local records). Overlapping non-blocking requests may
    /// record out of resolution order; replay skips the resulting
    /// non-positive gaps, so disorder degrades sampling, never
    /// corrupts it. No-op for single-member clusters: the one daemon's
    /// local view already is the full stream.
    fn observe_resolved(&mut self, req: &mut ClusterAcquireRequest) {
        if req.observed {
            return;
        }
        req.observed = true;
        // Record takeover grants before the digest work: keys a taker
        // served are pinned *there*, so their releases — and an
        // eventual hand-back — must route to it, not to the (dead)
        // home member.
        for (taker, part) in &req.takeover {
            for &key in &part.status.ready {
                self.note_taken(key, *taker);
            }
        }
        if self.members.len() <= 1 {
            return;
        }
        for &key in &req.keys {
            let ready = !req.carry_queued.contains(&key)
                && !req.all_parts().any(|part| part.queued.contains(&key));
            for log in &mut self.logs {
                // The member daemon attributes records to its own
                // session client id; the field here is a placeholder.
                log.push(AccessRecord {
                    client: 0,
                    key,
                    epoch: req.epoch,
                    ready,
                });
            }
        }
    }

    /// Stages member `m`'s pending digest (if any) to ride its next
    /// coalesced write. While the member is down, the digest is
    /// dropped and *counted* instead of staged: frames queued onto a
    /// dead connection would grow that session's write buffer without
    /// bound, and the bounded ring behind it already degrades to
    /// counted drops — so the first digest after revival reports the
    /// outage's records in its drop counter, exactly like ring
    /// overflow.
    fn stage_digest(&mut self, m: usize) {
        if self.members.len() <= 1 {
            return;
        }
        let log = &mut self.logs[m];
        if log.is_empty() && log.dropped() == 0 {
            return;
        }
        if self.down[m] {
            self.drain_scratch.clear();
            let overflow = log.drain_into(&mut self.drain_scratch);
            log.note_dropped(overflow + self.drain_scratch.len() as u64);
            self.drain_scratch.clear();
            return;
        }
        self.drain_scratch.clear();
        let dropped = log.drain_into(&mut self.drain_scratch);
        let records = self
            .drain_scratch
            .iter()
            .map(|r| (r.key, r.epoch, r.ready))
            .collect();
        self.members[m].stage(&Request::AccessDigest { dropped, records });
    }

    /// Number of daemons in the cluster.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Fans [`SimfsClient::set_auto_reconnect`] out to every member:
    /// a member daemon that dies and comes back (e.g. restarted with
    /// `--recover`) is redialed and its pins re-asserted instead of
    /// failing the whole cluster session.
    pub fn set_auto_reconnect(&mut self, on: bool) {
        for member in &mut self.members {
            member.set_auto_reconnect(on);
        }
    }

    /// Fans [`SimfsClient::set_op_timeout`] out to every member.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        for member in &mut self.members {
            member.set_op_timeout(timeout);
        }
    }

    /// Successful reconnects summed over every member.
    pub fn reconnects(&self) -> u64 {
        self.members.iter().map(SimfsClient::reconnects).sum()
    }

    /// Pins restored via `Reassert` summed over every member.
    pub fn pins_reasserted(&self) -> u64 {
        self.members.iter().map(SimfsClient::pins_reasserted).sum()
    }

    /// Enables (or disables) interval failover: when a member stays
    /// unreachable through the [down window](Self::set_down_window),
    /// its intervals are rerouted to the live *taker* the fixed
    /// successor rule names (first live member clockwise on the ring),
    /// the pins this session held there are re-homed onto the taker
    /// via tagged `TakeoverAcquire` requests, and in-flight keys
    /// complete on the taker — the cluster degrades instead of
    /// failing. When the dead member answers its port again, the next
    /// acquire re-adopts it and hands its pins back (re-acquire at
    /// home first, then `HandBack` at the taker, so the residency veto
    /// never lapses). Off by default: a confirmed-dead member then
    /// surfaces a typed [`MemberDown`] instead of rerouting (never an
    /// indefinite hang).
    pub fn set_failover(&mut self, on: bool) {
        self.failover = on;
    }

    /// Sets the down-detection window: how long an unresponsive member
    /// is probed (capped-backoff TCP connects) before the cluster
    /// declares it dead — and, symmetrically, each member session's
    /// own reconnect window. Default 30 s.
    pub fn set_down_window(&mut self, window: Duration) {
        self.down_window = window;
        for member in &mut self.members {
            member.set_reconnect_window(window);
        }
    }

    /// True while at least one member is considered down (degraded
    /// mode).
    pub fn degraded(&self) -> bool {
        self.down.iter().any(|&d| d)
    }

    /// Number of members currently considered down.
    pub fn members_down(&self) -> usize {
        self.down.iter().filter(|&&d| d).count()
    }

    /// The current takeover epoch: bumped on every down-detection and
    /// hand-back, zero while the cluster has never degraded.
    pub fn takeover_epoch(&self) -> u64 {
        self.takeover_epoch
    }

    /// Pins currently parked on takers (counts summed over keys).
    pub fn taken_over_pins(&self) -> u64 {
        self.taken_over.values().map(|&(_, count)| count as u64).sum()
    }

    /// The member owning `key`'s restart interval.
    pub fn member_of(&self, key: u64) -> usize {
        self.router.shard_of_key(key)
    }

    /// The taker of dead member `dead` under the fixed successor rule.
    fn taker_of(&self, dead: usize) -> Option<usize> {
        successor_taker(dead, self.members.len(), &self.down)
    }

    /// One quick liveness probe: does the member answer its TCP port?
    fn probe_alive(&self, m: usize) -> bool {
        let Some(addr) = self.members[m].addr else {
            return false;
        };
        TcpStream::connect_timeout(&addr, PROBE_CONNECT_TIMEOUT).is_ok()
    }

    /// Probes member `m` with capped backoff for the down window.
    /// Returns true if it stayed unreachable throughout (confirmed
    /// down).
    fn probe_until_down(&self, m: usize) -> bool {
        let deadline = Instant::now() + self.down_window;
        let mut delay = RECONNECT_MIN_DELAY;
        loop {
            if self.probe_alive(m) {
                return false;
            }
            if Instant::now() + delay >= deadline {
                return true;
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(RECONNECT_MAX_DELAY);
        }
    }

    /// Classifies a member-op error by probing the member.
    /// `injected_deadline` marks errors produced by the cluster's own
    /// bounded-wait harness (no caller-set op timeout): those resume
    /// instead of surfacing when the member turns out to be alive.
    fn classify(&self, m: usize, err: &io::Error, injected_deadline: bool) -> MemberVerdict {
        if !is_disconnect(err) {
            return MemberVerdict::Surface;
        }
        let alive = self.probe_alive(m) || !self.probe_until_down(m);
        if !alive {
            return MemberVerdict::Down;
        }
        if injected_deadline && DvTimeout::from_io(err).is_some() {
            MemberVerdict::KeepWaiting
        } else {
            MemberVerdict::Surface
        }
    }

    /// Declares member `m` dead: marks it down, bumps the takeover
    /// epoch, and discards whatever its session had staged (the frames
    /// belong to a connection that no longer exists).
    fn mark_down(&mut self, m: usize) {
        if self.down[m] {
            return;
        }
        self.down[m] = true;
        self.takeover_epoch += 1;
        self.members[m].pending_out.clear();
        self.members[m].stray.clear();
    }

    /// Re-homes every pin this session held at dead member `m` onto
    /// `taker` via one tagged takeover acquire. Keys the taker cannot
    /// serve lose their pin (the data may be re-simulated on a later
    /// acquire); keys it grants are recorded in `taken_over` so their
    /// releases route to it.
    fn reroute_pins(&mut self, m: usize, taker: usize) -> io::Result<()> {
        let held = std::mem::take(&mut self.members[m].held);
        if held.is_empty() {
            return Ok(());
        }
        let keys: Vec<u64> = held
            .iter()
            .flat_map(|(&key, &count)| std::iter::repeat_n(key, count as usize))
            .collect();
        let origin = self.takeover_epoch;
        let mut req = self.members[taker].takeover_acquire_nb(&keys, m as u32, origin)?;
        self.members[taker].wait(&mut req)?;
        for &key in &req.status.ready {
            self.note_taken(key, taker);
        }
        Ok(())
    }

    /// Records one takeover pin grant: `key` is now pinned at `taker`.
    fn note_taken(&mut self, key: u64, taker: usize) {
        let entry = self.taken_over.entry(key).or_insert((taker, 0));
        entry.0 = taker;
        entry.1 += 1;
    }

    /// Fails slot `slot` of `req` over from dead member `m` to its
    /// taker: re-homes the session's pins there, re-pins the slot's
    /// already-granted keys (their pins died with the member), moves
    /// the slot's resolved status into the request's carry set, and
    /// re-issues its unresolved keys as a tagged takeover acquire on
    /// the taker. Without failover (or with no live taker left) this
    /// is where the typed [`MemberDown`] surfaces.
    fn fail_over_slot(
        &mut self,
        m: usize,
        req: &mut ClusterAcquireRequest,
        slot: Slot,
        op: &'static str,
    ) -> io::Result<()> {
        if !self.failover {
            return Err(MemberDown { member: m, op }.into_io());
        }
        let Some(taker) = self.taker_of(m) else {
            return Err(MemberDown { member: m, op }.into_io());
        };
        self.reroute_pins(m, taker)?;
        let old = match slot {
            Slot::Native(i) => req.parts[i].take(),
            Slot::Takeover(i) => Some(req.takeover.remove(i).1),
        };
        let Some(mut old) = old else { return Ok(()) };
        // A takeover slot keeps its original dead-member tag (the
        // keys' true home); a native slot's home is `m` itself.
        let dead_member = old.takeover.map_or(m as u32, |(dead, _)| dead);
        let origin = self.takeover_epoch;
        // Keys the dead member had already granted: re-pin them on the
        // taker so the caller's ready set keeps a live veto behind it.
        // Keys the taker cannot re-grant move to the failed set — the
        // caller must not believe it holds a veto nobody enforces.
        if !old.status.ready.is_empty() {
            let ready = old.status.ready.clone();
            let mut repin = self.members[taker].takeover_acquire_nb(&ready, dead_member, origin)?;
            self.members[taker].wait(&mut repin)?;
            for &key in &repin.status.ready {
                self.note_taken(key, taker);
            }
            if !repin.status.ok() {
                let lost: HashSet<u64> =
                    repin.status.failed.iter().map(|&(key, _)| key).collect();
                old.status.ready.retain(|key| !lost.contains(key));
                old.status.failed.extend(repin.status.failed);
            }
        }
        // The resolved status carries over *outside* the new part:
        // `observe_resolved` records takeover grants from part ready
        // sets, and the re-pinned keys above are already recorded.
        req.carry.ready.extend_from_slice(&old.status.ready);
        req.carry.failed.extend(old.status.failed);
        req.carry_queued.extend(old.queued.iter().copied());
        let keys: Vec<u64> = old.outstanding.iter().copied().collect();
        if keys.is_empty() {
            return Ok(());
        }
        let part = self.members[taker].takeover_acquire_nb(&keys, dead_member, origin)?;
        req.takeover.push((taker, part));
        Ok(())
    }

    /// `SIMFS_Acquire_nb` across the cluster: each member receives the
    /// keys it owns in one request.
    ///
    /// On a partial failure (a member's daemon died mid-send) the
    /// members that already took their subset are unwound — their
    /// requests waited out and every key that became ready released —
    /// before the error is returned. Without that, the orphaned
    /// `Ready` frames would be dropped by later requests' dispatch and
    /// the pins would survive on the healthy daemons until the whole
    /// session's teardown.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<ClusterAcquireRequest> {
        // Down members are probed for revival before new work routes:
        // a restarted daemon is re-adopted (and handed its pins back)
        // on the first acquire after it answers its port again.
        if self.degraded() {
            self.try_revive();
        }
        // The digest records the *pre-routing* stream — every member's
        // agents must see the whole trajectory, not the interval
        // subsequence the split below sends them. The observation is
        // stamped now (acquire time) but recorded into the member logs
        // only when the request resolves, once the Queued responses
        // have revealed which keys blocked (see `observe_resolved`).
        let epoch = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut per_member: Vec<Vec<u64>> = vec![Vec::new(); self.members.len()];
        for &key in keys {
            per_member[self.member_of(key)].push(key);
        }
        let mut req = ClusterAcquireRequest {
            parts: (0..self.members.len()).map(|_| None).collect(),
            takeover: Vec::new(),
            carry: SimfsStatus::default(),
            carry_queued: HashSet::new(),
            keys: keys.to_vec(),
            epoch,
            observed: false,
        };
        for (m, slot) in per_member.iter_mut().enumerate() {
            if slot.is_empty() {
                continue;
            }
            let send_keys = std::mem::take(slot);
            if self.down[m] {
                // Known-dead home: route straight to its taker (or
                // surface the typed MemberDown without failover).
                if let Err(e) = self.reroute_keys_nb(m, &send_keys, &mut req, "acquire") {
                    self.unwind_request(&mut req);
                    return Err(e);
                }
                continue;
            }
            // The member's digest rides in front of its acquire, in the
            // same write: observation reaches it no later than the keys
            // it will serve.
            self.stage_digest(m);
            match self.members[m].acquire_nb(&send_keys) {
                Ok(part) => req.parts[m] = Some(part),
                Err(e) => match self.classify(m, &e, false) {
                    MemberVerdict::Surface | MemberVerdict::KeepWaiting => {
                        self.unwind_request(&mut req);
                        return Err(e);
                    }
                    MemberVerdict::Down => {
                        self.mark_down(m);
                        if let Err(e) = self.reroute_keys_nb(m, &send_keys, &mut req, "acquire")
                        {
                            self.unwind_request(&mut req);
                            return Err(e);
                        }
                    }
                },
            }
        }
        Ok(req)
    }

    /// Routes `keys` — homed on down member `m` — to its taker as a
    /// tagged takeover acquire, re-homing the session's pins there
    /// first. The typed [`MemberDown`] surfaces here when failover is
    /// off or no live taker remains.
    fn reroute_keys_nb(
        &mut self,
        m: usize,
        keys: &[u64],
        req: &mut ClusterAcquireRequest,
        op: &'static str,
    ) -> io::Result<()> {
        if !self.failover {
            return Err(MemberDown { member: m, op }.into_io());
        }
        let Some(taker) = self.taker_of(m) else {
            return Err(MemberDown { member: m, op }.into_io());
        };
        self.reroute_pins(m, taker)?;
        self.stage_digest(taker);
        let part = self.members[taker].takeover_acquire_nb(keys, m as u32, self.takeover_epoch)?;
        req.takeover.push((taker, part));
        Ok(())
    }

    /// Best-effort abandonment of a partially completed request: waits
    /// out whatever is in flight on live members and releases every
    /// key the request pinned, so an erroring cluster op never leaves
    /// pins behind on the healthy daemons. Pins on down members died
    /// with them — only the local counts are dropped.
    fn unwind_request(&mut self, req: &mut ClusterAcquireRequest) {
        for m in 0..self.members.len() {
            let Some(part) = req.parts[m].as_mut() else { continue };
            if self.down[m] {
                for &key in &part.status.ready {
                    self.members[m].forget_pin(key);
                }
                continue;
            }
            let _ = self.members[m].wait(part);
            for key in part.status.ready.clone() {
                let _ = self.members[m].release(key);
            }
            let _ = self.members[m].flush();
        }
        for i in 0..req.takeover.len() {
            let m = req.takeover[i].0;
            if self.down[m] {
                for &key in &req.takeover[i].1.status.ready {
                    self.members[m].forget_pin(key);
                }
                continue;
            }
            let _ = self.members[m].wait(&mut req.takeover[i].1);
            for key in req.takeover[i].1.status.ready.clone() {
                let _ = self.members[m].release(key);
            }
            let _ = self.members[m].flush();
        }
        // Carried-over ready keys were re-pinned on takers and
        // recorded: route their releases through the takeover map.
        for key in req.carry.ready.clone() {
            let _ = self.release(key);
        }
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves on every
    /// member (members resolve independently, so waiting them out one
    /// at a time loses no concurrency — each daemon keeps producing
    /// while another is being drained).
    ///
    /// If any member fails, the others are still waited out and every
    /// key this request acquired is released before the error returns
    /// — an erroring `wait` means the caller treats the whole acquire
    /// as failed and will never release, so the cluster must not leave
    /// its pins behind on the healthy daemons (the same unwind
    /// [`acquire_nb`](Self::acquire_nb) applies to partial sends).
    pub fn wait(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<SimfsStatus> {
        let mut first_err: Option<io::Error> = None;
        for m in 0..self.members.len() {
            if req.parts[m].is_none() {
                continue;
            }
            if let Err(e) = self.wait_slot(m, req, Slot::Native(m), "wait") {
                // Keep draining the remaining members: their requests
                // are already in flight and abandoning them would
                // strand whatever they pin (the unwind below waits
                // them out too, but an error here must not short-cut
                // the healthy members' grants).
                first_err.get_or_insert(e);
            }
        }
        // Takeover slots can *grow* while being waited out (a taker
        // dying fails its slot over to the next live member), so this
        // re-scans until every slot is done.
        while first_err.is_none() {
            let Some(i) = (0..req.takeover.len()).find(|&i| !req.takeover[i].1.done()) else {
                break;
            };
            let m = req.takeover[i].0;
            if let Err(e) = self.wait_slot(m, req, Slot::Takeover(i), "wait") {
                first_err.get_or_insert(e);
            }
        }
        let Some(err) = first_err else {
            self.observe_resolved(req);
            return Ok(req.merged());
        };
        self.unwind_request(req);
        Err(err)
    }

    /// Waits out one member-local slot with down-detection: when the
    /// caller set no op timeout, a bounded one is injected so a dead
    /// member can never block the analysis forever — injected
    /// expiries are probed and either resumed (member alive, just
    /// slow: a long re-simulation is not a death) or escalated to
    /// failover / [`MemberDown`].
    fn wait_slot(
        &mut self,
        m: usize,
        req: &mut ClusterAcquireRequest,
        slot: Slot,
        op: &'static str,
    ) -> io::Result<()> {
        loop {
            let injected = self.members[m].op_timeout.is_none();
            if injected {
                self.members[m].set_op_timeout(Some(self.down_window));
            }
            let result = {
                let part = match slot {
                    Slot::Native(i) => req.parts[i].as_mut().expect("native slot present"),
                    Slot::Takeover(i) => &mut req.takeover[i].1,
                };
                self.members[m].wait(part)
            };
            if injected {
                self.members[m].set_op_timeout(None);
            }
            match result {
                Ok(_) => return Ok(()),
                Err(e) => match self.classify(m, &e, injected) {
                    MemberVerdict::Surface => return Err(e),
                    MemberVerdict::KeepWaiting => continue,
                    MemberVerdict::Down => {
                        self.mark_down(m);
                        return self.fail_over_slot(m, req, slot, op);
                    }
                },
            }
        }
    }

    /// `SIMFS_Test`: non-blocking completion probe over all members.
    ///
    /// A member error gets the same unwind as [`wait`](Self::wait): the
    /// remaining members are still probed, and every key this request
    /// already acquired is released before the error returns — an
    /// erroring probe means the caller treats the whole acquire as
    /// failed and will never release, so the pins must not survive on
    /// the healthy daemons.
    pub fn test(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        let mut first_err: Option<io::Error> = None;
        for m in 0..self.members.len() {
            if req.parts[m].is_none() {
                continue;
            }
            if let Err(e) = self.test_slot(m, req, Slot::Native(m), "test") {
                first_err.get_or_insert(e);
            }
        }
        let mut i = 0;
        while first_err.is_none() && i < req.takeover.len() {
            let m = req.takeover[i].0;
            if let Err(e) = self.test_slot(m, req, Slot::Takeover(i), "test") {
                first_err.get_or_insert(e);
            }
            i += 1;
        }
        let Some(err) = first_err else {
            if req.done() {
                self.observe_resolved(req);
            }
            return Ok((req.done(), req.merged()));
        };
        self.unwind_request(req);
        Err(err)
    }

    /// One non-blocking probe of a member-local slot, with the same
    /// death classification as [`wait_slot`](Self::wait_slot) — a
    /// probe that trips over a dead member fails the slot over rather
    /// than erroring the whole request.
    fn test_slot(
        &mut self,
        m: usize,
        req: &mut ClusterAcquireRequest,
        slot: Slot,
        op: &'static str,
    ) -> io::Result<()> {
        let result = {
            let part = match slot {
                Slot::Native(i) => req.parts[i].as_mut().expect("native slot present"),
                Slot::Takeover(i) => &mut req.takeover[i].1,
            };
            self.members[m].test(part).map(|_| ())
        };
        match result {
            Ok(()) => Ok(()),
            Err(e) => match self.classify(m, &e, false) {
                MemberVerdict::Surface | MemberVerdict::KeepWaiting => Err(e),
                MemberVerdict::Down => {
                    self.mark_down(m);
                    self.fail_over_slot(m, req, slot, op)
                }
            },
        }
    }

    /// `SIMFS_Release`: staged for write-coalescing on the owning
    /// member's connection (any pending digest for that member is
    /// staged ahead of it). A pin parked on a taker routes there
    /// instead; a pin whose home member is down and was never taken
    /// over died with the member — the release is a local no-op.
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        if let Some(&(taker, _)) = self.taken_over.get(&key) {
            self.note_released_taken(key);
            self.stage_digest(taker);
            return self.members[taker].release(key);
        }
        let member = self.member_of(key);
        if self.down[member] {
            self.members[member].forget_pin(key);
            return Ok(());
        }
        self.stage_digest(member);
        self.members[member].release(key)
    }

    /// Drops one taken-over pin count for `key` (its release is on its
    /// way to the taker).
    fn note_released_taken(&mut self, key: u64) {
        if let Some(entry) = self.taken_over.get_mut(&key) {
            entry.1 -= 1;
            if entry.1 == 0 {
                self.taken_over.remove(&key);
            }
        }
    }

    /// Probes every down member once; one that answers its port is
    /// re-adopted: its session is redialed (nothing to re-assert — the
    /// pins it held moved to takers at down-detection) and, with
    /// failover on, the taken-over pins of its intervals are handed
    /// back under a bumped takeover epoch.
    fn try_revive(&mut self) {
        for m in 0..self.members.len() {
            if !self.down[m] || !self.probe_alive(m) {
                continue;
            }
            if self.members[m].reconnect_now("revive").is_err() {
                continue;
            }
            self.down[m] = false;
            self.takeover_epoch += 1;
            if self.failover {
                self.hand_back_member(m);
            }
        }
    }

    /// Hand-back for revived member `m`: every pin of its intervals
    /// parked on a taker is re-acquired at the restored home member
    /// *first* — so the residency veto never lapses — and only then
    /// dropped at the taker via one `HandBack` per taker. A key whose
    /// home re-acquire fails stays parked on its taker (routing for it
    /// remains degraded; the next revival retries).
    fn hand_back_member(&mut self, m: usize) {
        let parked: Vec<(u64, usize, u32)> = self
            .taken_over
            .iter()
            .filter(|&(&key, _)| self.member_of(key) == m)
            .map(|(&key, &(taker, count))| (key, taker, count))
            .collect();
        if parked.is_empty() {
            return;
        }
        let mut by_taker: HashMap<usize, Vec<u64>> = HashMap::new();
        for (key, taker, count) in parked {
            let mut home_ok = true;
            for _ in 0..count {
                match self.members[m].acquire(&[key]) {
                    Ok(status) if status.ok() => {}
                    _ => {
                        home_ok = false;
                        break;
                    }
                }
            }
            if !home_ok {
                continue;
            }
            by_taker
                .entry(taker)
                .or_default()
                .extend(std::iter::repeat_n(key, count as usize));
            self.taken_over.remove(&key);
        }
        for (taker, keys) in by_taker {
            let _ = self.members[taker].hand_back(m as u32, &keys);
        }
    }

    /// Delivers staged fire-and-forget frames on every member now.
    pub fn flush(&mut self) -> io::Result<()> {
        for member in &mut self.members {
            member.flush()?;
        }
        Ok(())
    }

    /// `SIMFS_Bitrep` on the member owning `key` — or, while that
    /// member is down with failover on, on its taker (which typically
    /// has no recorded checksum for the foreign key and answers
    /// "unknown" rather than failing).
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let member = self.member_of(key);
        let target = if self.down[member] {
            if !self.failover {
                return Err(MemberDown { member, op: "bitrep" }.into_io());
            }
            self.taker_of(member)
                .ok_or_else(|| MemberDown { member, op: "bitrep" }.into_io())?
        } else {
            member
        };
        self.members[target].bitrep(key)
    }

    /// Context statistics summed over every member (each daemon counts
    /// only the traffic of the intervals it owns). Down members are
    /// skipped — their counters are unreachable; degraded-mode totals
    /// therefore undercount the outage window.
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let mut total = ContextStats {
            hits: 0,
            misses: 0,
            restarts: 0,
            produced_steps: 0,
            active_sims: 0,
        };
        for m in 0..self.members.len() {
            if self.down[m] {
                continue;
            }
            match self.members[m].status() {
                Ok(s) => {
                    total.hits += s.hits;
                    total.misses += s.misses;
                    total.restarts += s.restarts;
                    total.produced_steps += s.produced_steps;
                    total.active_sims += s.active_sims;
                }
                Err(e) => match self.classify(m, &e, false) {
                    MemberVerdict::Surface | MemberVerdict::KeepWaiting => return Err(e),
                    MemberVerdict::Down => {
                        self.mark_down(m);
                        if !self.failover {
                            return Err(MemberDown { member: m, op: "status" }.into_io());
                        }
                    }
                },
            }
        }
        Ok(total)
    }

    /// `SIMFS_Finalize` fanned out: an orderly goodbye to every daemon
    /// in the cluster, so each releases this client's pins. The first
    /// error is reported after all members were attempted (a failed
    /// goodbye must not strand pins on the remaining daemons — their
    /// sockets still close, mapping to `ClientGone`).
    pub fn finalize(self) -> io::Result<()> {
        let down = self.down;
        let mut result = Ok(());
        for (m, member) in self.members.into_iter().enumerate() {
            if down.get(m).copied().unwrap_or(false) {
                // A down member's session is already dead: drop it
                // without `Bye` — the daemon-side hangup mapped to
                // `ClientGone` when the connection died.
                continue;
            }
            let r = member.finalize();
            if result.is_ok() {
                result = r;
            }
        }
        result
    }
}

/// The simulator side of the protocol: what a launched re-simulation
/// reports as it runs (used by the `simfs-simd` binary).
pub struct SimulatorSession {
    stream: TcpStream,
}

impl SimulatorSession {
    /// Connects a re-simulation identified by `sim_id` (from the job
    /// environment) to the daemon.
    pub fn connect(
        addr: impl ToSocketAddrs,
        context: &str,
        sim_id: u64,
    ) -> io::Result<SimulatorSession> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Simulator { sim_id },
                context: context.to_string(),
                membership: None,
                epoch: None,
            }
            .encode(),
        )?;
        let frame = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { .. } => Ok(SimulatorSession { stream }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// Restart loaded; production begins (ends the `alpha_sim` phase).
    pub fn started(&mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimStarted.encode())
    }

    /// One output step was published (the intercepted `close`, Fig. 4
    /// step 4).
    pub fn file_produced(&mut self, key: u64, size: u64) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::FileProduced { key, size }.encode())
    }

    /// The assigned range is complete.
    pub fn finished(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimFinished.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_rule_walks_the_ring_past_down_members() {
        // 3-member ring, only member 1 down: its taker is member 2.
        assert_eq!(successor_taker(1, 3, &[false, true, false]), Some(2));
        // Member 2 down: wraps to member 0.
        assert_eq!(successor_taker(2, 3, &[false, false, true]), Some(0));
        // Members 1 and 2 both down: 1's taker skips 2, lands on 0.
        assert_eq!(successor_taker(1, 3, &[false, true, true]), Some(0));
        // Everyone else down: no taker.
        assert_eq!(successor_taker(0, 3, &[true, true, true]), None);
        // Single-member "cluster": nobody to take over.
        assert_eq!(successor_taker(0, 1, &[true]), None);
    }

    #[test]
    fn member_down_roundtrips_through_io_error() {
        let err = MemberDown { member: 1, op: "wait" }.into_io();
        assert_eq!(err.kind(), io::ErrorKind::NotConnected);
        let down = MemberDown::from_io(&err).expect("payload survives");
        assert_eq!(down.member, 1);
        assert_eq!(down.op, "wait");
        // A DvTimeout is not a MemberDown and vice versa.
        let timeout = DvTimeout { op: "wait", after: Duration::from_secs(1) }.into_io();
        assert!(MemberDown::from_io(&timeout).is_none());
        assert!(DvTimeout::from_io(&err).is_none());
    }
}
