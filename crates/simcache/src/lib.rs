//! # simcache — replacement policies for simulation-data caching
//!
//! SimFS keeps a bounded *storage area* of materialized output steps and
//! must decide which steps to drop when the area fills (§III-D of the
//! paper). Caching re-simulation data differs from CPU caching in two
//! ways the paper calls out:
//!
//! 1. **Non-uniform miss costs.** A missing output step `d_i` costs a
//!    re-simulation from its previous restart step, i.e. `i·Δd mod Δr`
//!    output steps of compute — entries near a restart boundary are cheap,
//!    entries far from one are expensive. The cost-aware policies
//!    ([`Bcl`], [`Dcl`], after Jeong & Dubois) exploit this.
//! 2. **Pinned entries.** Output steps currently opened by an analysis
//!    hold a reference count and must not be evicted; every policy here
//!    accepts a pin predicate and skips pinned entries.
//!
//! The policies are deliberately allocation-light: recency orders are
//! intrusive doubly-linked lists over a slab ([`order::KeyedList`]), all
//! operations O(1) except pinned-entry skipping.
//!
//! [`CacheSim`] is the byte-budget manager that the Data Virtualizer
//! drives: it owns entry sizes and reference counts, asks the policy for
//! victims until the budget fits, and reports evictions to the caller.
//!
//! ```
//! use simcache::{policy_by_name, CacheSim};
//!
//! let policy = policy_by_name("dcl", 4).unwrap();
//! let mut cache = CacheSim::new(policy, 4 * 100); // 4 entries of 100 B
//! for step in 0..4u64 {
//!     cache.insert(step, 100, /*miss cost*/ step % 2 + 1);
//! }
//! assert!(cache.access(2)); // hit
//! let evicted = cache.insert(9, 100, 2);
//! assert_eq!(evicted.len(), 1); // one step had to go
//! ```

pub mod arc;
pub mod fasthash;
pub mod cache;
pub mod costlru;
pub mod fifo;
pub mod hitindex;
pub mod lirs;
pub mod lru;
pub mod order;

pub use arc::Arc;
pub use cache::{CacheSim, CacheStats};
pub use costlru::{Bcl, Dcl};
pub use fifo::Fifo;
pub use hitindex::{HitIndex, Retire};
pub use lirs::Lirs;
pub use fasthash::{u64_map, u64_set, U64Map, U64Set};
pub use lru::Lru;

/// Pin predicate: `true` means the key may not be evicted right now.
pub type PinFn<'a> = &'a dyn Fn(u64) -> bool;

/// A cache replacement policy over `u64` keys (output-step keys in SimFS).
///
/// The policy tracks *membership and order only*; sizes, reference counts
/// and byte budgets belong to [`CacheSim`]. All policies must uphold:
///
/// * [`evict`](Policy::evict) never returns a pinned key;
/// * [`evict`](Policy::evict) returns `None` only if every resident entry
///   is pinned (so the caller can always make progress otherwise);
/// * membership reported by [`contains`](Policy::contains) matches the
///   insert/evict/remove history exactly.
pub trait Policy {
    /// Static policy name as used in the paper's figures (e.g. `"LRU"`).
    fn name(&self) -> &'static str;

    /// Is `key` resident?
    fn contains(&self, key: u64) -> bool;

    /// Number of resident entries.
    fn len(&self) -> usize;

    /// True if no entries are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a hit on a resident `key`.
    ///
    /// # Panics
    /// May panic if `key` is not resident (programming error in the
    /// caller: hits are determined by `contains`).
    fn on_hit(&mut self, key: u64);

    /// Records the insertion of `key` with the given miss `cost`
    /// (distance in output steps from its previous restart step). The
    /// caller guarantees `key` is not resident.
    fn on_insert(&mut self, key: u64, cost: u64);

    /// Selects, removes, and returns a victim among non-pinned resident
    /// entries, or `None` if all entries are pinned.
    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64>;

    /// Removes `key` without classifying it as an eviction decision
    /// (external deletion, e.g. a context being dropped). No-op if absent.
    fn on_remove(&mut self, key: u64);
}

/// Instantiates a policy by its (case-insensitive) paper name.
///
/// `capacity_entries` parameterizes the policies that need a nominal size
/// (ARC's ghost lists, LIRS' HIR partition); the others ignore it.
pub fn policy_by_name(name: &str, capacity_entries: usize) -> Option<Box<dyn Policy + Send>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "lru" => Box::new(Lru::new()),
        "fifo" => Box::new(Fifo::new()),
        "arc" => Box::new(Arc::new(capacity_entries)),
        "lirs" => Box::new(Lirs::new(capacity_entries)),
        "bcl" => Box::new(Bcl::new()),
        "dcl" => Box::new(Dcl::new()),
        _ => return None,
    })
}

/// The policy names evaluated in Fig. 5 of the paper, in x-axis order.
pub const PAPER_POLICIES: [&str; 5] = ["ARC", "BCL", "DCL", "LIRS", "LRU"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_all_paper_policies() {
        for name in PAPER_POLICIES {
            let p = policy_by_name(name, 16).unwrap();
            assert_eq!(p.name().to_ascii_lowercase(), name.to_ascii_lowercase());
        }
        assert!(policy_by_name("fifo", 16).is_some());
        assert!(policy_by_name("clock", 16).is_none());
    }
}
