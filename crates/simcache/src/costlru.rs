//! Cost-sensitive LRU: BCL and DCL (Jeong & Dubois, IEEE ToC'06), as
//! adopted by SimFS (§III-D).
//!
//! Both keep an LRU recency order but refuse to evict an *expensive* LRU
//! block when a more recent, *cheaper* block exists: the victim is the
//! first entry in recency order (least recent first) whose miss cost is
//! lower than the LRU's. Plain LRU is the fallback when no cheaper entry
//! exists.
//!
//! To prevent an expensive, rarely-used LRU block from shielding itself
//! forever (evicting an unbounded stream of cheaper, hotter blocks), the
//! LRU's cost is *depreciated* every time it is spared — by the cost of
//! the block evicted in its place — until it eventually becomes the
//! cheapest and is evicted. The two variants differ in **when** they
//! depreciate:
//!
//! * **BCL** (Basic): immediately, as soon as the LRU is bypassed.
//! * **DCL** (Dynamic): only when a bypass is proven wrong — i.e. when a
//!   block that was evicted instead of the LRU is re-referenced *before*
//!   the LRU is. If the LRU is referenced first, the bypass was justified
//!   and the pending depreciations are dropped.
//!
//! In SimFS the miss cost of an output step is its distance (in output
//! steps) from the previous restart step — the number of steps that must
//! be re-simulated to regenerate it.

use crate::fasthash::{u64_map, U64Map};
use crate::order::KeyedList;
use crate::{PinFn, Policy};

#[derive(Clone, Debug)]
struct Entry {
    /// Original miss cost.
    cost: u64,
    /// Current (possibly depreciated) cost used by the victim search.
    credit: u64,
}

/// A pending DCL depreciation: a bypass victim's key, the amount, and the
/// LRU block that was spared.
#[derive(Clone, Debug)]
struct PendingDep {
    amount: u64,
    spared_lru: u64,
}

#[derive(Clone, Debug)]
struct CostLru {
    order: KeyedList,
    entries: U64Map<Entry>,
    /// DCL only: ghost records of bypass victims, keyed by victim.
    pending: U64Map<PendingDep>,
    /// DCL only: bypass victims in age order (oldest at back) for bounding.
    pending_order: KeyedList,
    dynamic: bool,
}

impl CostLru {
    fn new(dynamic: bool) -> Self {
        CostLru {
            order: KeyedList::new(),
            entries: u64_map(),
            pending: u64_map(),
            pending_order: KeyedList::new(),
            dynamic,
        }
    }

    fn bound_pending(&mut self) {
        let cap = (2 * self.entries.len()).max(16);
        while self.pending_order.len() > cap {
            if let Some(old) = self.pending_order.pop_back() {
                self.pending.remove(&old);
            } else {
                break;
            }
        }
    }

    fn on_hit(&mut self, key: u64) {
        let entry = self
            .entries
            .get_mut(&key)
            .unwrap_or_else(|| panic!("cost-LRU hit on non-resident key {key}"));
        // A re-referenced block earns its full cost back.
        entry.credit = entry.cost;
        self.order.move_to_front(key);
        if self.dynamic {
            // The spared LRU was referenced before its bypass victims:
            // bypassing it was the right call, drop those pending
            // depreciations.
            let justified: Vec<u64> = self
                .pending
                .iter()
                .filter(|(_, d)| d.spared_lru == key)
                .map(|(k, _)| *k)
                .collect();
            for k in justified {
                self.pending.remove(&k);
                self.pending_order.remove(k);
            }
        }
    }

    fn on_insert(&mut self, key: u64, cost: u64) {
        debug_assert!(
            !self.entries.contains_key(&key),
            "cost-LRU insert of resident key {key}"
        );
        if self.dynamic {
            if let Some(dep) = self.pending.remove(&key) {
                self.pending_order.remove(key);
                // A bypass victim came back before the spared LRU did:
                // the bypass made this miss happen, so charge the LRU.
                if let Some(lru) = self.entries.get_mut(&dep.spared_lru) {
                    lru.credit = lru.credit.saturating_sub(dep.amount);
                }
            }
        }
        self.entries.insert(key, Entry { cost, credit: cost });
        self.order.push_front(key);
    }

    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
        // The effective LRU: least recent unpinned entry.
        let lru = self.order.iter_back_to_front().find(|&k| !pinned(k))?;
        let lru_credit = self.entries[&lru].credit;
        // First (least recent first) unpinned entry cheaper than the
        // LRU, within a bounded search depth — Jeong & Dubois's
        // algorithms search a fixed number of candidate blocks above
        // the LRU, which also keeps eviction O(1) amortized.
        const SEARCH_DEPTH: usize = 64;
        let cheaper = self
            .order
            .iter_back_to_front()
            .filter(|&k| k != lru && !pinned(k))
            .take(SEARCH_DEPTH)
            .find(|k| self.entries[k].credit < lru_credit);
        let victim = match cheaper {
            Some(v) => {
                let amount = self.entries[&v].credit;
                if self.dynamic {
                    self.pending.insert(
                        v,
                        PendingDep {
                            amount,
                            spared_lru: lru,
                        },
                    );
                    self.pending_order.push_front(v);
                    self.bound_pending();
                } else {
                    // BCL: depreciate the spared LRU immediately.
                    if let Some(e) = self.entries.get_mut(&lru) {
                        e.credit = e.credit.saturating_sub(amount);
                    }
                }
                v
            }
            None => lru,
        };
        self.order.remove(victim);
        self.entries.remove(&victim);
        Some(victim)
    }

    fn on_remove(&mut self, key: u64) {
        self.order.remove(key);
        self.entries.remove(&key);
        self.pending.remove(&key);
        self.pending_order.remove(key);
    }
}

macro_rules! cost_policy {
    ($name:ident, $paper_name:literal, $dynamic:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name(CostLru);

        impl $name {
            /// An empty policy.
            pub fn new() -> Self {
                $name(CostLru::new($dynamic))
            }

            /// Current (possibly depreciated) cost of a resident key
            /// (diagnostics).
            pub fn credit(&self, key: u64) -> Option<u64> {
                self.0.entries.get(&key).map(|e| e.credit)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Policy for $name {
            fn name(&self) -> &'static str {
                $paper_name
            }
            fn contains(&self, key: u64) -> bool {
                self.0.entries.contains_key(&key)
            }
            fn len(&self) -> usize {
                self.0.entries.len()
            }
            fn on_hit(&mut self, key: u64) {
                self.0.on_hit(key)
            }
            fn on_insert(&mut self, key: u64, cost: u64) {
                self.0.on_insert(key, cost)
            }
            fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
                self.0.evict(pinned)
            }
            fn on_remove(&mut self, key: u64) {
                self.0.on_remove(key)
            }
        }
    };
}

cost_policy!(
    Bcl,
    "BCL",
    false,
    "Basic Cost-sensitive LRU: spares expensive LRU blocks, depreciating \
     them immediately on every bypass."
);
cost_policy!(
    Dcl,
    "DCL",
    true,
    "Dynamic Cost-sensitive LRU: spares expensive LRU blocks, depreciating \
     them only when a bypass victim is re-referenced before the LRU \
     (i.e. when the bypass is proven wrong)."
);

#[cfg(test)]
mod tests {
    use super::*;

    const NO_PIN: fn(u64) -> bool = |_| false;

    #[test]
    fn cheap_recent_entry_shields_expensive_lru() {
        for dynamic in [false, true] {
            let mut p = CostLru::new(dynamic);
            p.on_insert(1, 100); // LRU, expensive
            p.on_insert(2, 1); // cheaper, more recent
            p.on_insert(3, 50);
            assert_eq!(p.evict(&NO_PIN), Some(2), "dynamic={dynamic}");
            assert!(p.entries.contains_key(&1));
        }
    }

    #[test]
    fn uniform_costs_degenerate_to_lru() {
        for dynamic in [false, true] {
            let mut p = CostLru::new(dynamic);
            for k in [1, 2, 3] {
                p.on_insert(k, 7);
            }
            assert_eq!(p.evict(&NO_PIN), Some(1), "dynamic={dynamic}");
            assert_eq!(p.evict(&NO_PIN), Some(2));
        }
    }

    #[test]
    fn bcl_depreciates_immediately() {
        let mut p = Bcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        p.on_insert(3, 4);
        assert_eq!(p.evict(&|_| false), Some(2));
        assert_eq!(p.credit(1), Some(6), "10 - 4 after one bypass");
        assert_eq!(p.evict(&|_| false), Some(3));
        assert_eq!(p.credit(1), Some(2));
    }

    #[test]
    fn bcl_eventually_evicts_the_shielded_lru() {
        let mut p = Bcl::new();
        p.on_insert(1, 10);
        // Stream of cheap blocks: each bypass shaves 4 off the LRU.
        for (i, k) in (2..6u64).enumerate() {
            p.on_insert(k, 4);
            let v = p.evict(&|_| false).unwrap();
            if i < 2 {
                assert_ne!(v, 1, "LRU still shielded at bypass {i}");
            } else if i == 2 {
                // credit is now 10-4-4 = 2 < 4: no entry is cheaper than
                // the LRU any more, the fallback evicts it.
                assert_eq!(v, 1);
            }
        }
    }

    #[test]
    fn dcl_does_not_depreciate_without_evidence() {
        let mut p = Dcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        assert_eq!(p.evict(&|_| false), Some(2));
        assert_eq!(p.credit(1), Some(10), "DCL defers depreciation");
    }

    #[test]
    fn dcl_depreciates_when_bypass_victim_returns_first() {
        let mut p = Dcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        p.evict(&|_| false); // evicts 2, spares 1, pending record
        p.on_insert(2, 4); // 2 re-referenced before 1 => bypass was wrong
        assert_eq!(p.credit(1), Some(6));
    }

    #[test]
    fn dcl_drops_pending_when_lru_referenced_first() {
        let mut p = Dcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        p.evict(&|_| false); // evicts 2, spares 1
        p.on_hit(1); // LRU referenced first => bypass justified
        p.on_insert(2, 4); // victim returns later: no depreciation
        assert_eq!(p.credit(1), Some(10));
    }

    #[test]
    fn hit_restores_full_credit() {
        let mut p = Bcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        p.evict(&|_| false); // bypass: credit(1) = 6
        assert_eq!(p.credit(1), Some(6));
        p.on_hit(1);
        assert_eq!(p.credit(1), Some(10));
    }

    #[test]
    fn pinned_entries_are_invisible_to_the_search() {
        let mut p = Bcl::new();
        p.on_insert(1, 100);
        p.on_insert(2, 1);
        p.on_insert(3, 50);
        let pin = |k: u64| k == 2;
        // 2 (the cheap shield) is pinned: search compares 3 against LRU 1.
        assert_eq!(p.evict(&pin), Some(3));
        assert!(p.contains(2));
    }

    #[test]
    fn all_pinned_returns_none() {
        let mut p = Dcl::new();
        p.on_insert(1, 5);
        assert_eq!(p.evict(&|_| true), None);
    }

    #[test]
    fn pending_records_are_bounded() {
        let mut p = Dcl::new();
        p.on_insert(0, 1000);
        for k in 1..10_000u64 {
            p.on_insert(k, 1);
            p.evict(&|_| false);
        }
        assert!(p.0.pending.len() <= (2 * p.len()).max(16));
    }

    #[test]
    fn remove_clears_all_tracking() {
        let mut p = Dcl::new();
        p.on_insert(1, 10);
        p.on_insert(2, 4);
        p.evict(&|_| false); // pending for 2
        p.on_remove(1);
        p.on_insert(2, 4); // spared LRU gone: no crash, no depreciation
        assert!(p.contains(2));
        assert!(!p.contains(1));
    }
}
