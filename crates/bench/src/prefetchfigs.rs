//! Timing figures: strong scalability (Figs. 16/18) and prefetching
//! under restart latency (Figs. 17/19), in virtual time.
//!
//! Configurations straight from §VI:
//!
//! * **COSMO**: one-minute timesteps, `Δd = 5` (output every 5 min),
//!   `Δr = 60` (restart hourly, 12 outputs/interval); measured
//!   `tau_sim = 3 s`, `alpha_sim = 13 s`; the analysis reads `m = 72`
//!   output steps (6 h) and computes mean/variance of a 1-D field.
//! * **FLASH** (Sedov): `Δd = 1`, `Δr = 20`; `tau_sim = 14 s`,
//!   `alpha_sim = 7 s`; `m = 200` (1 s of blast evolution).
//!
//! The latency studies (Figs. 17/19) use the paper's synthetic-simulator
//! methodology: same `tau_sim`, swept `alpha_sim` (emulating queueing),
//! `s_max = 8`, analysis lengths `m` per figure, with the analytic
//! curves `T_single = alpha + m·tau`, `T_lower = alpha + m·tau/s_max`,
//! and the warm-up bound `T_pre` overlaid.

use crate::output::{fmt, RunOpts, Table};
use simbatch::QueueModel;
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::vharness::VirtualExperiment;
use simkit::Dur;

/// A §VI experiment family (COSMO or FLASH).
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Family label for tables.
    pub name: &'static str,
    /// Timesteps per output step (`Δd`).
    pub dd: u64,
    /// Timesteps per restart step (`Δr`).
    pub dr: u64,
    /// Timeline length in timesteps.
    pub n_timesteps: u64,
    /// Production interval `tau_sim`.
    pub tau_sim: Dur,
    /// Restart latency `alpha_sim` (excluding queueing).
    pub alpha_sim: Dur,
    /// Analysis inter-access time `tau_cli`.
    pub tau_cli: Dur,
    /// Output steps the analysis reads (`m`).
    pub m: u64,
    /// Nodes per re-simulation (figure annotations).
    pub nodes_per_sim: u32,
}

impl ScalingConfig {
    /// The COSMO configuration of Fig. 16.
    pub fn cosmo() -> ScalingConfig {
        ScalingConfig {
            name: "COSMO",
            dd: 5,
            dr: 60,
            n_timesteps: 5 * 2400, // 2400 output steps available
            tau_sim: Dur::from_secs(3),
            alpha_sim: Dur::from_secs(13),
            tau_cli: Dur::from_millis(500),
            m: 72,
            nodes_per_sim: 100,
        }
    }

    /// The FLASH/Sedov configuration of Fig. 18.
    pub fn flash() -> ScalingConfig {
        ScalingConfig {
            name: "FLASH",
            dd: 1,
            dr: 20,
            n_timesteps: 2400,
            tau_sim: Dur::from_secs(14),
            alpha_sim: Dur::from_secs(7),
            tau_cli: Dur::from_secs(2),
            m: 200,
            nodes_per_sim: 27,
        }
    }

    fn experiment(&self, smax: u32, alpha: Dur, seed: u64) -> VirtualExperiment {
        let steps = StepMath::new(self.dd, self.dr, self.n_timesteps);
        // Cache sized generously: these figures study timing, not
        // capacity pressure.
        let cfg = ContextCfg::new(self.name, steps, 1, u64::MAX / 4)
            .with_policy("dcl")
            .with_smax(smax)
            .with_prefetch(true);
        VirtualExperiment {
            cfg,
            alpha_sim: alpha,
            tau_sim: self.tau_sim,
            queue: QueueModel::None,
            nodes_per_sim: self.nodes_per_sim,
            seed,
        }
    }
}

/// One point of a strong-scalability figure.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// `s_max` (x-axis).
    pub smax: u32,
    /// Forward-analysis completion time (s).
    pub forward_s: f64,
    /// Backward-analysis completion time (s).
    pub backward_s: f64,
    /// Peak nodes used (figure annotation).
    pub peak_nodes: u32,
    /// The full-forward-re-simulation reference `T_single` (s).
    pub full_forward_s: f64,
}

/// Figs. 16/18: analysis completion time vs `s_max`, forward and
/// backward, against the full forward re-simulation.
pub fn scaling(cfg: &ScalingConfig, opts: &RunOpts) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    // The analyses start mid-timeline (a restart boundary + offset) so
    // backward scans have history below them.
    let b = cfg.dr / cfg.dd;
    let start = (cfg.n_timesteps / cfg.dd / 2 / b) * b + 1;
    let forward: Vec<u64> = (start..start + cfg.m).collect();
    let backward: Vec<u64> = (start..start + cfg.m).rev().collect();
    for smax in [2u32, 4, 8, 16] {
        let exp = cfg.experiment(smax, cfg.alpha_sim, opts.seed);
        let fwd = exp.run_analysis(&forward, cfg.tau_cli);
        let bwd = exp.run_analysis(&backward, cfg.tau_cli);
        points.push(ScalingPoint {
            smax,
            forward_s: fwd.completion.as_secs_f64(),
            backward_s: bwd.completion.as_secs_f64(),
            peak_nodes: fwd.peak_nodes.max(bwd.peak_nodes),
            full_forward_s: exp.t_single(cfg.m).as_secs_f64(),
        });
    }
    points
}

/// Renders a scalability figure.
pub fn scaling_table(cfg: &ScalingConfig, points: &[ScalingPoint]) -> Table {
    let mut t = Table::new(
        &format!(
            "Fig. {} — {} strong scalability (m = {})",
            if cfg.name == "COSMO" { 16 } else { 18 },
            cfg.name,
            cfg.m
        ),
        &[
            "smax",
            "forward_s",
            "backward_s",
            "full_forward_s",
            "speedup_fwd",
            "speedup_bwd",
            "peak_nodes",
        ],
    );
    for p in points {
        t.row(vec![
            p.smax.to_string(),
            fmt(p.forward_s),
            fmt(p.backward_s),
            fmt(p.full_forward_s),
            fmt(p.full_forward_s / p.forward_s),
            fmt(p.full_forward_s / p.backward_s),
            p.peak_nodes.to_string(),
        ]);
    }
    t
}

/// One point of a latency figure (Figs. 17/19).
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// Analysis length `m`.
    pub m: u64,
    /// Swept restart latency (s).
    pub alpha_s: f64,
    /// Measured SimFS completion (s).
    pub simfs_s: f64,
    /// `T_single` (s).
    pub t_single_s: f64,
    /// `T_lower` (s).
    pub t_lower_s: f64,
    /// Warm-up bound `T_pre` (s).
    pub t_pre_s: f64,
}

/// Figs. 17/19: completion vs restart latency for several analysis
/// lengths, `s_max = 8`, synthetic simulator with the family's
/// `tau_sim`.
pub fn latency(cfg: &ScalingConfig, ms: &[u64], alphas_s: &[u64], opts: &RunOpts) -> Vec<LatencyPoint> {
    let mut points = Vec::new();
    for &m in ms {
        for &alpha_s in alphas_s {
            let alpha = Dur::from_secs(alpha_s);
            let exp = cfg.experiment(8, alpha, opts.seed);
            let b = cfg.dr / cfg.dd;
            let start = b + 1; // second interval onward
            let accesses: Vec<u64> = (start..start + m).collect();
            let res = exp.run_analysis(&accesses, cfg.tau_cli);
            points.push(LatencyPoint {
                m,
                alpha_s: alpha_s as f64,
                simfs_s: res.completion.as_secs_f64(),
                t_single_s: exp.t_single(m).as_secs_f64(),
                t_lower_s: exp.t_lower(m).as_secs_f64(),
                t_pre_s: exp.t_pre().as_secs_f64(),
            });
        }
    }
    points
}

/// Renders a latency figure.
pub fn latency_table(cfg: &ScalingConfig, points: &[LatencyPoint]) -> Table {
    let mut t = Table::new(
        &format!(
            "Fig. {} — {} prefetching vs restart latency (s_max = 8)",
            if cfg.name == "COSMO" { 17 } else { 19 },
            cfg.name
        ),
        &["m", "alpha_s", "simfs_s", "t_single_s", "t_lower_s", "t_pre_s"],
    );
    for p in points {
        t.row(vec![
            p.m.to_string(),
            fmt(p.alpha_s),
            fmt(p.simfs_s),
            fmt(p.t_single_s),
            fmt(p.t_lower_s),
            fmt(p.t_pre_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmo_scaling_shape() {
        let opts = RunOpts::quick();
        let cfg = ScalingConfig::cosmo();
        let points = scaling(&cfg, &opts);
        assert_eq!(points.len(), 4);
        // The paper's headline: forward analysis scales past the full
        // forward re-simulation (factor 2.4x at s_max = 8).
        let p8 = points.iter().find(|p| p.smax == 8).unwrap();
        assert!(
            p8.full_forward_s / p8.forward_s > 1.5,
            "speedup at smax=8 only {:.2}",
            p8.full_forward_s / p8.forward_s
        );
        // Backward is slower than forward (pays the first interval).
        assert!(p8.backward_s >= p8.forward_s * 0.9);
        // More smax never makes it dramatically worse.
        let p2 = points.iter().find(|p| p.smax == 2).unwrap();
        assert!(p8.forward_s <= p2.forward_s * 1.1);
    }

    #[test]
    fn latency_dominates_at_high_alpha() {
        let opts = RunOpts::quick();
        let cfg = ScalingConfig::cosmo();
        let points = latency(&cfg, &[72], &[0, 600], &opts);
        let low = &points[0];
        let high = &points[1];
        assert!(high.simfs_s > low.simfs_s, "alpha must cost time");
        // At very high restart latency the run converges toward the
        // warm-up regime: within a factor ~2 of T_single (the paper's
        // bound on SimFS overhead vs in-situ).
        assert!(
            high.simfs_s <= high.t_single_s * 2.5,
            "SimFS {:.0}s vs 2.5x T_single {:.0}s",
            high.simfs_s,
            high.t_single_s * 2.5
        );
        // And never beats the parallel lower bound.
        assert!(high.simfs_s >= high.t_lower_s * 0.99);
    }
}
