//! Prefetch agents (§IV-B) and the lossy access-stream digest that
//! feeds them: one agent per analysis client, observation decoupled
//! from the acquire path.
//!
//! # The agent algorithm (§IV-B)
//!
//! The agent watches the client's access stream, detects forward or
//! backward k-strided trajectories "after two k-stride consecutive
//! accesses", and plans re-simulations that (1) mask the restart latency
//! `alpha_sim` and (2) match the analysis bandwidth. The three inputs
//! are exponential moving averages: `alpha_sim` (restart latency) and
//! `tau_sim` (inter-production gap) maintained by the DV from simulator
//! notifications, and `tau_cli` — the client's *consumption* time per
//! step, sampled from ready-to-next-acquire gaps so a blocked analysis
//! does not look as slow as the simulation that blocks it.
//!
//! * **Re-simulation length** (§IV-B1a): enough accesses must fit into
//!   one block to cover the next restart latency, reserving two accesses
//!   to confirm the pattern —
//!   `n = ⌈alpha / max(k·tau_sim, tau_cli) + 2⌉ · k`, rounded up to a
//!   restart-interval multiple.
//! * **Prefetch trigger** (§IV-B1a): a new batch is launched at the last
//!   access that still masks the restart latency — when the remaining
//!   planned coverage drops to `⌈alpha / max(k·tau_sim, tau_cli)⌉ · k`
//!   steps.
//! * **Bandwidth matching** (§IV-B1b): if the analysis outpaces the
//!   simulation, first escalate the parallelism level; once escalation
//!   is exhausted, run `s_opt = ⌈k·tau_sim / tau_cli⌉` simulations in
//!   parallel, ramping `s` up by doubling (1, 2, 4, …) while the pattern
//!   persists, capped by `s_max`.
//! * **Backward trajectories** (§IV-B2): simulations still run forward,
//!   so blocks are whole restart intervals planned below the analysis
//!   frontier; when the analysis is slower,
//!   `n = k·alpha / (tau_cli − k·tau_sim)` (rounded up to a restart
//!   interval) with one simulation suffices, otherwise
//!   `s = k·alpha/(n·tau_cli) + k·tau_sim/tau_cli` parallel interval
//!   simulations are planned.
//!
//! The agent only *plans*; the Data Virtualizer filters blocks against
//! cache/pending state, enforces `s_max`, and emits launches.
//!
//! # The pollution-kill rule (§IV-C)
//!
//! Two safety valves keep speculation from hurting the cache:
//!
//! * **Direction change kills.** When a client's stride changes, its
//!   outstanding prefetch simulations are killed — but "a simulation can
//!   be killed only if there are no other analyses waiting for the files
//!   that are going to be produced by it".
//! * **Pollution resets.** A *miss* on a key this client's own agent
//!   prefetched, with nobody currently producing it, means the step was
//!   produced and then evicted before it was consumed: prefetching is
//!   running ahead of the cache budget. Every agent is reset (pattern,
//!   ramp, prefetched-set; the `tau_cli` estimate survives — client
//!   speed is not invalidated by cache pollution).
//!
//! # The access-stream digest: observation decoupled from acquisition
//!
//! Historically the agents observed the stream *inside* the acquire
//! path: every hit took the DV lock so `on_access` could run. That made
//! a prefetching context the slowest configuration — it disabled the
//! daemon's lock-free [`simcache::HitIndex`] fast path and forced a
//! single DV shard (sharding splits the stream each agent sees, and
//! clustering splits it again across daemons).
//!
//! [`AccessLog`] breaks the coupling. Observation becomes a *record*,
//! not a lock acquisition: each daemon connection appends
//! [`AccessRecord`]s — `(client, key, epoch)` — to a bounded
//! per-connection ring as it serves fast-path hits and slow-path
//! acquires, and a drain step replays the ring into the prefetch agents
//! under the DV shard locks later (piggybacked on the next slow-path
//! transition, or on a periodic reactor tick when the stream is pure
//! hits). Clustered DVLib sessions forward the same digest over the
//! wire (`AccessDigest`) so every member's agents observe the full
//! pre-routing sequence and direction/cadence detection survives
//! clustering.
//!
//! The contract, precisely:
//!
//! * **Never blocks the hot path.** The ring is owned by one reactor
//!   thread; `push` is a bounded array write. When the ring is full the
//!   *oldest* record is overwritten and counted in
//!   [`AccessLog::dropped`] — the freshest trajectory is what pattern
//!   detection needs.
//! * **Lossy, but order-preserving.** Records replay in observation
//!   order; drops remove a *prefix* of the un-drained window. Loss can
//!   delay pattern confirmation or skip a trigger (degraded prefetch
//!   quality, visible in the drop counters) but never reorders the
//!   stream, so it cannot fabricate a direction change or corrupt agent
//!   state.
//! * **Observation lags acquisition by a bounded window.** An agent may
//!   learn about an access up to one drain interval after the DV served
//!   it. Plans are still filtered against cache/pending state at drain
//!   time, so the lag costs at most prefetch lead, never correctness.
//! * **Epochs are per-client-clock.** Only the differences between one
//!   client's consecutive epochs are used (as `tau_cli` consumption
//!   samples); digests forwarded from DVLib carry client-side clocks.

use crate::model::StepMath;
use crate::perfmodel::Ema;
use simcache::{u64_set, U64Set};
use simkit::Dur;
use std::ops::RangeInclusive;

/// Default [`AccessLog`] capacity: deep enough that a drain every few
/// hundred requests (the per-wake dispatch cap, or one reactor tick)
/// loses nothing, small enough to be per-connection state.
pub const ACCESS_LOG_CAPACITY: usize = 1024;

/// One observed acquire, recorded off the acquire path: who accessed
/// which key, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessRecord {
    /// The accessing client.
    pub client: u64,
    /// The accessed output-step key.
    pub key: u64,
    /// Monotonic observation timestamp in nanoseconds. Clock domain is
    /// the *recorder's* (daemon or forwarding client); only differences
    /// between one client's consecutive records carry meaning — they
    /// become `tau_cli` consumption samples on replay.
    pub epoch: u64,
    /// `epoch` is a *ready point*: the request was served immediately,
    /// so the gap from this record to the client's next access is pure
    /// consumption time. False for accesses that blocked on production
    /// (their acquire-time epoch is *earlier* than the data's ready
    /// time) — replay must not turn the following gap into a `tau_cli`
    /// sample, or every miss would inflate the estimate by the full
    /// production wait and mis-size the §IV-B prefetch blocks.
    pub ready: bool,
}

/// Bounded, lossy, order-preserving access log: the decoupling buffer
/// between the lock-free acquire path and the prefetch agents (see the
/// module docs for the full contract).
///
/// Single-owner by design — the daemon keeps one per connection on its
/// reactor thread, DVLib one per cluster member — so `push` needs no
/// synchronization. Overflow overwrites the oldest record and counts it;
/// [`drain_into`](Self::drain_into) hands the window to the replayer
/// together with the drop count accumulated since the previous drain.
#[derive(Clone, Debug)]
pub struct AccessLog {
    buf: Vec<AccessRecord>,
    capacity: usize,
    /// Index of the oldest record.
    head: usize,
    len: usize,
    /// Records lost since the last drain (ring overflows plus any
    /// wire-reported upstream drops folded in via
    /// [`note_dropped`](Self::note_dropped)).
    dropped: u64,
}

impl AccessLog {
    /// A log holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> AccessLog {
        AccessLog {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Records one access. Never blocks and never allocates once the
    /// ring has grown to capacity: a full ring overwrites its oldest
    /// record and counts the loss.
    pub fn push(&mut self, record: AccessRecord) {
        if self.len == self.capacity {
            // Full: the oldest record gives way. The survivors are the
            // freshest suffix of the stream — exactly what trajectory
            // detection wants to see after a gap.
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            return;
        }
        let tail = (self.head + self.len) % self.capacity;
        if tail == self.buf.len() {
            self.buf.push(record);
        } else {
            self.buf[tail] = record;
        }
        self.len += 1;
    }

    /// Records buffered and not yet drained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records lost since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Folds in drops that happened upstream (a forwarded wire digest
    /// reporting its own sender-side losses).
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Moves the buffered window into `out` (appended in observation
    /// order) and returns the loss count accumulated since the previous
    /// drain, resetting both.
    pub fn drain_into(&mut self, out: &mut Vec<AccessRecord>) -> u64 {
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % self.capacity]);
        }
        self.head = 0;
        self.len = 0;
        std::mem::take(&mut self.dropped)
    }
}

/// Detected access trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Increasing keys.
    Forward,
    /// Decreasing keys.
    Backward,
}

/// Inputs the agent needs from the DV's estimators at decision time.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchInputs {
    /// Current restart-latency estimate `alpha_sim`.
    pub alpha: Dur,
    /// Current inter-production estimate `tau_sim`.
    pub tau_sim: Dur,
    /// Cadence/timeline math of the context.
    pub steps: StepMath,
    /// Upper bound on simultaneous simulations (`s_max`).
    pub smax: u32,
    /// Use the conservative doubling ramp instead of launching `s_opt`
    /// simulations directly (§IV-B1b).
    pub ramp: bool,
}

/// A planned prefetch: contiguous key blocks to simulate, at a
/// parallelism level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Key ranges to simulate, one simulation per block.
    pub blocks: Vec<RangeInclusive<u64>>,
    /// Parallelism level for these launches (§IV-B1b strategy 1).
    pub level: u32,
}

/// What the DV must do after feeding an access to the agent.
#[derive(Clone, Debug, Default)]
pub struct AgentOutcome {
    /// The client changed direction/stride: kill its outstanding
    /// prefetches (§IV-C).
    pub direction_changed: bool,
    /// Launch these prefetch blocks (already deduplicated against the
    /// agent's own planning, not against the cache).
    pub plan: Option<PrefetchPlan>,
}

/// Per-client prefetch agent state.
#[derive(Clone, Debug)]
pub struct PrefetchAgent {
    /// Client consumption time per access, *excluding* DV-induced
    /// blocking: the DV samples ready-to-next-acquire gaps and feeds
    /// them via [`observe_tau_cli`](Self::observe_tau_cli). Measuring
    /// raw inter-access times instead would make a blocked analysis
    /// look exactly as slow as the simulation and defeat bandwidth
    /// matching (`s_opt` would always be 1).
    tau_cli: Ema,
    last_key: Option<u64>,
    last_stride: Option<i64>,
    /// Confirmed pattern: the stride (sign = direction, |s| = k).
    pattern: Option<i64>,
    /// Doubling ramp state `s` (§IV-B1b strategy 2).
    ramp: u32,
    /// Parallelism escalation level (§IV-B1b strategy 1).
    level: u32,
    /// Exclusive frontier of planned production: highest planned key
    /// (forward) or lowest (backward).
    frontier: Option<u64>,
    /// Keys this agent asked to prefetch (pollution detection, §IV-C).
    prefetched: U64Set,
}

impl PrefetchAgent {
    /// A fresh agent; `ema_alpha` smooths its `tau_cli` estimate.
    pub fn new(ema_alpha: f64) -> PrefetchAgent {
        PrefetchAgent {
            tau_cli: Ema::new(ema_alpha),
            last_key: None,
            last_stride: None,
            pattern: None,
            ramp: 1,
            level: 0,
            frontier: None,
            prefetched: u64_set(),
        }
    }

    /// The confirmed direction, if any.
    pub fn direction(&self) -> Option<Direction> {
        self.pattern.map(|s| {
            if s > 0 {
                Direction::Forward
            } else {
                Direction::Backward
            }
        })
    }

    /// The confirmed stride magnitude `k`, if a pattern is confirmed.
    pub fn stride_k(&self) -> Option<u64> {
        self.pattern.map(|s| s.unsigned_abs())
    }

    /// Current client consumption-time estimate.
    pub fn tau_cli(&self) -> Option<Dur> {
        self.tau_cli.estimate()
    }

    /// Feeds one consumption-time sample (`ready -> next acquire`),
    /// measured by the DV.
    pub fn observe_tau_cli(&mut self, sample: Dur) {
        self.tau_cli.observe(sample);
    }

    /// Current parallelism-escalation level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Did this agent prefetch `key` at some point? (Pollution check:
    /// a miss on such a key means it was produced and evicted before
    /// being consumed.)
    pub fn was_prefetched(&self, key: u64) -> bool {
        self.prefetched.contains(&key)
    }

    /// Resets pattern state and ramp (pollution signal resets *all*
    /// agents, §IV-C). The `tau_cli` estimate survives: client speed is
    /// not invalidated by cache pollution.
    pub fn reset(&mut self) {
        self.last_stride = None;
        self.pattern = None;
        self.ramp = 1;
        self.frontier = None;
        self.prefetched.clear();
    }

    /// Tells the agent that production up to `frontier` (inclusive) has
    /// been planned on this client's behalf (miss launches included).
    pub fn note_planned(&mut self, dir: Direction, frontier_key: u64) {
        self.frontier = Some(match (self.frontier, dir) {
            (None, _) => frontier_key,
            (Some(f), Direction::Forward) => f.max(frontier_key),
            (Some(f), Direction::Backward) => f.min(frontier_key),
        });
    }

    /// Marks keys as prefetched on behalf of this client.
    pub fn note_prefetched(&mut self, keys: impl IntoIterator<Item = u64>) {
        self.prefetched.extend(keys);
    }

    /// Feeds one access; returns what the DV should do.
    pub fn on_access(&mut self, key: u64, inputs: &PrefetchInputs) -> AgentOutcome {
        let mut outcome = AgentOutcome::default();

        let stride = self
            .last_key
            .map(|prev| key as i64 - prev as i64);
        self.last_key = Some(key);

        let Some(stride) = stride else {
            return outcome;
        };
        if stride == 0 {
            // Re-access of the same step: no trajectory information.
            return outcome;
        }

        match self.pattern {
            Some(p) if p == stride => {
                // Pattern continues.
            }
            Some(_) => {
                // Direction or stride changed: the paper kills the
                // prefetched simulations and the agent resets (§IV-C).
                outcome.direction_changed = true;
                self.pattern = None;
                self.ramp = 1;
                self.frontier = None;
                self.prefetched.clear();
                self.last_stride = Some(stride);
                return outcome;
            }
            None => {
                if self.last_stride == Some(stride) {
                    // Two consecutive identical strides: confirmed.
                    self.pattern = Some(stride);
                    self.frontier.get_or_insert(key);
                } else {
                    self.last_stride = Some(stride);
                    return outcome;
                }
            }
        }
        self.last_stride = Some(stride);

        outcome.plan = self.plan_prefetch(key, stride, inputs);
        outcome
    }

    /// Plans the next batch of prefetch blocks if the trigger condition
    /// holds.
    fn plan_prefetch(
        &mut self,
        key: u64,
        stride: i64,
        inputs: &PrefetchInputs,
    ) -> Option<PrefetchPlan> {
        let k = stride.unsigned_abs().max(1);
        let steps = inputs.steps;
        let b = steps.outputs_per_interval();
        let n_outputs = steps.n_outputs();
        let forward = stride > 0;

        let tau_cli = self.tau_cli.estimate()?;
        let alpha = inputs.alpha;
        let tau_sim = inputs.tau_sim;

        // Effective per-access service time: limited by the simulation
        // or by the analysis itself (§IV-B1a).
        let k_tau_sim = tau_sim.saturating_mul(k);
        let denom = k_tau_sim.max(tau_cli);
        let lead_accesses = if denom.is_zero() {
            1
        } else {
            div_ceil_dur(alpha, denom)
        };

        // Trigger: remaining planned coverage within the masking window?
        let frontier = self.frontier.unwrap_or(key);
        let remaining = if forward {
            frontier.saturating_sub(key)
        } else {
            key.saturating_sub(frontier)
        };
        if remaining > lead_accesses.saturating_mul(k) {
            return None;
        }

        // Strategy 1 (§IV-B1b): escalate parallelism while the analysis
        // outpaces the simulation and the simulator allows it.
        let analysis_faster = tau_cli < k_tau_sim;
        if analysis_faster && inputs.steps.n_outputs() > 0 {
            // Escalation is bounded by the driver's max level; the DV
            // maps level -> nodes. We escalate one level per trigger.
            if self.level < 8 {
                self.level += 1;
            }
        }

        // Block length n (§IV-B1a / §IV-B2), rounded up to a restart
        // interval multiple.
        let n = if forward {
            round_up_multiple((lead_accesses + 2).saturating_mul(k), b)
        } else if tau_cli > k_tau_sim {
            // Analysis slower than simulation: one sim of length
            // n = k·alpha / (tau_cli − k·tau_sim) masks everything.
            let gap = tau_cli - k_tau_sim;
            let n_raw = (alpha.as_secs_f64() * k as f64 / gap.as_secs_f64()).ceil() as u64;
            round_up_multiple(n_raw.max(1), b)
        } else {
            // Analysis faster: one restart interval per simulation;
            // parallelism comes from s below.
            b
        };

        // Strategy 2: number of parallel simulations.
        let s_opt = if forward {
            div_ceil_dur(k_tau_sim, tau_cli).max(1)
        } else {
            // s = k·alpha/(n·tau_cli) + k·tau_sim/tau_cli  (§IV-B2)
            let tc = tau_cli.as_secs_f64().max(1e-12);
            let s = (k as f64 * alpha.as_secs_f64()) / (n as f64 * tc)
                + k_tau_sim.as_secs_f64() / tc;
            s.ceil() as u64
        }
        .max(1) as u32;

        let s = if inputs.ramp {
            // Conservative mode: "start with s = 1 and double it at each
            // prefetching step" (§IV-B1b).
            let s = self.ramp.min(s_opt).min(inputs.smax).max(1);
            if self.ramp < inputs.smax.min(s_opt.max(1)) {
                self.ramp = (self.ramp * 2).min(inputs.smax);
            }
            s
        } else {
            // Default: match the analysis bandwidth immediately.
            s_opt.min(inputs.smax).max(1)
        };

        // Lay out `s` blocks of `n` steps beyond the frontier.
        let mut blocks = Vec::with_capacity(s as usize);
        let mut edge = frontier;
        for _ in 0..s {
            if forward {
                let start = edge + 1;
                if start > n_outputs {
                    break;
                }
                let stop = (edge + n).min(n_outputs);
                blocks.push(start..=stop);
                edge = stop;
            } else {
                if edge <= 1 {
                    break;
                }
                let stop = edge - 1;
                let start = edge.saturating_sub(n).max(1);
                blocks.push(start..=stop);
                edge = start;
            }
        }
        if blocks.is_empty() {
            return None;
        }
        self.frontier = Some(edge);
        for block in &blocks {
            self.prefetched.extend(block.clone());
        }
        Some(PrefetchPlan {
            blocks,
            level: self.level,
        })
    }
}

/// `⌈a / b⌉` over durations, as a count.
fn div_ceil_dur(a: Dur, b: Dur) -> u64 {
    if b.is_zero() {
        return 1;
    }
    a.as_nanos().div_ceil(b.as_nanos())
}

/// Smallest multiple of `m` that is `>= x` (and at least `m`).
fn round_up_multiple(x: u64, m: u64) -> u64 {
    let m = m.max(1);
    x.max(1).div_ceil(m) * m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(alpha_s: u64, tau_sim_s: u64) -> PrefetchInputs {
        PrefetchInputs {
            alpha: Dur::from_secs(alpha_s),
            tau_sim: Dur::from_secs(tau_sim_s),
            steps: StepMath::new(1, 4, 1000), // B = 4, N = 1000
            smax: 8,
            ramp: false,
        }
    }

    /// Feeds accesses with a fixed consumption-time sample per access.
    fn feed(
        agent: &mut PrefetchAgent,
        tau_cli_s: f64,
        keys: &[u64],
        inp: &PrefetchInputs,
    ) -> Vec<AgentOutcome> {
        keys.iter()
            .map(|&k| {
                agent.observe_tau_cli(Dur::from_secs_f64(tau_cli_s));
                agent.on_access(k, inp)
            })
            .collect()
    }

    #[test]
    fn pattern_confirmed_after_two_strides() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11], &inp);
        assert!(a.direction().is_none(), "one stride is not a pattern");
        feed(&mut a, 1.0, &[12], &inp);
        assert_eq!(a.direction(), Some(Direction::Forward));
        assert_eq!(a.stride_k(), Some(1));
    }

    #[test]
    fn backward_pattern_detected() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[50, 48, 46], &inp);
        assert_eq!(a.direction(), Some(Direction::Backward));
        assert_eq!(a.stride_k(), Some(2));
    }

    #[test]
    fn direction_change_reports_kill() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11, 12], &inp);
        let out = feed(&mut a, 1.0, &[9], &inp);
        assert!(out[0].direction_changed);
        assert!(a.direction().is_none());
        // Needs two consecutive equal strides to re-confirm: the jump
        // stride (12 -> 9) differs from the scan stride (-1), so two
        // more accesses are required.
        let out = feed(&mut a, 1.0, &[8], &inp);
        assert!(!out[0].direction_changed);
        assert!(a.direction().is_none());
        feed(&mut a, 1.0, &[7], &inp);
        assert_eq!(a.direction(), Some(Direction::Backward));
    }

    #[test]
    fn repeat_access_is_not_direction_change() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[10, 11, 12], &inp);
        let out = feed(&mut a, 1.0, &[12], &inp);
        assert!(!out[0].direction_changed);
        assert_eq!(a.direction(), Some(Direction::Forward));
    }

    #[test]
    fn forward_plan_masks_restart_latency() {
        // alpha = 4 s, tau_sim = 1 s, tau_cli = 1 s (analysis reads as
        // fast as production): lead = ceil(4/1) = 4, n = (4+2)*1 ->
        // rounded to B=4 multiple -> 8.
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 12); // miss sim covered ..=12
        let outs = feed(&mut a, 1.0, &[9, 10, 11], &inp);
        // At key 11: remaining = 12 - 11 = 1 <= 4 -> trigger.
        let plan = outs[2].plan.as_ref().expect("plan at the trigger");
        assert_eq!(plan.blocks[0], 13..=20, "n = 8 beyond frontier 12");
    }

    #[test]
    fn no_plan_while_coverage_sufficient() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        a.note_planned(Direction::Forward, 100);
        let outs = feed(&mut a, 1.0, &[10, 11, 12, 13], &inp);
        assert!(
            outs.iter().all(|o| o.plan.is_none()),
            "frontier 100 is far beyond the masking window"
        );
    }

    #[test]
    fn ramp_doubles_across_triggers() {
        // Analysis 4x faster than the simulation: s_opt = 4.
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(4),
            tau_sim: Dur::from_secs(4),
            steps: StepMath::new(1, 4, 100_000),
            smax: 8,
            ramp: true,
        };
        let mut sizes = Vec::new();
        a.note_planned(Direction::Forward, 4);
        for key in 1..=2000 {
            let out = feed(&mut a, 1.0, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                sizes.push(plan.blocks.len());
            }
            if sizes.len() >= 3 {
                break;
            }
        }
        assert!(sizes.len() >= 3, "expected several triggers: {sizes:?}");
        assert_eq!(sizes[0], 1, "ramp starts at 1");
        assert!(sizes[1] >= 2, "ramp doubled: {sizes:?}");
        assert!(sizes[2] >= sizes[1], "ramp monotone until cap: {sizes:?}");
    }

    #[test]
    fn smax_caps_the_plan() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(10),
            tau_sim: Dur::from_secs(10),
            steps: StepMath::new(1, 2, 100_000),
            smax: 2,
            ramp: false,
        };
        a.note_planned(Direction::Forward, 2);
        let mut max_blocks = 0;
        for key in 1..=200 {
            let out = feed(&mut a, 1.0, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                max_blocks = max_blocks.max(plan.blocks.len());
            }
        }
        assert!(max_blocks <= 2, "smax=2 exceeded: {max_blocks}");
    }

    #[test]
    fn backward_plan_covers_interval_below() {
        let mut a = PrefetchAgent::new(1.0);
        // Analysis slower than sim: tau_cli = 3 s, k*tau_sim = 1 s,
        // alpha = 4 s -> n = ceil(4/2) = 2 -> rounded to B=4.
        let inp = inputs(4, 1);
        a.note_planned(Direction::Backward, 41);
        let outs = feed(&mut a, 3.0, &[44, 43, 42], &inp);
        let plan = outs[2].plan.as_ref().expect("backward trigger");
        let block = plan.blocks[0].clone();
        assert!(*block.end() == 40, "plans below frontier 41: {block:?}");
        assert!(*block.start() >= 1);
    }

    #[test]
    fn backward_plan_clamps_at_key_one() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Backward, 3);
        let outs = feed(&mut a, 1.0, &[5, 4, 3], &inp);
        if let Some(plan) = &outs[2].plan {
            for b in &plan.blocks {
                assert!(*b.start() >= 1);
            }
        }
    }

    #[test]
    fn backward_faster_analysis_plans_parallel_intervals() {
        // Analysis faster than the simulation: the agent plans several
        // one-interval simulations (s from the section IV-B2 formula).
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(6),
            tau_sim: Dur::from_secs(2),
            steps: StepMath::new(1, 4, 1000),
            smax: 8,
            ramp: false,
        };
        a.note_planned(Direction::Backward, 101);
        // tau_cli = 0.5 s << 2 s: bandwidth matching kicks in after the
        // ramp warms up.
        let mut max_blocks = 0;
        let mut key = 120u64;
        for _ in 0..40 {
            let out = feed(&mut a, 0.5, &[key], &inp);
            if let Some(plan) = &out[0].plan {
                max_blocks = max_blocks.max(plan.blocks.len());
                for b in &plan.blocks {
                    assert_eq!((b.end() - b.start() + 1) % 4, 0, "interval-aligned blocks");
                }
            }
            key -= 1;
        }
        assert!(max_blocks >= 2, "expected parallel backward plans, got {max_blocks}");
    }

    #[test]
    fn plans_stop_at_timeline_end() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = PrefetchInputs {
            alpha: Dur::from_secs(4),
            tau_sim: Dur::from_secs(1),
            steps: StepMath::new(1, 4, 20), // N = 20
            smax: 8,
            ramp: false,
        };
        a.note_planned(Direction::Forward, 18);
        let outs = feed(&mut a, 1.0, &[16, 17, 18], &inp);
        if let Some(plan) = &outs[2].plan {
            for b in &plan.blocks {
                assert!(*b.end() <= 20, "beyond timeline: {b:?}");
            }
        }
        // Once the frontier hits N, further accesses plan nothing.
        let out = feed(&mut a, 1.0, &[19], &inp);
        if let Some(plan) = &out[0].plan {
            assert!(plan.blocks.iter().all(|b| *b.end() <= 20));
        }
        let out = feed(&mut a, 1.0, &[20], &inp);
        assert!(out[0].plan.is_none(), "nothing left to prefetch");
    }

    #[test]
    fn reset_clears_pattern_and_prefetch_history() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(2, 1);
        feed(&mut a, 1.0, &[1, 2, 3, 4], &inp);
        a.note_prefetched([7, 8]);
        assert!(a.was_prefetched(7));
        a.reset();
        assert!(!a.was_prefetched(7));
        assert!(a.direction().is_none());
        // tau_cli knowledge survives a pollution reset.
        assert_eq!(a.tau_cli(), Some(Dur::from_secs(1)));
    }

    #[test]
    fn prefetched_keys_tracked_from_plans() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 4);
        let outs = feed(&mut a, 1.0, &[2, 3, 4], &inp);
        let plan = outs[2].plan.as_ref().expect("trigger at frontier");
        let first = *plan.blocks[0].start();
        assert!(a.was_prefetched(first));
    }

    fn rec(key: u64, epoch: u64) -> AccessRecord {
        AccessRecord {
            client: 1,
            key,
            epoch,
            ready: true,
        }
    }

    #[test]
    fn access_log_drains_in_observation_order() {
        let mut log = AccessLog::new(8);
        for k in 1..=5 {
            log.push(rec(k, k * 10));
        }
        assert_eq!(log.len(), 5);
        let mut out = Vec::new();
        assert_eq!(log.drain_into(&mut out), 0, "no drops under capacity");
        assert_eq!(out.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert!(log.is_empty());
        // Reusable across drains.
        log.push(rec(9, 90));
        out.clear();
        log.drain_into(&mut out);
        assert_eq!(out[0].key, 9);
    }

    #[test]
    fn access_log_overflow_drops_oldest_and_counts() {
        let mut log = AccessLog::new(4);
        for k in 1..=10 {
            log.push(rec(k, k));
        }
        assert_eq!(log.len(), 4, "bounded");
        assert_eq!(log.dropped(), 6);
        let mut out = Vec::new();
        assert_eq!(log.drain_into(&mut out), 6, "drain reports the loss");
        assert_eq!(
            out.iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![7, 8, 9, 10],
            "freshest suffix survives, in order"
        );
        assert_eq!(log.dropped(), 0, "drop counter resets per drain");
        log.note_dropped(3);
        assert_eq!(log.dropped(), 3, "upstream losses fold in");
    }

    #[test]
    fn access_log_survives_partial_fill_drain_cycles() {
        let mut log = AccessLog::new(4);
        let mut out = Vec::new();
        // Partial fill, drain, then overflow again: the ring indices
        // must stay coherent across the reset.
        log.push(rec(1, 1));
        log.push(rec(2, 2));
        log.drain_into(&mut out);
        out.clear();
        for k in 10..=16 {
            log.push(rec(k, k));
        }
        assert_eq!(log.drain_into(&mut out), 3);
        assert_eq!(
            out.iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![13, 14, 15, 16]
        );
    }

    #[test]
    fn no_plan_without_tau_cli_knowledge() {
        let mut a = PrefetchAgent::new(1.0);
        let inp = inputs(4, 1);
        a.note_planned(Direction::Forward, 4);
        // Accesses without any consumption-time sample: pattern can be
        // confirmed but no plan is computable.
        for key in [2u64, 3, 4] {
            let out = a.on_access(key, &inp);
            assert!(out.plan.is_none());
        }
        assert_eq!(a.direction(), Some(Direction::Forward));
    }
}
