//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::{Reject, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Maps of `size` entries with keys from `key` and values from `value`.
/// Key collisions shrink the map, as with real proptest.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord + Debug,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
        let n = self.size.sample(rng);
        let mut map = BTreeMap::new();
        for _ in 0..n {
            map.insert(self.key.gen_value(rng)?, self.value.gen_value(rng)?);
        }
        Ok(map)
    }
}
