//! 2-D advection–diffusion stencil code: the COSMO stand-in.
//!
//! Solves `∂u/∂t + c·∇u = ν ∇²u` on a periodic unit square with an
//! explicit FTCS scheme (first-order upwind advection, second-order
//! centered diffusion). This is the canonical structure of an
//! atmospheric dynamical core at toy scale: a time-stepped stencil over
//! a regular grid, whose complete state is one field — exactly what a
//! checkpoint/restart file captures.
//!
//! Determinism: the update is straight-line f64 arithmetic over the grid
//! in row-major order; no reductions with re-association, no
//! parallelism. Re-running from a checkpoint is bitwise identical, which
//! is the property SimFS's `SIMFS_Bitrep` verifies (§II: "bitwise
//! reproducibility ... can be achieved with a set of standard
//! techniques").

use crate::{RestartableSim, SimError};
use simstore::{Data, Dataset};

const NAME: &str = "heat2d";

/// Explicit advection–diffusion integrator on a periodic `nx × ny` grid.
#[derive(Clone, Debug)]
pub struct Heat2d {
    nx: usize,
    ny: usize,
    /// Diffusivity ν.
    nu: f64,
    /// Advection velocity (cx, cy).
    cx: f64,
    cy: f64,
    /// Grid spacing (unit square).
    dx: f64,
    /// Stable explicit timestep.
    dt: f64,
    timestep: u64,
    u: Vec<f64>,
    /// Scratch buffer reused every step (no per-step allocation).
    scratch: Vec<f64>,
    seed: u64,
}

impl Heat2d {
    /// Creates a grid with deterministic seeded initial conditions
    /// (a sum of Gaussian blobs placed by the seed).
    ///
    /// # Panics
    /// Panics if the grid is smaller than 4×4.
    pub fn new(nx: usize, ny: usize, seed: u64) -> Self {
        assert!(nx >= 4 && ny >= 4, "grid too small: {nx}x{ny}");
        let dx = 1.0 / nx as f64;
        let nu = 0.05;
        let (cx, cy): (f64, f64) = (0.6, 0.3);
        // Stability: diffusive limit dt <= dx^2/(4 nu), advective (CFL)
        // dt <= dx/|c|. Take half the tighter bound.
        let dt_diff = dx * dx / (4.0 * nu);
        let dt_adv = dx / (cx.abs() + cy.abs()).max(1e-12);
        let dt = 0.5 * dt_diff.min(dt_adv);

        let mut sim = Heat2d {
            nx,
            ny,
            nu,
            cx,
            cy,
            dx,
            dt,
            timestep: 0,
            u: vec![0.0; nx * ny],
            scratch: vec![0.0; nx * ny],
            seed,
        };
        sim.seed_initial_conditions();
        sim
    }

    fn seed_initial_conditions(&mut self) {
        // Three Gaussian blobs at seed-derived positions.
        let mut state = self.seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let blobs: Vec<(f64, f64, f64)> = (0..3)
            .map(|_| (next(), next(), 0.03 + 0.05 * next()))
            .collect();
        for j in 0..self.ny {
            for i in 0..self.nx {
                let x = (i as f64 + 0.5) * self.dx;
                let y = (j as f64 + 0.5) / self.ny as f64;
                let mut v = 0.0;
                for &(bx, by, w) in &blobs {
                    // Periodic distance.
                    let ddx = (x - bx).abs().min(1.0 - (x - bx).abs());
                    let ddy = (y - by).abs().min(1.0 - (y - by).abs());
                    v += (-(ddx * ddx + ddy * ddy) / (2.0 * w * w)).exp();
                }
                self.u[j * self.nx + i] = v;
            }
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Mean of the field (diffusion + periodic advection conserve it up
    /// to floating-point roundoff; tests use this as a physics check).
    pub fn mean(&self) -> f64 {
        self.u.iter().sum::<f64>() / self.u.len() as f64
    }

    /// Field view (analysis-side helper).
    pub fn field(&self) -> &[f64] {
        &self.u
    }
}

impl RestartableSim for Heat2d {
    fn name(&self) -> &'static str {
        NAME
    }

    fn step(&mut self) {
        let (nx, ny) = (self.nx, self.ny);
        let inv_dx = 1.0 / self.dx;
        let inv_dx2 = inv_dx * inv_dx;
        for j in 0..ny {
            let jm = if j == 0 { ny - 1 } else { j - 1 };
            let jp = if j == ny - 1 { 0 } else { j + 1 };
            for i in 0..nx {
                let im = if i == 0 { nx - 1 } else { i - 1 };
                let ip = if i == nx - 1 { 0 } else { i + 1 };
                let c = self.u[j * nx + i];
                let w = self.u[j * nx + im];
                let e = self.u[j * nx + ip];
                let s = self.u[jm * nx + i];
                let n = self.u[jp * nx + i];
                let lap = (w + e + s + n - 4.0 * c) * inv_dx2;
                // First-order upwind advection (cx, cy > 0 here; handle
                // both signs for generality).
                let dudx = if self.cx >= 0.0 { (c - w) * inv_dx } else { (e - c) * inv_dx };
                let dudy = if self.cy >= 0.0 { (c - s) * inv_dx } else { (n - c) * inv_dx };
                self.scratch[j * nx + i] =
                    c + self.dt * (self.nu * lap - self.cx * dudx - self.cy * dudy);
            }
        }
        std::mem::swap(&mut self.u, &mut self.scratch);
        self.timestep += 1;
    }

    fn timestep(&self) -> u64 {
        self.timestep
    }

    fn save_restart(&self) -> Dataset {
        let mut ds = Dataset::new(self.timestep, self.timestep as f64 * self.dt);
        ds.set_attr("simulator", NAME);
        ds.set_attr("nx", self.nx.to_string());
        ds.set_attr("ny", self.ny.to_string());
        ds.set_attr("seed", self.seed.to_string());
        ds.add_var(
            "u",
            vec![self.ny as u64, self.nx as u64],
            Data::F64(self.u.clone()),
        )
        .expect("restart field shape");
        ds
    }

    fn load_restart(&mut self, restart: &Dataset) -> Result<(), SimError> {
        if restart.attr("simulator") != Some(NAME) {
            return Err(SimError::RestartMismatch(format!(
                "expected {NAME}, found {:?}",
                restart.attr("simulator")
            )));
        }
        let nx: usize = restart
            .attr("nx")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing nx".into()))?;
        let ny: usize = restart
            .attr("ny")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SimError::RestartMismatch("missing ny".into()))?;
        let field = restart
            .var("u")
            .and_then(|v| v.data.as_f64())
            .ok_or_else(|| SimError::RestartMismatch("missing field u".into()))?;
        if field.len() != nx * ny {
            return Err(SimError::RestartMismatch(format!(
                "field size {} != {nx}x{ny}",
                field.len()
            )));
        }
        // Rebuild geometry-derived constants exactly as in `new`.
        *self = Heat2d::new(nx.max(4), ny.max(4), 0);
        self.seed = restart
            .attr("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        self.u.copy_from_slice(field);
        self.timestep = restart.step_index;
        Ok(())
    }

    fn output(&self) -> Dataset {
        let mut ds = Dataset::new(self.timestep, self.timestep as f64 * self.dt);
        ds.set_attr("simulator", NAME);
        ds.add_var(
            "u",
            vec![self.ny as u64, self.nx as u64],
            Data::F64(self.u.clone()),
        )
        .expect("output field shape");
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_stays_finite_and_bounded() {
        let mut sim = Heat2d::new(32, 32, 3);
        let max0 = sim.u.iter().cloned().fold(f64::MIN, f64::max);
        for _ in 0..500 {
            sim.step();
        }
        assert!(sim.u.iter().all(|x| x.is_finite()));
        let max = sim.u.iter().cloned().fold(f64::MIN, f64::max);
        // Diffusion + stable advection must not blow up (maximum
        // principle, modulo upwind diffusion).
        assert!(max <= max0 * 1.01 + 1e-9, "max grew: {max0} -> {max}");
    }

    #[test]
    fn mean_is_conserved() {
        let mut sim = Heat2d::new(24, 24, 5);
        let m0 = sim.mean();
        for _ in 0..300 {
            sim.step();
        }
        let m1 = sim.mean();
        assert!(
            (m0 - m1).abs() < 1e-9 * m0.abs().max(1.0),
            "mean drifted {m0} -> {m1}"
        );
    }

    #[test]
    fn diffusion_reduces_variance() {
        let mut sim = Heat2d::new(32, 32, 7);
        let var = |s: &Heat2d| {
            let m = s.mean();
            s.u.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / s.u.len() as f64
        };
        let v0 = var(&sim);
        for _ in 0..500 {
            sim.step();
        }
        assert!(var(&sim) < v0, "variance must decay under diffusion");
    }

    #[test]
    fn restart_is_bitwise_exact() {
        let mut sim = Heat2d::new(16, 16, 9);
        for _ in 0..37 {
            sim.step();
        }
        let ckpt = sim.save_restart();
        for _ in 0..23 {
            sim.step();
        }
        let expect = sim.output().encode();

        let mut replay = Heat2d::new(4, 4, 0);
        replay.load_restart(&ckpt).unwrap();
        for _ in 0..23 {
            replay.step();
        }
        assert_eq!(replay.output().encode(), expect);
    }

    #[test]
    fn different_seeds_different_fields() {
        let a = Heat2d::new(16, 16, 1).output().digest();
        let b = Heat2d::new(16, 16, 2).output().digest();
        assert_ne!(a, b);
    }

    #[test]
    fn restart_validates_shape() {
        let mut sim = Heat2d::new(16, 16, 1);
        let mut bad = sim.save_restart();
        bad.set_attr("nx", "999");
        assert!(matches!(
            sim.load_restart(&bad),
            Err(SimError::RestartMismatch(_))
        ));
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn tiny_grid_rejected() {
        Heat2d::new(2, 2, 0);
    }
}
