// Fixture: a tag that is encoded and decoded but never exercised by
// name in the wire fuzz tests (the paired fuzz source in the test
// omits REQ_PIN). Tag values are otherwise well-formed. Not compiled —
// consumed by include_str! in tests.

pub mod tag {
    pub const REQ_HELLO: u8 = 0;
    pub const REQ_PIN: u8 = 1;
    pub const RESP_OK: u8 = 0;
}

impl Request {
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Request::Hello => buf.put_u8(tag::REQ_HELLO),
            Request::Pin => buf.put_u8(tag::REQ_PIN),
        }
    }
    pub fn decode(mut buf: &[u8]) -> io::Result<Request> {
        match take_u8(&mut buf)? {
            tag::REQ_HELLO => Ok(Request::Hello),
            tag::REQ_PIN => Ok(Request::Pin),
            other => Err(bad_tag(other)),
        }
    }
}

impl Response {
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Response::Ok => buf.put_u8(tag::RESP_OK),
        }
    }
    pub fn decode(mut buf: &[u8]) -> io::Result<Response> {
        match take_u8(&mut buf)? {
            tag::RESP_OK => Ok(Response::Ok),
            other => Err(bad_tag(other)),
        }
    }
}
