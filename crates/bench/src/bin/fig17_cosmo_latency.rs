//! Fig. 17: prefetching COSMO simulations under different restart
//! latencies and analysis lengths (m ∈ {72, 288, 1152}).
//!
//! `cargo run -p simfs-bench --bin fig17_cosmo_latency [--full]`

use simfs_bench::prefetchfigs::{latency, latency_table, ScalingConfig};
use simfs_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let mut cfg = ScalingConfig::cosmo();
    // Long analyses need a long timeline.
    cfg.n_timesteps = 5 * 2400;
    let ms: &[u64] = &[72, 288, 1152];
    let alphas: &[u64] = if opts.full {
        &[0, 50, 100, 200, 300, 400, 500, 600]
    } else {
        &[0, 100, 300, 600]
    };
    let points = latency(&cfg, ms, alphas, &opts);
    let table = latency_table(&cfg, &points);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig17_cosmo_latency")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
