//! Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02), §III-D.
//!
//! LIRS classifies blocks by *reuse distance* rather than recency alone:
//! blocks with low inter-reference recency (LIR) are protected; blocks
//! seen once or with long reuse distances (HIR) are eviction candidates.
//! The structures are the classic ones:
//!
//! * stack `S` — recency stack holding LIR blocks, resident HIR blocks
//!   and non-resident HIR *ghosts*; pruned so its bottom is always LIR;
//! * queue `Q` — FIFO of resident HIR blocks, evicted from the front.
//!
//! The paper's Fig. 5 shows LIRS performing *worst* on backward scans —
//! it prioritizes evicting exactly the blocks a time-reversed analysis is
//! about to read. Reproducing that behaviour is a fidelity check for this
//! implementation (asserted in the Fig. 5 harness tests).

use crate::fasthash::{u64_map, U64Map};
use crate::order::KeyedList;
use crate::{PinFn, Policy};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Lir,
    HirResident,
    Ghost,
}

/// LIRS policy. `capacity` is the nominal entry capacity; the HIR
/// partition defaults to 1% of it (at least one slot), per the original
/// paper's recommendation.
#[derive(Clone, Debug)]
pub struct Lirs {
    capacity: usize,
    /// Maximum number of LIR blocks (`capacity - hir_slots`).
    lir_limit: usize,
    /// Recency stack S: front = most recent. Holds LIR + resident HIR +
    /// ghosts.
    stack: KeyedList,
    /// Resident-HIR queue Q: push at front, evict at back (FIFO).
    queue: KeyedList,
    /// Ghost insertion order, oldest at back, for bounding ghost memory.
    ghost_order: KeyedList,
    state: U64Map<State>,
    lir_count: usize,
}

impl Lirs {
    /// Creates a LIRS policy with a 1% HIR partition.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_hir_slots(capacity, (capacity / 100).max(1))
    }

    /// Creates a LIRS policy with an explicit HIR partition size.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `hir_slots >= capacity`.
    pub fn with_hir_slots(capacity: usize, hir_slots: usize) -> Self {
        assert!(capacity > 0, "LIRS capacity must be positive");
        assert!(
            hir_slots > 0 && hir_slots < capacity,
            "HIR slots must be in 1..capacity"
        );
        Lirs {
            capacity,
            lir_limit: capacity - hir_slots,
            stack: KeyedList::new(),
            queue: KeyedList::new(),
            ghost_order: KeyedList::new(),
            state: u64_map(),
            lir_count: 0,
        }
    }

    /// Number of LIR blocks (diagnostics).
    pub fn lir_count(&self) -> usize {
        self.lir_count
    }

    /// Prunes the stack bottom until it is a LIR block (HIR/ghost entries
    /// at the bottom carry no reuse-distance information).
    fn prune(&mut self) {
        while let Some(bottom) = self.stack.back() {
            match self.state.get(&bottom) {
                Some(State::Lir) => break,
                Some(State::HirResident) => {
                    // Leaves the stack but stays resident in Q.
                    self.stack.remove(bottom);
                }
                Some(State::Ghost) => {
                    self.stack.remove(bottom);
                    self.ghost_order.remove(bottom);
                    self.state.remove(&bottom);
                }
                None => {
                    debug_assert!(false, "stack key without state");
                    self.stack.remove(bottom);
                }
            }
        }
    }

    /// Demotes the bottom LIR block of the stack to resident HIR (tail of
    /// Q), making room for a promotion.
    fn demote_bottom_lir(&mut self) {
        let Some(bottom) = self.stack.back() else {
            return;
        };
        debug_assert_eq!(self.state.get(&bottom), Some(&State::Lir));
        self.stack.remove(bottom);
        self.state.insert(bottom, State::HirResident);
        self.lir_count -= 1;
        self.queue.push_front(bottom);
        self.prune();
    }

    /// Promotes `key` (in stack, HIR or ghost) to LIR.
    fn promote(&mut self, key: u64) {
        self.state.insert(key, State::Lir);
        self.lir_count += 1;
        self.stack.move_to_front(key);
        if self.lir_count > self.lir_limit {
            self.demote_bottom_lir();
        }
        self.prune();
    }

    fn bound_ghosts(&mut self) {
        // Keep at most `capacity` ghosts: beyond one cache-size worth of
        // history, reuse-distance information is stale.
        while self.ghost_order.len() > self.capacity {
            let Some(old) = self.ghost_order.pop_back() else {
                break;
            };
            self.stack.remove(old);
            self.state.remove(&old);
        }
        // A ghost pinned at the stack bottom can never be pruned; ensure
        // the bottom stays LIR.
        self.prune();
    }
}

impl Policy for Lirs {
    fn name(&self) -> &'static str {
        "LIRS"
    }

    fn contains(&self, key: u64) -> bool {
        matches!(
            self.state.get(&key),
            Some(State::Lir) | Some(State::HirResident)
        )
    }

    fn len(&self) -> usize {
        self.lir_count + self.queue.len()
    }

    fn on_hit(&mut self, key: u64) {
        match self.state.get(&key) {
            Some(State::Lir) => {
                self.stack.move_to_front(key);
                self.prune();
            }
            Some(State::HirResident) => {
                if self.stack.contains(key) {
                    // Reuse distance is within the LIR working set:
                    // promote to LIR, demote the coldest LIR.
                    self.queue.remove(key);
                    self.state.insert(key, State::Lir);
                    self.lir_count += 1;
                    self.stack.move_to_front(key);
                    self.demote_bottom_lir();
                    self.prune();
                } else {
                    // Long reuse distance: stays HIR, refreshed in both
                    // structures.
                    self.stack.push_front(key);
                    self.queue.move_to_front(key);
                }
            }
            _ => panic!("LIRS hit on non-resident key {key}"),
        }
    }

    fn on_insert(&mut self, key: u64, _cost: u64) {
        debug_assert!(!self.contains(key), "LIRS insert of resident key {key}");
        match self.state.get(&key) {
            Some(State::Ghost) => {
                // The block was re-referenced while its history was still
                // in the stack: low inter-reference recency, promote.
                self.ghost_order.remove(key);
                self.promote(key);
            }
            _ => {
                if self.lir_count < self.lir_limit {
                    // Cold start: fill the LIR partition first.
                    self.state.insert(key, State::Lir);
                    self.lir_count += 1;
                    self.stack.push_front(key);
                } else {
                    self.state.insert(key, State::HirResident);
                    self.stack.push_front(key);
                    self.queue.push_front(key);
                }
            }
        }
    }

    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
        // Primary: oldest resident HIR block (back of Q).
        if let Some(victim) = self.queue.iter_back_to_front().find(|&k| !pinned(k)) {
            self.queue.remove(victim);
            if self.stack.contains(victim) {
                self.state.insert(victim, State::Ghost);
                self.ghost_order.push_front(victim);
                self.bound_ghosts();
            } else {
                self.state.remove(&victim);
            }
            return Some(victim);
        }
        // Fallback (all HIR pinned or Q empty): evict the coldest
        // unpinned LIR block so the caller can always make progress.
        let victim = self
            .stack
            .iter_back_to_front()
            .find(|&k| self.state.get(&k) == Some(&State::Lir) && !pinned(k))?;
        self.stack.remove(victim);
        self.state.remove(&victim);
        self.lir_count -= 1;
        self.prune();
        Some(victim)
    }

    fn on_remove(&mut self, key: u64) {
        match self.state.get(&key) {
            Some(State::Lir) => {
                self.stack.remove(key);
                self.state.remove(&key);
                self.lir_count -= 1;
                self.prune();
            }
            Some(State::HirResident) => {
                self.queue.remove(key);
                self.stack.remove(key);
                self.state.remove(&key);
                self.prune();
            }
            Some(State::Ghost) | None => {
                // Ghosts are history, not residency; external removal of a
                // resident key cannot hit this arm.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_PIN: fn(u64) -> bool = |_| false;

    fn filled(capacity: usize, n: u64) -> Lirs {
        let mut p = Lirs::with_hir_slots(capacity, 2);
        for k in 0..n {
            p.on_insert(k, 0);
        }
        p
    }

    #[test]
    fn cold_start_fills_lir_partition() {
        let p = filled(10, 8);
        assert_eq!(p.lir_count(), 8);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn overflow_goes_to_hir_queue() {
        let p = filled(10, 10);
        assert_eq!(p.lir_count(), 8);
        assert_eq!(p.len(), 10);
        assert_eq!(p.queue.len(), 2);
    }

    #[test]
    fn evicts_resident_hir_first() {
        let mut p = filled(10, 10);
        // keys 8, 9 are HIR; 8 is older in Q.
        assert_eq!(p.evict(&NO_PIN), Some(8));
        assert!(!p.contains(8));
        // 8 remains as ghost in the stack.
        assert_eq!(p.state.get(&8), Some(&State::Ghost));
    }

    #[test]
    fn ghost_reinsert_promotes_to_lir() {
        let mut p = filled(10, 10);
        p.evict(&NO_PIN); // 8 becomes ghost
        let lir_before = p.lir_count();
        p.on_insert(8, 0);
        assert!(p.contains(8));
        assert_eq!(p.state.get(&8), Some(&State::Lir));
        // LIR count stayed within the limit via demotion.
        assert!(p.lir_count() <= lir_before.max(8));
    }

    #[test]
    fn hir_hit_within_stack_promotes() {
        let mut p = filled(10, 10);
        // 9 is resident HIR and still in the stack.
        p.on_hit(9);
        assert_eq!(p.state.get(&9), Some(&State::Lir));
    }

    #[test]
    fn stack_bottom_is_always_lir() {
        let mut p = filled(6, 6);
        for k in 6..30u64 {
            p.on_insert(k, 0);
            while p.len() > 6 {
                p.evict(&NO_PIN).unwrap();
            }
        }
        let bottom = p.stack.back().unwrap();
        assert_eq!(p.state.get(&bottom), Some(&State::Lir));
    }

    #[test]
    fn pinned_hir_survives() {
        let mut p = filled(10, 10);
        let pin = |k: u64| k == 8;
        assert_eq!(p.evict(&pin), Some(9));
        assert!(p.contains(8));
    }

    #[test]
    fn fallback_evicts_lir_when_no_hir() {
        let mut p = Lirs::with_hir_slots(4, 1);
        for k in 0..3u64 {
            p.on_insert(k, 0); // all LIR
        }
        let v = p.evict(&NO_PIN);
        assert!(v.is_some());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn all_pinned_returns_none() {
        let mut p = filled(4, 4);
        assert_eq!(p.evict(&|_| true), None);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn ghosts_are_bounded() {
        let cap = 8;
        let mut p = Lirs::with_hir_slots(cap, 2);
        for k in 0..10_000u64 {
            p.on_insert(k, 0);
            while p.len() > cap {
                p.evict(&NO_PIN).unwrap();
            }
        }
        let ghosts = p
            .state
            .values()
            .filter(|s| **s == State::Ghost)
            .count();
        assert!(ghosts <= cap, "ghosts grew unboundedly: {ghosts}");
    }

    #[test]
    fn loop_pattern_beats_recency_intuition() {
        // The LIRS showcase: a loop slightly larger than the cache. Pure
        // LRU gets zero hits; LIRS keeps a stable LIR subset resident.
        let cap = 10;
        let mut p = Lirs::with_hir_slots(cap, 2);
        let loop_len = 12u64;
        let mut hits = 0;
        for round in 0..50 {
            for k in 0..loop_len {
                if p.contains(k) {
                    p.on_hit(k);
                    if round > 1 {
                        hits += 1;
                    }
                } else {
                    p.on_insert(k, 0);
                    while p.len() > cap {
                        p.evict(&NO_PIN).unwrap();
                    }
                }
            }
        }
        assert!(hits > 0, "LIRS should retain part of a loop working set");
    }
}
