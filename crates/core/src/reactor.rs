//! Sharded epoll reactor: the event-driven connection front-end.
//!
//! Replaces the thread-per-connection model with N reactor threads
//! (shards), each owning one epoll instance and a disjoint subset of
//! the daemon's connections, so one daemon serves thousands of clients
//! with a fixed thread count.
//!
//! # Shard ownership
//!
//! A connection is owned by exactly one shard for its whole life: the
//! accept loop round-robins new sockets across shards via each shard's
//! *inbox* (a mutex-protected handoff queue) and wakes the shard
//! through its eventfd. From then on only the owning shard thread
//! touches the socket, its [`FrameReader`] (partial frames resume
//! across `WouldBlock` without desynchronizing the stream) and its
//! pending-write buffer — connection state needs no locks.
//!
//! # Wakeup protocol
//!
//! Cross-connection traffic (a simulator finishing fans Ready
//! notifications out to analysis clients on other shards) goes through
//! [`Reactor::send_bytes`]: the payload is enqueued into the owning
//! shard's inbox and the shard's eventfd is signalled. A shard sending
//! to a connection it owns itself skips the eventfd — its event loop
//! drains the inbox again before blocking, so the bytes flush on the
//! same pass. The dominant self-send (a response to the very
//! connection whose frame is being dispatched) short-circuits further:
//! it lands in a thread-local staging buffer merged straight into the
//! connection's output after the handler returns — no allocation, no
//! inbox lock, and it is on the wire before an orderly close. Client-id
//! → connection routing lives in a sharded registry map; sends to
//! departed clients are dropped silently (same contract as the old
//! writer map).
//!
//! # Backpressure rules
//!
//! Writes never block a shard. Each connection keeps a pending-write
//! buffer: bytes are appended, as much as possible is written
//! immediately, and any residue arms `EPOLLOUT` until the socket
//! drains, after which the interest set reverts to read-only. A slow
//! reader therefore delays only itself; if its buffer exceeds
//! `MAX_OUTBUF` the connection is dropped rather than buffering
//! without bound. Per-wake dispatch is capped (`MAX_FRAMES_PER_WAKE`)
//! so one firehose connection cannot starve its shard either; a capped
//! connection goes onto the shard's backlog and its remaining buffered
//! frames are re-dispatched before the loop blocks again (they are in
//! userspace, so level-triggered epoll alone would never re-report
//! them).
//!
//! Handlers run *on* the shard thread, so shard threads are
//! non-blocking by contract: blocking work a handler collects (Bitrep
//! file reads, eviction deletes, job spawns, WAL fsyncs) is submitted
//! to the effect-execution tier ([`crate::effectpool`]) instead of
//! running inline, and the completions come back through the same
//! inbox + eventfd wakeup path as any other cross-thread send
//! ([`Reactor::send_bytes`] from a helper thread). When the reactor is
//! started with `mark_nonblocking` ([`Reactor::start_tuned`], set by
//! the daemon whenever the effect pool is active), every shard thread
//! registers itself with [`simkit::lockrank::mark_thread_nonblocking`],
//! so any blocking primitive that slips back onto a shard thread
//! panics in debug builds. A submitting handler that finds its effect
//! queue full parks until the helper frees space — backpressure on the
//! miss path, never on the pure-hit path (hits submit nothing). In
//! compatibility mode (pool size 0) effects run inline as they did
//! before the tier existed, and the head-of-line cost of a miss behind
//! hits on the same shard returns with them.
//!
//! # Lifecycle
//!
//! The protocol logic lives behind the [`Handler`] trait (implemented
//! by the daemon in [`crate::server`]): one handler per connection,
//! `on_frame` per complete frame (returning `false` requests an
//! orderly close — pending output is flushed first), `on_close` exactly
//! once per established connection on any teardown path. Reactor
//! shutdown drops all connections without `on_close`, mirroring the
//! threaded front-end where daemon shutdown never ran per-client
//! teardown.

use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::FrameReader;
use parking_lot::Mutex;
use simkit::lockrank;
use std::cell::Cell;
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Hard cap on reactor shards (more shards than cores just adds
/// contention on the DV locks behind them).
pub const MAX_SHARDS: usize = 8;

/// A connection buffering this much undelivered output is dead or
/// pathologically slow; it is dropped rather than buffered further.
const MAX_OUTBUF: usize = 16 << 20;

/// Frames dispatched per readable event before yielding back to the
/// event loop, so one saturated connection cannot starve its shard's
/// siblings. A capped connection re-enters via the shard backlog (its
/// leftover frames sit in userspace, invisible to epoll).
const MAX_FRAMES_PER_WAKE: usize = 256;

/// Registry shard count for the client-id → connection map.
const REGISTRY_SHARDS: usize = 8;

/// Event-loop token reserved for the shard's wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

const EVENTS_PER_WAIT: usize = 256;

thread_local! {
    /// Which shard's event loop is running on this thread (`usize::MAX`
    /// elsewhere); lets [`Reactor::send_bytes`] skip the eventfd for
    /// shard-local sends.
    static CURRENT_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    /// The connection whose handler is currently dispatching on this
    /// thread (`(usize::MAX, u64::MAX)` outside dispatch); self-sends
    /// to it bypass the inbox entirely.
    static CURRENT_CONN: Cell<(usize, u64)> = const { Cell::new((usize::MAX, u64::MAX)) };
    /// Staging buffer for self-sends; merged into the connection's
    /// output right after its handler returns.
    static SELF_STAGE: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The reactor shard whose event loop is running on this thread, or
/// `None` on every other thread (accept loop, reaper, effect-pool
/// helpers, tests). The daemon uses this to decide whether an effect
/// must be submitted to the helper pool (shard threads are
/// non-blocking when the pool is active) or may execute inline
/// (helpers, the reaper, and the main thread are blocking-permitted).
pub fn current_shard() -> Option<usize> {
    let s = CURRENT_SHARD.with(|c| c.get());
    (s != usize::MAX).then_some(s)
}

/// Per-connection protocol logic (implemented by the daemon).
pub trait Handler: Send + 'static {
    /// One complete frame arrived. Return `false` to close the
    /// connection after pending output flushes.
    fn on_frame(&mut self, frame: &[u8], cx: &mut ConnCtx<'_>) -> bool;

    /// Does this handler currently want periodic ticks? Re-consulted
    /// after each time the handler runs (frame dispatch or tick) —
    /// tick interest can only change when handler state does, so the
    /// shard caches the answer per connection and keeps an O(1)
    /// interest count instead of scanning every handler per wake.
    /// While any connection on a shard is interested, that shard
    /// bounds its epoll wait to the tick interval instead of blocking
    /// indefinitely (a shard with no tick interest still sleeps fully
    /// idle). The daemon uses this to drain access-stream digests for
    /// connections whose traffic is pure fast-path hits — nothing else
    /// would ever take a DV lock on their behalf.
    fn wants_tick(&self) -> bool {
        false
    }

    /// Periodic service, fired roughly every [`TICK`] while
    /// [`wants_tick`](Self::wants_tick) holds. Runs on the owning shard
    /// thread with the same self-send staging as
    /// [`on_frame`](Self::on_frame).
    fn on_tick(&mut self, cx: &mut ConnCtx<'_>) {
        let _ = cx;
    }

    /// The connection is going away (EOF, error, or a `false` return
    /// from [`on_frame`](Self::on_frame)). Called exactly once; not
    /// called on whole-reactor shutdown.
    fn on_close(&mut self);
}

/// Cadence of [`Handler::on_tick`] while a shard has tick interest:
/// long enough that a pure-hit connection's digest drains cost nothing
/// measurable, short enough that agent observation lags acquisition by
/// at most a few round trips.
pub const TICK: std::time::Duration = std::time::Duration::from_millis(20);

/// Stable address of a connection: owning shard + shard-local token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnRef {
    shard: usize,
    token: u64,
}

/// What a [`Handler`] may do while processing a frame: write directly
/// to its own connection and register it for cross-connection sends.
pub struct ConnCtx<'a> {
    reactor: &'a Reactor,
    conn: ConnRef,
    out: &'a mut Vec<u8>,
}

impl ConnCtx<'_> {
    /// Appends raw wire bytes to this connection's output (flushed when
    /// the dispatch round ends; ordered before any later
    /// [`Reactor::send_bytes`] to the same connection).
    pub fn write(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Routes future [`Reactor::send_bytes`]`(client, ..)` calls to
    /// this connection.
    pub fn register(&self, client: u64) {
        self.reactor.register(client, self.conn);
    }
}

#[derive(Default)]
struct Inbox {
    /// Connections handed off by the accept loop.
    adopt: Vec<(TcpStream, Box<dyn Handler>)>,
    /// (token, wire bytes) queued by [`Reactor::send_bytes`].
    sends: Vec<(u64, Vec<u8>)>,
}

struct ShardHandle {
    wake: EventFd,
    inbox: Mutex<Inbox>,
}

impl ShardHandle {
    fn inbox_is_empty(&self) -> bool {
        let _rank = lockrank::held(lockrank::REACTOR_INBOX);
        let inbox = self.inbox.lock();
        inbox.adopt.is_empty() && inbox.sends.is_empty()
    }
}

/// The reactor: shard handles plus the client routing registry.
pub struct Reactor {
    shards: Vec<ShardHandle>,
    registry: Vec<Mutex<HashMap<u64, ConnRef>>>,
    next_shard: AtomicUsize,
    shutdown: AtomicBool,
}

impl Reactor {
    /// Starts `shards` reactor threads (clamped to `1..=`[`MAX_SHARDS`]).
    pub fn start(shards: usize) -> io::Result<Arc<Reactor>> {
        Self::start_tuned(shards, false)
    }

    /// [`start`](Self::start), plus the non-blocking contract: when
    /// `mark_nonblocking` is set, every shard thread registers itself
    /// with [`simkit::lockrank::mark_thread_nonblocking`] so any
    /// blocking primitive (WAL fsync, launcher, eviction delete)
    /// executed on a shard thread panics in debug builds. The daemon
    /// sets it whenever the effect pool is active.
    pub fn start_tuned(shards: usize, mark_nonblocking: bool) -> io::Result<Arc<Reactor>> {
        let shards = shards.clamp(1, MAX_SHARDS);
        let mut handles = Vec::with_capacity(shards);
        let mut epolls = Vec::with_capacity(shards);
        for _ in 0..shards {
            let wake = EventFd::new()?;
            let epoll = Epoll::new()?;
            epoll.add(wake.fd(), EPOLLIN, WAKE_TOKEN)?;
            handles.push(ShardHandle {
                wake,
                inbox: Mutex::new(Inbox::default()),
            });
            epolls.push(epoll);
        }
        let reactor = Arc::new(Reactor {
            shards: handles,
            registry: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_shard: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        for (idx, epoll) in epolls.into_iter().enumerate() {
            let reactor = Arc::clone(&reactor);
            std::thread::Builder::new()
                .name(format!("dv-reactor-{idx}"))
                .spawn(move || {
                    if mark_nonblocking {
                        lockrank::mark_thread_nonblocking();
                    }
                    run_shard(&reactor, idx, &epoll)
                })?;
        }
        Ok(reactor)
    }

    /// Number of shard threads.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Adopts a freshly accepted connection (round-robin shard choice).
    /// The stream must already be non-blocking.
    pub fn submit(&self, stream: TcpStream, handler: Box<dyn Handler>) {
        let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        {
            let _rank = lockrank::held(lockrank::REACTOR_INBOX);
            self.shards[idx].inbox.lock().adopt.push((stream, handler));
        }
        self.shards[idx].wake.signal();
    }

    fn registry_shard(&self, client: u64) -> &Mutex<HashMap<u64, ConnRef>> {
        &self.registry[(client % REGISTRY_SHARDS as u64) as usize]
    }

    fn register(&self, client: u64, conn: ConnRef) {
        let _rank = lockrank::held(lockrank::REACTOR_REGISTRY);
        self.registry_shard(client).lock().insert(client, conn);
    }

    /// Removes a client's routing entry (later sends drop silently).
    pub fn unregister(&self, client: u64) {
        let _rank = lockrank::held(lockrank::REACTOR_REGISTRY);
        self.registry_shard(client).lock().remove(&client);
    }

    /// Delivers wire bytes to `client`'s connection: straight into the
    /// thread-local staging buffer when the destination is the
    /// connection currently dispatching on this thread (the hot
    /// request→own-response path — no allocation, no locks), otherwise
    /// into the owning shard's inbox with an eventfd wake (skipped when
    /// the caller *is* that shard). Returns `false` — dropping the
    /// bytes — for unknown clients.
    pub fn send_bytes(&self, client: u64, bytes: &[u8]) -> bool {
        let conn = {
            let _rank = lockrank::held(lockrank::REACTOR_REGISTRY);
            let Some(conn) = self.registry_shard(client).lock().get(&client).copied() else {
                return false;
            };
            conn
        };
        if CURRENT_CONN.with(|c| c.get()) == (conn.shard, conn.token) {
            SELF_STAGE.with(|s| s.borrow_mut().extend_from_slice(bytes));
            return true;
        }
        let shard = &self.shards[conn.shard];
        {
            let _rank = lockrank::held(lockrank::REACTOR_INBOX);
            shard.inbox.lock().sends.push((conn.token, bytes.to_vec()));
        }
        if CURRENT_SHARD.with(|c| c.get()) != conn.shard {
            shard.wake.signal();
        }
        true
    }

    /// Stops all shard threads; open connections are dropped without
    /// `on_close` (the daemon is going away wholesale).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.wake.signal();
        }
    }
}

/// A shard-owned connection.
struct Conn {
    reader: FrameReader<TcpStream>,
    handler: Box<dyn Handler>,
    /// Pending output: `out[out_pos..]` is not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// Currently registered epoll interest mask.
    interest: u32,
    /// Close requested; flush remaining output, then drop.
    closing: bool,
    /// `on_close` already ran (guards exactly-once delivery).
    closed_called: bool,
    /// Cached [`Handler::wants_tick`], re-evaluated only after this
    /// connection's handler actually ran (dispatch, tick) — the shard
    /// keeps a live count of interested connections so the hot loop
    /// never scans every handler per wake.
    tick_interest: bool,
}

const READ_INTEREST: u32 = EPOLLIN | EPOLLRDHUP;

impl Conn {
    fn fd(&self) -> i32 {
        self.reader.get_ref().as_raw_fd()
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Writes as much pending output as the socket takes; re-arms or
    /// disarms `EPOLLOUT` to match. `Err` means the connection is dead.
    fn flush(&mut self, epoll: &Epoll, token: u64) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match (&mut self.reader.get_ref()).write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
            if self.interest & EPOLLOUT != 0 {
                self.interest = READ_INTEREST;
                epoll.modify(self.fd(), self.interest, token)?;
            }
        } else {
            // Reclaim the consumed prefix so a long-lived slow consumer
            // does not pin an ever-growing buffer.
            if self.out_pos >= 4096 {
                self.out.drain(..self.out_pos);
                self.out_pos = 0;
            }
            if self.out_pending() > MAX_OUTBUF {
                return Err(io::ErrorKind::OutOfMemory.into());
            }
            if self.interest & EPOLLOUT == 0 {
                self.interest = if self.closing {
                    EPOLLOUT
                } else {
                    READ_INTEREST | EPOLLOUT
                };
                epoll.modify(self.fd(), self.interest, token)?;
            }
        }
        Ok(())
    }
}

enum ReadOutcome {
    /// Keep the connection open.
    Open,
    /// Open, but the per-wake cap stopped dispatch with frames possibly
    /// still buffered in the `FrameReader` — the shard must re-dispatch
    /// before blocking (epoll cannot see userspace buffers).
    Capped,
    /// The handler requested an orderly close (flush, then drop).
    CloseRequested,
    /// Clean EOF: the peer half-closed after its final frames; deliver
    /// the responses it is still owed, then drop (the threaded
    /// front-end wrote each response before reading the next frame, so
    /// a pipelining-then-shutdown(WR) client could rely on this).
    Eof,
    /// Hard error or corrupt framing: drop now.
    Dead,
}

fn read_and_dispatch(reactor: &Reactor, shard: usize, token: u64, conn: &mut Conn) -> ReadOutcome {
    let mut dispatched = 0;
    loop {
        match conn.reader.pop_buffered() {
            Ok(Some(frame)) => {
                let Conn { handler, out, .. } = conn;
                let mut cx = ConnCtx {
                    reactor,
                    conn: ConnRef { shard, token },
                    out,
                };
                CURRENT_CONN.with(|c| c.set((shard, token)));
                let keep = handler.on_frame(&frame, &mut cx);
                CURRENT_CONN.with(|c| c.set((usize::MAX, u64::MAX)));
                // Merge self-sends the handler staged, preserving their
                // order relative to direct writes and later frames.
                SELF_STAGE.with(|s| {
                    let mut staged = s.borrow_mut();
                    if !staged.is_empty() {
                        out.extend_from_slice(&staged);
                        staged.clear();
                    }
                });
                if !keep {
                    return ReadOutcome::CloseRequested;
                }
                dispatched += 1;
                if dispatched >= MAX_FRAMES_PER_WAKE {
                    return ReadOutcome::Capped;
                }
            }
            Ok(None) => match conn.reader.fill_once() {
                Ok(0) => return ReadOutcome::Eof,
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    return ReadOutcome::Open;
                }
                Err(_) => return ReadOutcome::Dead,
            },
            // Corrupt framing (oversized length prefix).
            Err(_) => return ReadOutcome::Dead,
        }
    }
}

/// Re-evaluates a connection's tick interest after its handler ran,
/// keeping the shard's interest count in sync. O(1) per dispatched
/// connection — the event loop consults only the counter.
fn refresh_tick(conn: &mut Conn, tick_count: &mut usize) {
    let want = !conn.closing && conn.handler.wants_tick();
    if want != conn.tick_interest {
        conn.tick_interest = want;
        if want {
            *tick_count += 1;
        } else {
            *tick_count = tick_count.saturating_sub(1);
        }
    }
}

/// Drops a connection, delivering `on_close` if it has not run yet.
fn destroy(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64, tick_count: &mut usize) {
    if let Some(mut conn) = conns.remove(&token) {
        if conn.tick_interest {
            *tick_count = tick_count.saturating_sub(1);
        }
        let _ = epoll.delete(conn.fd());
        if !conn.closed_called {
            conn.handler.on_close();
        }
    }
}

/// Orderly close: run `on_close` now, then flush remaining output and
/// drop (immediately if nothing is pending).
fn begin_close(
    reactor: &Reactor,
    idx: usize,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    tick_count: &mut usize,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    if conn.tick_interest {
        conn.tick_interest = false;
        *tick_count = tick_count.saturating_sub(1);
    }
    if !conn.closed_called {
        conn.handler.on_close();
        conn.closed_called = true;
    }
    // Siphon sends already queued for this connection out of the shard
    // inbox (e.g. a response another thread enqueued in the same
    // dispatch round): they must reach the wire before the close, as
    // they would have under the threaded front-end.
    {
        let _rank = lockrank::held(lockrank::REACTOR_INBOX);
        let mut inbox = reactor.shards[idx].inbox.lock();
        let mut i = 0;
        while i < inbox.sends.len() {
            if inbox.sends[i].0 == token {
                let (_, bytes) = inbox.sends.remove(i);
                conn.out.extend_from_slice(&bytes);
            } else {
                i += 1;
            }
        }
    }
    conn.closing = true;
    if conn.flush(epoll, token).is_err() || conn.out_pending() == 0 {
        destroy(epoll, conns, token, tick_count);
    } else if conn.interest != EPOLLOUT {
        // Stop reading; only the flush matters now.
        conn.interest = EPOLLOUT;
        if epoll.modify(conn.fd(), EPOLLOUT, token).is_err() {
            destroy(epoll, conns, token, tick_count);
        }
    }
}

fn run_shard(reactor: &Arc<Reactor>, idx: usize, epoll: &Epoll) {
    CURRENT_SHARD.with(|c| c.set(idx));
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
    // Connections whose dispatch hit the per-wake cap with frames still
    // buffered in userspace; re-dispatched before the loop blocks.
    let mut backlog: Vec<u64> = Vec::new();
    let mut last_tick = std::time::Instant::now();
    // Live count of connections whose handler wants ticks (maintained
    // by `refresh_tick` at handler-run boundaries): the hot loop tests
    // this counter instead of scanning every handler per wake.
    let mut tick_count: usize = 0;
    // Reused scratch for the tokens due a tick (conns cannot be
    // mutably iterated while handlers run).
    let mut tick_tokens: Vec<u64> = Vec::new();
    loop {
        // Drain the inbox first: adopt new connections and apply queued
        // sends. Shard-local sends rely on this running again after
        // every dispatch round, before the loop blocks.
        let (adopt, sends) = {
            let _rank = lockrank::held(lockrank::REACTOR_INBOX);
            let mut inbox = reactor.shards[idx].inbox.lock();
            (
                std::mem::take(&mut inbox.adopt),
                std::mem::take(&mut inbox.sends),
            )
        };
        for (stream, handler) in adopt {
            let token = next_token;
            next_token += 1;
            if epoll.add(stream.as_raw_fd(), READ_INTEREST, token).is_err() {
                continue; // dropping the stream closes it
            }
            conns.insert(
                token,
                Conn {
                    reader: FrameReader::new(stream),
                    handler,
                    out: Vec::new(),
                    out_pos: 0,
                    interest: READ_INTEREST,
                    closing: false,
                    closed_called: false,
                    tick_interest: false,
                },
            );
        }
        for (token, bytes) in sends {
            let Some(conn) = conns.get_mut(&token) else {
                continue; // connection already gone: drop silently
            };
            if conn.closing {
                continue; // past its on_close; nothing more goes out
            }
            conn.out.extend_from_slice(&bytes);
            if conn.flush(epoll, token).is_err() {
                destroy(epoll, &mut conns, token, &mut tick_count);
            }
        }

        if reactor.shutdown.load(Ordering::SeqCst) {
            return; // conns (and their sockets) drop here
        }

        // Re-dispatch capped connections: their remaining frames sit in
        // the FrameReader, invisible to epoll.
        for token in std::mem::take(&mut backlog) {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.closing {
                continue;
            }
            match read_and_dispatch(reactor, idx, token, conn) {
                ReadOutcome::Open => {
                    refresh_tick(conn, &mut tick_count);
                    if conn.flush(epoll, token).is_err() {
                        destroy(epoll, &mut conns, token, &mut tick_count);
                    }
                }
                ReadOutcome::Capped => {
                    refresh_tick(conn, &mut tick_count);
                    if conn.flush(epoll, token).is_err() {
                        destroy(epoll, &mut conns, token, &mut tick_count);
                    } else {
                        backlog.push(token);
                    }
                }
                ReadOutcome::CloseRequested | ReadOutcome::Eof => {
                    begin_close(reactor, idx, epoll, &mut conns, token, &mut tick_count)
                }
                ReadOutcome::Dead => destroy(epoll, &mut conns, token, &mut tick_count),
            }
        }

        // Don't block while work is pending: a backlog of buffered
        // frames, or inbox entries enqueued after the top-of-loop drain
        // (a shard-local send during backlog dispatch skips the
        // eventfd, so blocking here would strand it). Tick interest
        // (the O(1) counter) bounds the wait instead of blocking it; a
        // shard with neither still parks indefinitely.
        let timeout_ms = if backlog.is_empty() && reactor.shards[idx].inbox_is_empty() {
            if tick_count > 0 {
                TICK.as_millis() as i32
            } else {
                -1
            }
        } else {
            0
        };
        let n = match epoll.wait(&mut events, timeout_ms) {
            Ok(n) => n,
            Err(_) => continue,
        };
        if tick_count > 0 && last_tick.elapsed() >= TICK {
            last_tick = std::time::Instant::now();
            tick_tokens.clear();
            tick_tokens.extend(
                conns
                    .iter()
                    .filter(|(_, c)| c.tick_interest)
                    .map(|(&t, _)| t),
            );
            for &token in &tick_tokens {
                let Some(conn) = conns.get_mut(&token) else {
                    continue;
                };
                let Conn { handler, out, .. } = conn;
                let mut cx = ConnCtx {
                    reactor,
                    conn: ConnRef { shard: idx, token },
                    out,
                };
                CURRENT_CONN.with(|c| c.set((idx, token)));
                handler.on_tick(&mut cx);
                CURRENT_CONN.with(|c| c.set((usize::MAX, u64::MAX)));
                SELF_STAGE.with(|s| {
                    let mut staged = s.borrow_mut();
                    if !staged.is_empty() {
                        out.extend_from_slice(&staged);
                        staged.clear();
                    }
                });
                refresh_tick(conn, &mut tick_count);
                if conn.flush(epoll, token).is_err() {
                    destroy(epoll, &mut conns, token, &mut tick_count);
                }
            }
        }
        for ev in &events[..n] {
            let (mask, token) = (ev.events, ev.data);
            if token == WAKE_TOKEN {
                reactor.shards[idx].wake.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue; // destroyed earlier in this batch
            };
            if mask & (EPOLLERR | EPOLLHUP) != 0 {
                destroy(epoll, &mut conns, token, &mut tick_count);
                continue;
            }
            if mask & EPOLLOUT != 0
                && (conn.flush(epoll, token).is_err()
                    || (conn.closing && conn.out_pending() == 0))
            {
                destroy(epoll, &mut conns, token, &mut tick_count);
                continue;
            }
            if mask & (EPOLLIN | EPOLLRDHUP) != 0 && !conn.closing {
                match read_and_dispatch(reactor, idx, token, conn) {
                    ReadOutcome::Open => {
                        refresh_tick(conn, &mut tick_count);
                        // Flush direct writes the handler produced.
                        if conn.flush(epoll, token).is_err() {
                            destroy(epoll, &mut conns, token, &mut tick_count);
                        }
                    }
                    ReadOutcome::Capped => {
                        refresh_tick(conn, &mut tick_count);
                        if conn.flush(epoll, token).is_err() {
                            destroy(epoll, &mut conns, token, &mut tick_count);
                        } else if !backlog.contains(&token) {
                            backlog.push(token);
                        }
                    }
                    ReadOutcome::CloseRequested | ReadOutcome::Eof => {
                        begin_close(reactor, idx, epoll, &mut conns, token, &mut tick_count)
                    }
                    ReadOutcome::Dead => destroy(epoll, &mut conns, token, &mut tick_count),
                }
            }
        }
    }
}
