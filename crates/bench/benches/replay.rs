//! Throughput of the workload replay engine — the inner loop of every
//! cost figure (Figs. 1, 12–15) and of Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::replay::replay;
use simkit::SeedSeq;
use simtrace::{fig5_trace, Pattern};
use std::hint::black_box;

fn bench_replay(c: &mut Criterion) {
    let mut rng = SeedSeq::new(7).rng(0);
    let trace = fig5_trace(&mut rng, Pattern::Random, 1152, 50, (100, 400));
    let accesses: Vec<u64> = trace.accesses.iter().map(|a| a.step + 1).collect();

    let mut group = c.benchmark_group("replay_fig5_workload");
    for policy in ["lru", "dcl", "arc", "lirs"] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, name| {
            let ctx = ContextCfg::new("bench", StepMath::new(1, 48, 1152), 1000, 288 * 1000)
                .with_policy(name)
                .with_prefetch(false);
            b.iter(|| black_box(replay(&ctx, accesses.iter().copied())))
        });
    }
    group.finish();
}

fn bench_cost_scale_replay(c: &mut Criterion) {
    // The Fig. 1 scale: COSMO timeline (8533 steps, B = 96), 100
    // interleaved analyses.
    let mut rng = SeedSeq::new(9).rng(0);
    let analyses: Vec<Vec<u64>> = (0..100)
        .map(|_| {
            use rand::Rng;
            let start = rng.gen_range(0..8000u64);
            (start..start + 300).map(|k| k + 1).collect()
        })
        .collect();
    let trace = simtrace::interleave_with_overlap(&analyses, 0.5);
    let accesses: Vec<u64> = trace.accesses.iter().map(|a| a.step).collect();

    c.bench_function("replay_cost_model_workload", |b| {
        let ctx = ContextCfg::new("bench", StepMath::new(15, 1440, 128_010), 6, 12_798)
            .with_policy("dcl")
            .with_prefetch(false);
        b.iter(|| black_box(replay(&ctx, accesses.iter().copied())))
    });
}

criterion_group!(benches, bench_replay, bench_cost_scale_replay);
criterion_main!(benches);
