//! Simulation drivers (§III-B).
//!
//! "To let a simulator be managed by SimFS we introduce a simulation
//! driver that can be implemented as a LUA script" providing (1) the
//! naming convention — a `key` function mapping filenames to a
//! monotonically increasing integer — and (2) simulation-job creation
//! taking start/stop keys and a parallelism level.
//!
//! Here the driver is a Rust trait ([`SimDriver`]); [`PatternDriver`] is
//! the standard implementation covering the universal HPC convention of
//! zero-padded step numbers in filenames (`out-000042.sdf`). DESIGN.md
//! §3 documents the LUA-to-trait substitution.

use simbatch::{ParallelismMap, SpawnSpec};
use simstore::fnv1a64;

/// Simulator-specific knowledge the DV needs (§III-B).
pub trait SimDriver: Send + Sync {
    /// Naming convention: extracts the output-step key from a filename.
    /// Must be monotone: files produced later map to larger keys.
    fn key_of(&self, filename: &str) -> Option<u64>;

    /// Inverse of [`key_of`](Self::key_of): the canonical filename of a
    /// key.
    fn filename_of(&self, key: u64) -> String;

    /// Filename of restart step `j`.
    fn restart_filename(&self, j: u64) -> String;

    /// Builds the job that simulates output steps
    /// `start_key ..= stop_key` at the given parallelism level
    /// (the "simulation job" script of §III-B).
    fn make_job(&self, start_key: u64, stop_key: u64, level: u32) -> SpawnSpec;

    /// The parallelism constraints of this simulator.
    fn parallelism(&self) -> ParallelismMap;

    /// Checksum used by `SIMFS_Bitrep` (§III-C: "the way the checksum is
    /// computed is simulator-specific and specified as a function of
    /// simulator driver"). Default: FNV-1a 64.
    fn checksum(&self, bytes: &[u8]) -> u64 {
        fnv1a64(bytes)
    }
}

/// Driver for `<prefix><zero-padded key><suffix>` naming, launching a
/// configurable simulator binary.
#[derive(Clone, Debug)]
pub struct PatternDriver {
    prefix: String,
    suffix: String,
    restart_prefix: String,
    width: usize,
    /// Program + fixed arguments used to build jobs.
    program: String,
    fixed_args: Vec<String>,
    parallelism: ParallelismMap,
}

impl PatternDriver {
    /// A driver naming outputs `<prefix>NNN…<suffix>` with `width`
    /// zero-padded digits and restarts `restart-NNN…<suffix>`.
    pub fn new(prefix: &str, suffix: &str, width: usize) -> PatternDriver {
        assert!((1..=19).contains(&width), "pad width out of range");
        PatternDriver {
            prefix: prefix.to_string(),
            suffix: suffix.to_string(),
            restart_prefix: "restart-".to_string(),
            width,
            program: "simfs-simd".to_string(),
            fixed_args: Vec::new(),
            parallelism: ParallelismMap::unconstrained(1, 4),
        }
    }

    /// Builder: the simulator program and its fixed arguments.
    pub fn with_program(mut self, program: &str, fixed_args: Vec<String>) -> Self {
        self.program = program.to_string();
        self.fixed_args = fixed_args;
        self
    }

    /// Builder: parallelism constraints.
    pub fn with_parallelism(mut self, map: ParallelismMap) -> Self {
        self.parallelism = map;
        self
    }

    /// Builder: restart-file prefix.
    pub fn with_restart_prefix(mut self, prefix: &str) -> Self {
        self.restart_prefix = prefix.to_string();
        self
    }
}

impl SimDriver for PatternDriver {
    fn key_of(&self, filename: &str) -> Option<u64> {
        let rest = filename.strip_prefix(&self.prefix)?;
        let digits = rest.strip_suffix(&self.suffix)?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    fn filename_of(&self, key: u64) -> String {
        format!(
            "{}{:0width$}{}",
            self.prefix,
            key,
            self.suffix,
            width = self.width
        )
    }

    fn restart_filename(&self, j: u64) -> String {
        format!(
            "{}{:0width$}{}",
            self.restart_prefix,
            j,
            self.suffix,
            width = self.width
        )
    }

    fn make_job(&self, start_key: u64, stop_key: u64, level: u32) -> SpawnSpec {
        let mut args = self.fixed_args.clone();
        args.extend([
            "--start-key".to_string(),
            start_key.to_string(),
            "--stop-key".to_string(),
            stop_key.to_string(),
            "--nodes".to_string(),
            self.parallelism.nodes_for_level(level).to_string(),
        ]);
        SpawnSpec::new(&self.program, args)
    }

    fn parallelism(&self) -> ParallelismMap {
        self.parallelism
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver() -> PatternDriver {
        PatternDriver::new("out-", ".sdf", 6)
    }

    #[test]
    fn filename_roundtrip() {
        let d = driver();
        assert_eq!(d.filename_of(42), "out-000042.sdf");
        assert_eq!(d.key_of("out-000042.sdf"), Some(42));
        assert_eq!(d.key_of(&d.filename_of(0)), Some(0));
        // Keys wider than the pad still roundtrip.
        assert_eq!(d.key_of(&d.filename_of(12345678)), Some(12345678));
    }

    #[test]
    fn key_is_monotone_in_name_order() {
        let d = driver();
        let names: Vec<String> = (1..100).map(|k| d.filename_of(k)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "zero-padding keeps lexical = numeric order");
    }

    #[test]
    fn foreign_filenames_rejected() {
        let d = driver();
        assert_eq!(d.key_of("restart-000001.sdf"), None);
        assert_eq!(d.key_of("out-xyz.sdf"), None);
        assert_eq!(d.key_of("out-000001.nc"), None);
        assert_eq!(d.key_of("out-.sdf"), None);
        assert_eq!(d.key_of(""), None);
    }

    #[test]
    fn restart_names_are_distinct_namespace() {
        let d = driver();
        assert_eq!(d.restart_filename(3), "restart-000003.sdf");
        assert_eq!(d.key_of(&d.restart_filename(3)), None);
    }

    #[test]
    fn job_args_carry_range_and_nodes() {
        let d = driver().with_program(
            "./target/debug/simfs-simd",
            vec!["--sim".into(), "heat2d".into()],
        );
        let spec = d.make_job(49, 96, 1);
        assert_eq!(spec.program, "./target/debug/simfs-simd");
        let line = spec.command_line();
        assert!(line.contains("--start-key 49"));
        assert!(line.contains("--stop-key 96"));
        assert!(line.contains("--nodes 2"), "level 1 doubles base 1: {line}");
        assert!(line.contains("--sim heat2d"));
    }

    #[test]
    fn default_checksum_is_fnv() {
        let d = driver();
        assert_eq!(d.checksum(b"x"), simstore::fnv1a64(b"x"));
    }
}
