//! Offline drop-in subset of the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property tests
//! use: the [`proptest!`] harness macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`prop_filter`, range/tuple/collection
//! strategies, [`prop_oneof!`] (weighted and unweighted), a
//! character-class subset of the regex string strategies, and the
//! `prop_assert*`/[`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted for an
//! offline build (see `vendor/README.md`):
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Fixed deterministic seeding** per test name (override with the
//!   `PROPTEST_SEED` environment variable) instead of persisted
//!   failure files.
//! * String strategies support only `[class]{m,n}` patterns — exactly
//!   the shape every pattern in this workspace uses.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary;

pub mod collection;

pub mod sample;

pub mod string;

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample, test_runner};
    }
}

/// Declares property tests: `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __value = match $crate::strategy::Strategy::gen_value(
                        &($strat),
                        __rng,
                    ) {
                        ::std::result::Result::Ok(v) => v,
                        ::std::result::Result::Err(r) => {
                            return $crate::test_runner::CaseResult::Discard(r)
                        }
                    };
                    __inputs.push(::std::format!(
                        "{} = {:?}",
                        stringify!($pat),
                        &__value
                    ));
                    let $pat = __value;
                )+
                let __outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {
                        $crate::test_runner::CaseResult::Pass
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(r),
                    ) => $crate::test_runner::CaseResult::Discard(r),
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => $crate::test_runner::CaseResult::Fail {
                        message: msg,
                        inputs: __inputs,
                    },
                }
            });
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case (with generated inputs attached) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Discards the current case (drawing a fresh one) unless the
/// assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks among several strategies, optionally weighted
/// (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}
