//! The DV control protocol (Fig. 4's "control messages (TCP/IP)").
//!
//! Length-prefixed binary frames, hand-encoded: a `u32` little-endian
//! length followed by a tag byte and the message fields. Hand-rolling
//! keeps the dependency budget (no serde format crate) and makes the
//! wire format explicit and testable.
//!
//! Two client kinds speak it: *analysis* clients (DVLib, §III-C) issue
//! `Acquire`/`Release`/`Bitrep`; *simulator* clients (spawned
//! re-simulations) report `SimStarted`/`FileProduced`/`SimFinished` —
//! the interposition points of §III-B ("we intercept the create and
//! close calls issued by the simulator").

use crate::dv::FailCode;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame size (1 MiB): protocol messages are tiny, so
/// anything bigger is a corrupted stream or a protocol error.
pub const MAX_FRAME: u32 = 1 << 20;

/// Who is connecting (first frame of every session).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientKind {
    /// An analysis application (DVLib).
    Analysis,
    /// A launched re-simulation; `sim_id` is the DV-assigned id passed
    /// through the job environment.
    Simulator {
        /// DV simulation id.
        sim_id: u64,
    },
}

/// Cluster-membership claim attached to a [`Request::Hello`]: what the
/// connecting client believes about the daemon it dialed. A cluster
/// member compares it against its own configuration and rejects the
/// session on mismatch — a client whose member list or
/// [`StepMath`](crate::model::StepMath) disagrees with the daemon's
/// would otherwise silently misroute every interval. `None` (solo
/// tools, simulators, tests) skips the check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Membership {
    /// The member index the client believes this daemon holds.
    pub index: u32,
    /// The cluster size the client routes over.
    pub size: u32,
    /// [`StepMath::config_hash`](crate::model::StepMath::config_hash)
    /// of the step math the client hashes intervals with.
    pub steps_hash: u64,
}

/// Client → DV messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Session setup: who am I, which simulation context.
    Hello {
        /// Client kind.
        kind: ClientKind,
        /// Context name (§II "Simulation Contexts").
        context: String,
        /// Cluster-membership claim, verified by the daemon at hello
        /// time (`None` skips the handshake check).
        membership: Option<Membership>,
        /// Recovery-epoch claim, Membership-style: `Some(e)` marks a
        /// *reconnect* — the client previously held a session under
        /// daemon epoch `e` and intends to re-assert pins. Fresh
        /// sessions send `None`. The daemon counts reconnects and
        /// answers its current epoch in [`Response::HelloOk`].
        epoch: Option<u64>,
    },
    /// Request output steps (`SIMFS_Acquire`): the DV answers one
    /// `Ready`/`Failed` per key; `Queued` may precede them.
    Acquire {
        /// Client-chosen request id echoed in responses.
        req_id: u64,
        /// Requested output-step keys.
        keys: Vec<u64>,
    },
    /// Release one output step (`SIMFS_Release` / intercepted close).
    Release {
        /// Released key.
        key: u64,
    },
    /// Bit-reproducibility check (`SIMFS_Bitrep`).
    Bitrep {
        /// Request id echoed in the response.
        req_id: u64,
        /// Key to verify.
        key: u64,
    },
    /// Simulator: one output step was closed/published.
    FileProduced {
        /// Produced key.
        key: u64,
        /// File size in bytes.
        size: u64,
    },
    /// Simulator: restart loaded, production begins.
    SimStarted,
    /// Simulator: assigned range complete.
    SimFinished,
    /// Analysis: request the context's runtime statistics (profiling
    /// support, §III-C).
    Status {
        /// Request id echoed in the response.
        req_id: u64,
    },
    /// Analysis: a lossy digest of the client's access stream since the
    /// last digest — `(key, epoch, ready)` records in observation order
    /// plus the count of records the client's bounded log had to drop.
    /// Sent by clustered DVLib sessions so every member's prefetch
    /// agents observe the full (pre-routing) sequence; epochs come from
    /// the *client's* monotonic clock, so only their differences carry
    /// meaning (consumption-time gaps), and `ready` marks epochs that
    /// are true ready points (see
    /// [`AccessRecord::ready`](crate::prefetch::AccessRecord::ready)).
    /// Fire-and-forget: no response.
    AccessDigest {
        /// Records the client-side log dropped since the last digest.
        dropped: u64,
        /// `(key, epoch_ns, ready)` in observation order.
        records: Vec<(u64, u64, bool)>,
    },
    /// Analysis: re-assert pins held before a connection drop. Sent
    /// right after a reconnect hello: `prior_client`/`prior_epoch`
    /// name the dead session, `keys` list its held pins (repeated per
    /// pin count). The daemon transfers whatever restart recovery
    /// restored under the prior id to this session and answers
    /// per-key in [`Response::Reasserted`]; anything it no longer
    /// holds comes back `gone` with a reason, so the client can
    /// re-acquire instead of trusting a phantom pin.
    Reassert {
        /// Request id echoed in the response.
        req_id: u64,
        /// The client id of the dropped session.
        prior_client: u64,
        /// The daemon epoch the dropped session ran under.
        prior_epoch: u64,
        /// Pinned keys to re-assert, one entry per held pin count.
        keys: Vec<u64>,
    },
    /// Analysis: acquire keys belonging to a *dead* cluster member at
    /// its deterministic taker. The taker daemon verifies that
    /// `dead_member` routes every key to that member (and is not
    /// itself), lazily rebuilds residency for the foreign interval from
    /// the shared storage area, and serves the keys under its own
    /// budget — answering `Ready`/`Failed`/`Queued` per key exactly
    /// like [`Request::Acquire`]. Untagged foreign-interval acquires
    /// stay hard-rejected; this tag is the client's explicit assertion
    /// that it observed the member down and routed by the successor
    /// rule.
    TakeoverAcquire {
        /// Client-chosen request id echoed in responses.
        req_id: u64,
        /// The member index the client observed down.
        dead_member: u32,
        /// The takeover epoch the client routed under (diagnostic: the
        /// taker echoes it in rejections so split routing is visible).
        origin_epoch: u64,
        /// Foreign-interval keys to acquire.
        keys: Vec<u64>,
    },
    /// Analysis: the dead member is back — release this session's
    /// takeover pins on its keys so normal routing can resume. `keys`
    /// lists the pins to drain, one entry per held pin count (the
    /// client re-acquires at the restarted home member *before* sending
    /// this, so the residency veto never lapses). Answered by
    /// [`Response::HandedBack`].
    HandBack {
        /// Request id echoed in the response.
        req_id: u64,
        /// The member whose intervals are being handed back.
        dead_member: u32,
        /// Takeover-pinned keys to release, repeated per pin count.
        keys: Vec<u64>,
    },
    /// Orderly goodbye.
    Bye,
}

/// DV → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Session accepted.
    HelloOk {
        /// DV-assigned client id.
        client_id: u64,
        /// The daemon's current recovery epoch (0 when durability is
        /// off). Clients carry it back in reconnect hellos and
        /// re-assertions.
        epoch: u64,
    },
    /// `key` is on disk and pinned for this client.
    Ready {
        /// Originating request id.
        req_id: u64,
        /// Ready key.
        key: u64,
    },
    /// `key` cannot be served.
    Failed {
        /// Originating request id.
        req_id: u64,
        /// Failed key.
        key: u64,
        /// Machine-readable failure classification (stable; unknown
        /// values decode as [`FailCode::Other`]).
        code: FailCode,
        /// Reason string (surfaced in `SIMFS_Status`).
        reason: String,
    },
    /// `key` is being produced; estimated wait attached (§III-C status
    /// information).
    Queued {
        /// Originating request id.
        req_id: u64,
        /// Pending key.
        key: u64,
        /// Estimated wait in milliseconds.
        est_wait_ms: u64,
    },
    /// Result of a `Bitrep` check.
    BitrepResult {
        /// Originating request id.
        req_id: u64,
        /// Verified key.
        key: u64,
        /// File checksum matches the recorded one.
        matches: bool,
        /// A recorded checksum existed for this key.
        known: bool,
    },
    /// Context runtime statistics (answer to `Status`).
    StatusInfo {
        /// Originating request id.
        req_id: u64,
        /// Cache hits so far.
        hits: u64,
        /// Cache misses so far.
        misses: u64,
        /// Re-simulations launched.
        restarts: u64,
        /// Output steps produced.
        produced_steps: u64,
        /// Currently running re-simulations.
        active_sims: u64,
    },
    /// Answer to a [`Request::Reassert`]: which pins were restored to
    /// the new session and which are gone (with per-key reasons).
    Reasserted {
        /// Originating request id.
        req_id: u64,
        /// The daemon's current recovery epoch.
        epoch: u64,
        /// Keys whose pins now belong to the new session (one entry
        /// per transferred pin count).
        restored: Vec<u64>,
        /// Keys the daemon no longer holds pinned for the prior
        /// session, each with a descriptive reason.
        gone: Vec<(u64, String)>,
    },
    /// Answer to a [`Request::HandBack`]: how many takeover pin counts
    /// the daemon drained for this session.
    HandedBack {
        /// Originating request id.
        req_id: u64,
        /// Pin-release counts applied, one per listed key occurrence
        /// (a release of a key the session did not hold is a DV no-op
        /// but still counts — the client lists exactly its held pins).
        released: u64,
    },
    /// Protocol-level error; the session is closed after this.
    Error {
        /// Description.
        message: String,
    },
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> io::Result<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("truncated string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(corrupt("truncated string body"));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| corrupt("invalid UTF-8"))
}

/// The wire-tag registry: every frame-discriminator byte, by name.
///
/// `cargo run -p simlint` parses this module and enforces that each
/// constant is unique within its family, appears in both the matching
/// `encode_into` and `decode` below (encode/decode arm symmetry), and
/// is exercised by name in `tests/wire_fuzz.rs`. Add a new frame by
/// adding its constant here first; the lint fails until every site
/// exists.
pub mod tag {
    /// `Request::Hello`.
    pub const REQ_HELLO: u8 = 0;
    /// `Request::Acquire`.
    pub const REQ_ACQUIRE: u8 = 1;
    /// `Request::Release`.
    pub const REQ_RELEASE: u8 = 2;
    /// `Request::Bitrep`.
    pub const REQ_BITREP: u8 = 3;
    /// `Request::FileProduced`.
    pub const REQ_FILE_PRODUCED: u8 = 4;
    /// `Request::SimStarted`.
    pub const REQ_SIM_STARTED: u8 = 5;
    /// `Request::SimFinished`.
    pub const REQ_SIM_FINISHED: u8 = 6;
    /// `Request::Bye`.
    pub const REQ_BYE: u8 = 7;
    /// `Request::Status`.
    pub const REQ_STATUS: u8 = 8;
    /// `Request::AccessDigest`.
    pub const REQ_ACCESS_DIGEST: u8 = 9;
    /// `Request::Reassert`.
    pub const REQ_REASSERT: u8 = 10;
    /// `Request::TakeoverAcquire`.
    pub const REQ_TAKEOVER_ACQUIRE: u8 = 11;
    /// `Request::HandBack`.
    pub const REQ_HAND_BACK: u8 = 12;

    /// `Response::HelloOk`.
    pub const RESP_HELLO_OK: u8 = 0;
    /// `Response::Ready`.
    pub const RESP_READY: u8 = 1;
    /// `Response::Failed`.
    pub const RESP_FAILED: u8 = 2;
    /// `Response::Queued`.
    pub const RESP_QUEUED: u8 = 3;
    /// `Response::BitrepResult`.
    pub const RESP_BITREP_RESULT: u8 = 4;
    /// `Response::Error`.
    pub const RESP_ERROR: u8 = 5;
    /// `Response::StatusInfo`.
    pub const RESP_STATUS_INFO: u8 = 6;
    /// `Response::Reasserted`.
    pub const RESP_REASSERTED: u8 = 7;
    /// `Response::HandedBack`.
    pub const RESP_HANDED_BACK: u8 = 8;
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wire: {msg}"))
}

impl Request {
    /// Encodes into a frame body (no length prefix).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(32);
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the frame body to `buf` without allocating.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Request::Hello {
                kind,
                context,
                membership,
                epoch,
            } => {
                buf.put_u8(tag::REQ_HELLO);
                match kind {
                    ClientKind::Analysis => buf.put_u8(0),
                    ClientKind::Simulator { sim_id } => {
                        buf.put_u8(1);
                        buf.put_u64_le(*sim_id);
                    }
                }
                put_string(buf, context);
                match membership {
                    None => buf.put_u8(0),
                    Some(m) => {
                        buf.put_u8(1);
                        buf.put_u32_le(m.index);
                        buf.put_u32_le(m.size);
                        buf.put_u64_le(m.steps_hash);
                    }
                }
                match epoch {
                    None => buf.put_u8(0),
                    Some(e) => {
                        buf.put_u8(1);
                        buf.put_u64_le(*e);
                    }
                }
            }
            Request::Acquire { req_id, keys } => {
                buf.put_u8(tag::REQ_ACQUIRE);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(keys.len() as u32);
                for k in keys {
                    buf.put_u64_le(*k);
                }
            }
            Request::Release { key } => {
                buf.put_u8(tag::REQ_RELEASE);
                buf.put_u64_le(*key);
            }
            Request::Bitrep { req_id, key } => {
                buf.put_u8(tag::REQ_BITREP);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*key);
            }
            Request::FileProduced { key, size } => {
                buf.put_u8(tag::REQ_FILE_PRODUCED);
                buf.put_u64_le(*key);
                buf.put_u64_le(*size);
            }
            Request::SimStarted => buf.put_u8(tag::REQ_SIM_STARTED),
            Request::SimFinished => buf.put_u8(tag::REQ_SIM_FINISHED),
            Request::Bye => buf.put_u8(tag::REQ_BYE),
            Request::Status { req_id } => {
                buf.put_u8(tag::REQ_STATUS);
                buf.put_u64_le(*req_id);
            }
            Request::AccessDigest { dropped, records } => {
                buf.put_u8(tag::REQ_ACCESS_DIGEST);
                buf.put_u64_le(*dropped);
                buf.put_u32_le(records.len() as u32);
                for (key, epoch, ready) in records {
                    buf.put_u64_le(*key);
                    buf.put_u64_le(*epoch);
                    buf.put_u8(u8::from(*ready));
                }
            }
            Request::Reassert {
                req_id,
                prior_client,
                prior_epoch,
                keys,
            } => {
                buf.put_u8(tag::REQ_REASSERT);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*prior_client);
                buf.put_u64_le(*prior_epoch);
                buf.put_u32_le(keys.len() as u32);
                for k in keys {
                    buf.put_u64_le(*k);
                }
            }
            Request::TakeoverAcquire {
                req_id,
                dead_member,
                origin_epoch,
                keys,
            } => {
                buf.put_u8(tag::REQ_TAKEOVER_ACQUIRE);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(*dead_member);
                buf.put_u64_le(*origin_epoch);
                buf.put_u32_le(keys.len() as u32);
                for k in keys {
                    buf.put_u64_le(*k);
                }
            }
            Request::HandBack {
                req_id,
                dead_member,
                keys,
            } => {
                buf.put_u8(tag::REQ_HAND_BACK);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(*dead_member);
                buf.put_u32_le(keys.len() as u32);
                for k in keys {
                    buf.put_u64_le(*k);
                }
            }
        }
    }

    /// Decodes a frame body.
    pub fn decode(mut buf: &[u8]) -> io::Result<Request> {
        if buf.is_empty() {
            return Err(corrupt("empty request frame"));
        }
        let tag = buf.get_u8();
        let req = match tag {
            tag::REQ_HELLO => {
                if buf.remaining() < 1 {
                    return Err(corrupt("truncated hello"));
                }
                let kind = match buf.get_u8() {
                    0 => ClientKind::Analysis,
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(corrupt("truncated sim id"));
                        }
                        ClientKind::Simulator {
                            sim_id: buf.get_u64_le(),
                        }
                    }
                    k => return Err(corrupt(&format!("unknown client kind {k}"))),
                };
                let context = get_string(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(corrupt("truncated membership flag"));
                }
                let membership = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 16 {
                            return Err(corrupt("truncated membership"));
                        }
                        Some(Membership {
                            index: buf.get_u32_le(),
                            size: buf.get_u32_le(),
                            steps_hash: buf.get_u64_le(),
                        })
                    }
                    f => return Err(corrupt(&format!("unknown membership flag {f}"))),
                };
                if buf.remaining() < 1 {
                    return Err(corrupt("truncated epoch flag"));
                }
                let epoch = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(corrupt("truncated epoch"));
                        }
                        Some(buf.get_u64_le())
                    }
                    f => return Err(corrupt(&format!("unknown epoch flag {f}"))),
                };
                Request::Hello {
                    kind,
                    context,
                    membership,
                    epoch,
                }
            }
            tag::REQ_ACQUIRE => {
                if buf.remaining() < 12 {
                    return Err(corrupt("truncated acquire"));
                }
                let req_id = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 {
                    return Err(corrupt("truncated acquire keys"));
                }
                let keys = (0..n).map(|_| buf.get_u64_le()).collect();
                Request::Acquire { req_id, keys }
            }
            tag::REQ_RELEASE => {
                if buf.remaining() < 8 {
                    return Err(corrupt("truncated release"));
                }
                Request::Release {
                    key: buf.get_u64_le(),
                }
            }
            tag::REQ_BITREP => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated bitrep"));
                }
                Request::Bitrep {
                    req_id: buf.get_u64_le(),
                    key: buf.get_u64_le(),
                }
            }
            tag::REQ_FILE_PRODUCED => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated file-produced"));
                }
                Request::FileProduced {
                    key: buf.get_u64_le(),
                    size: buf.get_u64_le(),
                }
            }
            tag::REQ_SIM_STARTED => Request::SimStarted,
            tag::REQ_SIM_FINISHED => Request::SimFinished,
            tag::REQ_BYE => Request::Bye,
            tag::REQ_STATUS => {
                if buf.remaining() < 8 {
                    return Err(corrupt("truncated status"));
                }
                Request::Status {
                    req_id: buf.get_u64_le(),
                }
            }
            tag::REQ_ACCESS_DIGEST => {
                if buf.remaining() < 12 {
                    return Err(corrupt("truncated access digest"));
                }
                let dropped = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 17 {
                    return Err(corrupt("truncated access digest records"));
                }
                let records = (0..n)
                    .map(|_| (buf.get_u64_le(), buf.get_u64_le(), buf.get_u8() != 0))
                    .collect();
                Request::AccessDigest { dropped, records }
            }
            tag::REQ_REASSERT => {
                if buf.remaining() < 28 {
                    return Err(corrupt("truncated reassert"));
                }
                let req_id = buf.get_u64_le();
                let prior_client = buf.get_u64_le();
                let prior_epoch = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 {
                    return Err(corrupt("truncated reassert keys"));
                }
                let keys = (0..n).map(|_| buf.get_u64_le()).collect();
                Request::Reassert {
                    req_id,
                    prior_client,
                    prior_epoch,
                    keys,
                }
            }
            tag::REQ_TAKEOVER_ACQUIRE => {
                if buf.remaining() < 24 {
                    return Err(corrupt("truncated takeover acquire"));
                }
                let req_id = buf.get_u64_le();
                let dead_member = buf.get_u32_le();
                let origin_epoch = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 {
                    return Err(corrupt("truncated takeover acquire keys"));
                }
                let keys = (0..n).map(|_| buf.get_u64_le()).collect();
                Request::TakeoverAcquire {
                    req_id,
                    dead_member,
                    origin_epoch,
                    keys,
                }
            }
            tag::REQ_HAND_BACK => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated hand-back"));
                }
                let req_id = buf.get_u64_le();
                let dead_member = buf.get_u32_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 {
                    return Err(corrupt("truncated hand-back keys"));
                }
                let keys = (0..n).map(|_| buf.get_u64_le()).collect();
                Request::HandBack {
                    req_id,
                    dead_member,
                    keys,
                }
            }
            t => return Err(corrupt(&format!("unknown request tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes in request"));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame body (no length prefix).
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(32);
        self.encode_into(&mut buf);
        buf
    }

    /// Appends the frame body to `buf` without allocating.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Response::HelloOk { client_id, epoch } => {
                buf.put_u8(tag::RESP_HELLO_OK);
                buf.put_u64_le(*client_id);
                buf.put_u64_le(*epoch);
            }
            Response::Ready { req_id, key } => {
                buf.put_u8(tag::RESP_READY);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*key);
            }
            Response::Failed {
                req_id,
                key,
                code,
                reason,
            } => {
                buf.put_u8(tag::RESP_FAILED);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*key);
                buf.put_u8(code.as_u8());
                put_string(buf, reason);
            }
            Response::Queued {
                req_id,
                key,
                est_wait_ms,
            } => {
                buf.put_u8(tag::RESP_QUEUED);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*key);
                buf.put_u64_le(*est_wait_ms);
            }
            Response::BitrepResult {
                req_id,
                key,
                matches,
                known,
            } => {
                buf.put_u8(tag::RESP_BITREP_RESULT);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*key);
                buf.put_u8(u8::from(*matches));
                buf.put_u8(u8::from(*known));
            }
            Response::Error { message } => {
                buf.put_u8(tag::RESP_ERROR);
                put_string(buf, message);
            }
            Response::StatusInfo {
                req_id,
                hits,
                misses,
                restarts,
                produced_steps,
                active_sims,
            } => {
                buf.put_u8(tag::RESP_STATUS_INFO);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*hits);
                buf.put_u64_le(*misses);
                buf.put_u64_le(*restarts);
                buf.put_u64_le(*produced_steps);
                buf.put_u64_le(*active_sims);
            }
            Response::Reasserted {
                req_id,
                epoch,
                restored,
                gone,
            } => {
                buf.put_u8(tag::RESP_REASSERTED);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*epoch);
                buf.put_u32_le(restored.len() as u32);
                for k in restored {
                    buf.put_u64_le(*k);
                }
                buf.put_u32_le(gone.len() as u32);
                for (k, reason) in gone {
                    buf.put_u64_le(*k);
                    put_string(buf, reason);
                }
            }
            Response::HandedBack { req_id, released } => {
                buf.put_u8(tag::RESP_HANDED_BACK);
                buf.put_u64_le(*req_id);
                buf.put_u64_le(*released);
            }
        }
    }

    /// Decodes a frame body.
    pub fn decode(mut buf: &[u8]) -> io::Result<Response> {
        if buf.is_empty() {
            return Err(corrupt("empty response frame"));
        }
        let tag = buf.get_u8();
        let resp = match tag {
            tag::RESP_HELLO_OK => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated hello-ok"));
                }
                Response::HelloOk {
                    client_id: buf.get_u64_le(),
                    epoch: buf.get_u64_le(),
                }
            }
            tag::RESP_READY => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated ready"));
                }
                Response::Ready {
                    req_id: buf.get_u64_le(),
                    key: buf.get_u64_le(),
                }
            }
            tag::RESP_FAILED => {
                if buf.remaining() < 17 {
                    return Err(corrupt("truncated failed"));
                }
                Response::Failed {
                    req_id: buf.get_u64_le(),
                    key: buf.get_u64_le(),
                    code: FailCode::from_u8(buf.get_u8()),
                    reason: get_string(&mut buf)?,
                }
            }
            tag::RESP_QUEUED => {
                if buf.remaining() < 24 {
                    return Err(corrupt("truncated queued"));
                }
                Response::Queued {
                    req_id: buf.get_u64_le(),
                    key: buf.get_u64_le(),
                    est_wait_ms: buf.get_u64_le(),
                }
            }
            tag::RESP_BITREP_RESULT => {
                if buf.remaining() < 18 {
                    return Err(corrupt("truncated bitrep result"));
                }
                Response::BitrepResult {
                    req_id: buf.get_u64_le(),
                    key: buf.get_u64_le(),
                    matches: buf.get_u8() != 0,
                    known: buf.get_u8() != 0,
                }
            }
            tag::RESP_ERROR => Response::Error {
                message: get_string(&mut buf)?,
            },
            tag::RESP_STATUS_INFO => {
                if buf.remaining() < 48 {
                    return Err(corrupt("truncated status info"));
                }
                Response::StatusInfo {
                    req_id: buf.get_u64_le(),
                    hits: buf.get_u64_le(),
                    misses: buf.get_u64_le(),
                    restarts: buf.get_u64_le(),
                    produced_steps: buf.get_u64_le(),
                    active_sims: buf.get_u64_le(),
                }
            }
            tag::RESP_REASSERTED => {
                if buf.remaining() < 20 {
                    return Err(corrupt("truncated reasserted"));
                }
                let req_id = buf.get_u64_le();
                let epoch = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 8 {
                    return Err(corrupt("truncated reasserted keys"));
                }
                let restored = (0..n).map(|_| buf.get_u64_le()).collect();
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated reasserted gone count"));
                }
                let n_gone = buf.get_u32_le() as usize;
                let mut gone = Vec::with_capacity(n_gone.min(1024));
                for _ in 0..n_gone {
                    if buf.remaining() < 8 {
                        return Err(corrupt("truncated reasserted gone key"));
                    }
                    let k = buf.get_u64_le();
                    gone.push((k, get_string(&mut buf)?));
                }
                Response::Reasserted {
                    req_id,
                    epoch,
                    restored,
                    gone,
                }
            }
            tag::RESP_HANDED_BACK => {
                if buf.remaining() < 16 {
                    return Err(corrupt("truncated handed-back"));
                }
                Response::HandedBack {
                    req_id: buf.get_u64_le(),
                    released: buf.get_u64_le(),
                }
            }
            t => return Err(corrupt(&format!("unknown response tag {t}"))),
        };
        if buf.has_remaining() {
            return Err(corrupt("trailing bytes in response"));
        }
        Ok(resp)
    }
}

/// Coalesces several length-prefixed frames into one contiguous buffer
/// so a burst of responses to the same destination costs one
/// `write_all` (and typically one TCP segment) instead of one syscall
/// per frame. The on-wire bytes are identical to a sequence of
/// [`write_frame`] calls — batching happens strictly at the I/O layer,
/// not in the protocol.
#[derive(Debug, Default)]
pub struct FrameBatch {
    buf: BytesMut,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> FrameBatch {
        FrameBatch::default()
    }

    /// Appends one frame encoded in place (no per-frame allocation):
    /// reserves the length slot, encodes, then backfills the length.
    fn push_with(&mut self, encode: impl FnOnce(&mut BytesMut)) {
        let len_at = self.buf.len();
        self.buf.put_u32_le(0);
        encode(&mut self.buf);
        let body_len = (self.buf.len() - len_at - 4) as u32;
        debug_assert!(body_len <= MAX_FRAME);
        self.buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Encodes a response directly into the batch.
    pub fn push_response(&mut self, resp: &Response) {
        self.push_with(|buf| resp.encode_into(buf));
    }

    /// Encodes a request directly into the batch (simulator sessions
    /// batch their notifications the same way).
    pub fn push_request(&mut self, req: &Request) {
        self.push_with(|buf| req.encode_into(buf));
    }

    /// True if no frames were pushed since the last clear.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Buffered wire bytes (length prefixes included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Clears the batch, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Writes the whole batch in one `write_all` and clears it.
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        w.write_all(&self.buf)?;
        self.buf.clear();
        w.flush()
    }
}

/// Buffered frame reader: drains multiple queued frames per `read`
/// syscall. Partial frames stay buffered across calls, so transient
/// read timeouts (`WouldBlock`/`TimedOut`) never desynchronize the
/// stream — callers can treat them as "no frame yet" and retry.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    /// Fixed-length scratch; `buf[start..end]` holds unconsumed bytes.
    /// The length only ever grows (to `end + READ_CHUNK`), so refills
    /// never re-zero the region they read into.
    buf: Vec<u8>,
    /// Consumed prefix of the filled region (compacted before refills).
    start: usize,
    /// Filled watermark of `buf`.
    end: usize,
}

/// Read chunk size: large enough to drain dozens of queued control
/// frames per syscall, small enough to stay cache-friendly.
const READ_CHUNK: usize = 16 * 1024;

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            end: 0,
        }
    }

    /// The wrapped stream (e.g. to set socket options).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    fn buffered(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Pops a complete buffered frame, if one is available, without
    /// touching the underlying stream.
    pub fn pop_buffered(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.end - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME {
            return Err(corrupt(&format!("oversized frame ({len} bytes)")));
        }
        let len = len as usize;
        if avail < 4 + len {
            return Ok(None);
        }
        let body = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        Ok(Some(body))
    }

    /// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a
    /// frame boundary. `WouldBlock`/`TimedOut` errors from the stream
    /// pass through with all partial data retained.
    pub fn read_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(body) = self.pop_buffered()? {
                return Ok(Some(body));
            }
            if self.fill_once()? == 0 {
                if self.buffered().is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame",
                ));
            }
        }
    }

    /// Performs at most one `read` into the buffer; returns the byte
    /// count (0 = EOF). Pair with [`pop_buffered`](Self::pop_buffered)
    /// when the caller needs an upper bound of one syscall per call —
    /// timed polls, for instance, where [`read_frame`](Self::read_frame)
    /// would re-arm the socket timeout for every partial chunk.
    pub fn fill_once(&mut self) -> io::Result<usize> {
        // Compact before refilling so the buffer does not creep.
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        // Grow (and zero) only when the high-water mark rises;
        // steady-state refills reuse the same bytes.
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let got = self.inner.read(&mut self.buf[self.end..])?;
        self.end += got;
        Ok(got)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = body.len() as u32;
    debug_assert!(len <= MAX_FRAME);
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(corrupt(&format!("oversized frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let encoded = req.encode();
        let decoded = Request::decode(&encoded).unwrap();
        assert_eq!(req, decoded);
    }

    fn roundtrip_resp(resp: Response) {
        let encoded = resp.encode();
        let decoded = Response::decode(&encoded).unwrap();
        assert_eq!(resp, decoded);
    }

    #[test]
    fn all_requests_roundtrip() {
        roundtrip_req(Request::Hello {
            kind: ClientKind::Analysis,
            context: "cosmo-1km".into(),
            membership: None,
            epoch: None,
        });
        roundtrip_req(Request::Hello {
            kind: ClientKind::Analysis,
            context: "cosmo-1km".into(),
            membership: Some(Membership {
                index: 2,
                size: 3,
                steps_hash: 0xDEAD_BEEF_CAFE_F00D,
            }),
            epoch: None,
        });
        roundtrip_req(Request::Hello {
            kind: ClientKind::Analysis,
            context: "cosmo-1km".into(),
            membership: Some(Membership {
                index: 0,
                size: 3,
                steps_hash: 1,
            }),
            epoch: Some(4),
        });
        roundtrip_req(Request::Hello {
            kind: ClientKind::Simulator { sim_id: 42 },
            context: "flash".into(),
            membership: None,
            epoch: None,
        });
        roundtrip_req(Request::Reassert {
            req_id: 8,
            prior_client: 17,
            prior_epoch: 3,
            keys: vec![5, 5, 9],
        });
        roundtrip_req(Request::Reassert {
            req_id: 0,
            prior_client: 1,
            prior_epoch: 0,
            keys: vec![],
        });
        roundtrip_req(Request::AccessDigest {
            dropped: 0,
            records: vec![],
        });
        roundtrip_req(Request::AccessDigest {
            dropped: 7,
            records: vec![(1, 100, true), (2, 250, false), (3, 412, true)],
        });
        roundtrip_req(Request::Acquire {
            req_id: 7,
            keys: vec![1, 2, 99],
        });
        roundtrip_req(Request::Acquire {
            req_id: 0,
            keys: vec![],
        });
        roundtrip_req(Request::Release { key: 5 });
        roundtrip_req(Request::Bitrep { req_id: 9, key: 3 });
        roundtrip_req(Request::FileProduced { key: 10, size: 4096 });
        roundtrip_req(Request::SimStarted);
        roundtrip_req(Request::SimFinished);
        roundtrip_req(Request::Status { req_id: 12 });
        roundtrip_req(Request::TakeoverAcquire {
            req_id: 14,
            dead_member: 1,
            origin_epoch: 3,
            keys: vec![5, 6, 17],
        });
        roundtrip_req(Request::TakeoverAcquire {
            req_id: 0,
            dead_member: 0,
            origin_epoch: 0,
            keys: vec![],
        });
        roundtrip_req(Request::HandBack {
            req_id: 15,
            dead_member: 1,
            keys: vec![5, 5, 17],
        });
        roundtrip_req(Request::HandBack {
            req_id: 0,
            dead_member: 2,
            keys: vec![],
        });
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_resp(Response::HelloOk { client_id: 3, epoch: 0 });
        roundtrip_resp(Response::HelloOk { client_id: 9, epoch: 12 });
        roundtrip_resp(Response::Reasserted {
            req_id: 6,
            epoch: 2,
            restored: vec![4, 4, 11],
            gone: vec![(7, "evicted during recovery".into()), (8, String::new())],
        });
        roundtrip_resp(Response::Reasserted {
            req_id: 0,
            epoch: 1,
            restored: vec![],
            gone: vec![],
        });
        roundtrip_resp(Response::Ready { req_id: 1, key: 2 });
        roundtrip_resp(Response::Failed {
            req_id: 1,
            key: 2,
            code: FailCode::Other,
            reason: "restart failed".into(),
        });
        for code in [
            FailCode::Retriable,
            FailCode::Poisoned,
            FailCode::HangKilled,
            FailCode::CorruptOutput,
        ] {
            roundtrip_resp(Response::Failed {
                req_id: 9,
                key: 3,
                code,
                reason: code.as_str().into(),
            });
        }
        roundtrip_resp(Response::Queued {
            req_id: 4,
            key: 8,
            est_wait_ms: 1234,
        });
        roundtrip_resp(Response::BitrepResult {
            req_id: 5,
            key: 6,
            matches: true,
            known: false,
        });
        roundtrip_resp(Response::Error {
            message: "unknown context".into(),
        });
        roundtrip_resp(Response::HandedBack { req_id: 7, released: 3 });
        roundtrip_resp(Response::HandedBack { req_id: 0, released: 0 });
        roundtrip_resp(Response::StatusInfo {
            req_id: 2,
            hits: 10,
            misses: 3,
            restarts: 1,
            produced_steps: 48,
            active_sims: 2,
        });
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Request::decode(&[1, 0, 0]).is_err());
        assert!(Response::decode(&[77]).is_err());
        // Trailing bytes are an error (catches framing bugs early).
        let mut ok = Request::Bye.encode().to_vec();
        ok.push(0);
        assert!(Request::decode(&ok).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        for req in [
            Request::Hello {
                kind: ClientKind::Analysis,
                context: "c".into(),
                membership: None,
                epoch: None,
            },
            Request::Acquire {
                req_id: 1,
                keys: vec![11, 22],
            },
            Request::Bye,
        ] {
            write_frame(&mut wire, &req.encode()).unwrap();
        }
        let mut cursor = &wire[..];
        let mut decoded = Vec::new();
        while let Some(body) = read_frame(&mut cursor).unwrap() {
            decoded.push(Request::decode(&body).unwrap());
        }
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[2], Request::Bye);
    }

    #[test]
    fn clean_eof_yields_none_mid_eof_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Bye.encode()).unwrap();
        // Clean EOF after one frame:
        let mut cursor = &wire[..];
        assert!(read_frame(&mut cursor).unwrap().is_some());
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // Truncated frame body:
        let mut truncated = &wire[..wire.len() - 1];
        assert!(read_frame(&mut truncated).is_err());
    }

    #[test]
    fn oversized_frame_rejected() {
        let bad = (MAX_FRAME + 1).to_le_bytes();
        let mut cursor = &bad[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
