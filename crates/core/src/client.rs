//! DVLib: the analysis-side client library (§III-C).
//!
//! The paper's API surface, in Rust form:
//!
//! | Paper call            | Here                                   |
//! |-----------------------|----------------------------------------|
//! | `SIMFS_Init`          | [`SimfsClient::connect`]               |
//! | `SIMFS_Finalize`      | [`SimfsClient::finalize`]              |
//! | `SIMFS_Acquire`       | [`SimfsClient::acquire`]               |
//! | `SIMFS_Acquire_nb`    | [`SimfsClient::acquire_nb`]            |
//! | `SIMFS_Release`       | [`SimfsClient::release`]               |
//! | `SIMFS_Wait`          | [`SimfsClient::wait`]                  |
//! | `SIMFS_Test`          | [`SimfsClient::test`]                  |
//! | `SIMFS_Waitsome`      | [`SimfsClient::waitsome`]              |
//! | `SIMFS_Testsome`      | [`SimfsClient::testsome`]              |
//! | `SIMFS_Bitrep`        | [`SimfsClient::bitrep`]                |
//!
//! The acquire calls return a [`SimfsStatus`] carrying error state and
//! the DV's estimated waiting time, which "the analysis can use for
//! debugging, profiling, and for saving compute hours/energy" (§III-C).
//!
//! [`SimulatorSession`] is the simulator-side half: the notifications a
//! launched re-simulation sends as DVLib intercepts its create/close
//! calls (§III-B).
//!
//! [`DvCluster`] is the multi-daemon routing tier: the same API surface
//! over K daemons, each owning a disjoint set of restart intervals.
//! DVLib hashes every key's interval to its owning daemon (the exact
//! rule [`crate::dv::DvRouter`] applies intra-process) and multiplexes
//! one write-coalescing [`SimfsClient`] connection per daemon; teardown
//! ([`DvCluster::finalize`] or drop) fans out to every member, so each
//! daemon releases this client's pins.
//!
//! # Connection lifetime
//!
//! The daemon's epoll front-end closes the connection *actively* after
//! `Bye`, after a `SimFinished`, and after any protocol error (the
//! threaded front-end merely stopped reading and dropped the socket).
//! Clients must treat EOF after a goodbye as a normal teardown — which
//! these APIs do: [`SimfsClient::finalize`] consumes the session, and a
//! mid-request EOF still surfaces as `UnexpectedEof`. Dropping a
//! session without `Bye` is also safe: the daemon maps the hangup to
//! `ClientGone` (releasing pins) or `SimFailed` exactly as before.

use crate::dv::DvRouter;
use crate::model::StepMath;
use crate::prefetch::{AccessLog, AccessRecord, ACCESS_LOG_CAPACITY};
use crate::wire::{self, ClientKind, FrameBatch, FrameReader, Membership, Request, Response};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Typed deadline error: the payload of an
/// [`io::ErrorKind::TimedOut`] error returned when a blocking DVLib
/// call exceeds the configured [`SimfsClient::set_op_timeout`]
/// deadline — a daemon that died without closing its socket would
/// otherwise block the analysis forever. Recover it from the error via
/// [`DvTimeout::from_io`]; with auto-reconnect enabled the timeout
/// instead feeds the reconnect path and is only surfaced if that fails
/// too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DvTimeout {
    /// The DVLib operation that timed out (`"wait"`, `"bitrep"`, ...).
    pub op: &'static str,
    /// The deadline that elapsed.
    pub after: Duration,
}

impl DvTimeout {
    /// Downcasts an [`io::Error`] to the typed timeout, if that is
    /// what it carries.
    pub fn from_io(err: &io::Error) -> Option<&DvTimeout> {
        err.get_ref().and_then(|inner| inner.downcast_ref::<DvTimeout>())
    }

    fn into_io(self) -> io::Error {
        io::Error::new(io::ErrorKind::TimedOut, self)
    }
}

impl fmt::Display for DvTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DV {} timed out after {:?}", self.op, self.after)
    }
}

impl std::error::Error for DvTimeout {}

/// Floor of the reconnect backoff ladder.
const RECONNECT_MIN_DELAY: Duration = Duration::from_millis(10);
/// Cap of the reconnect backoff ladder (doubling stops here).
const RECONNECT_MAX_DELAY: Duration = Duration::from_secs(1);
/// Total time a reconnect keeps retrying before giving up — generous
/// enough to cover a daemon restart with `--recover`.
const RECONNECT_WINDOW: Duration = Duration::from_secs(30);
/// Connect-phase timeout of each individual reconnect attempt.
const RECONNECT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Errors that mean "the connection is dead", not "the request is
/// wrong" — the triggers of the reconnect path.
fn is_disconnect(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
    )
}

/// Status of an acquire operation (§III-C `SIMFS_Status`).
#[derive(Clone, Debug, Default)]
pub struct SimfsStatus {
    /// Keys now available (and pinned for this client).
    pub ready: Vec<u64>,
    /// Keys that failed, with reasons (e.g. "restart failed").
    pub failed: Vec<(u64, String)>,
    /// Estimated waiting time for the pending keys, if the DV provided
    /// one.
    pub est_wait: Option<Duration>,
}

impl SimfsStatus {
    /// True if nothing failed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// One step of a [`SimfsClient::call`] response loop: the matching
/// reply resolves the call, anything else is stashed as a stray.
enum CallStep<T> {
    Done(T),
    Stray(Response),
}

/// Handle for a non-blocking acquire (`SIMFS_Req`).
#[derive(Debug)]
pub struct AcquireRequest {
    req_id: u64,
    outstanding: HashSet<u64>,
    status: SimfsStatus,
    /// Keys the daemon reported `Queued` (they blocked on production):
    /// consumed by [`DvCluster`]'s digest recording — a blocked key's
    /// acquire-time epoch is not a ready point.
    queued: HashSet<u64>,
}

impl AcquireRequest {
    /// Keys still pending.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True once every key resolved (ready or failed).
    pub fn done(&self) -> bool {
        self.outstanding.is_empty()
    }
}

/// An analysis session with the DV daemon (`SIMFS_Context`).
pub struct SimfsClient {
    /// Write half (a second handle to the same socket).
    stream: TcpStream,
    /// Buffered read half: drains multiple queued response frames per
    /// syscall; a read timeout never loses a partially received frame.
    reader: FrameReader<TcpStream>,
    client_id: u64,
    context: String,
    next_req: u64,
    /// Responses received while waiting for a different request (e.g. a
    /// `Ready` for an outstanding non-blocking acquire arriving during a
    /// `bitrep` round-trip). Consumed before reading the socket again.
    stray: Vec<Response>,
    /// Write-coalescing buffer: fire-and-forget frames (`Release`) are
    /// staged here and ride in the same write — and the same TCP
    /// segment — as the next request, halving the syscalls of the
    /// dominant release-then-acquire pattern. Flushed before anything
    /// that reads a response, so buffering is never observable beyond
    /// the release reaching the DV marginally later.
    pending_out: FrameBatch,
    /// The daemon's recovery epoch from the hello handshake: tells a
    /// reconnect whether it is talking to the same instance (pins are
    /// gone) or a recovered one (pins may be re-asserted).
    epoch: u64,
    /// The resolved peer address, kept for reconnects.
    addr: Option<SocketAddr>,
    /// The membership claim of the original handshake, replayed on
    /// reconnect.
    membership: Option<Membership>,
    /// key → pin count this session currently holds (Ready responses
    /// minus releases): what a reconnect re-asserts.
    held: HashMap<u64, u32>,
    /// Reconnect with capped exponential backoff and re-assert held
    /// pins when the connection dies (off by default — callers that
    /// prefer fail-fast semantics see the raw error).
    auto_reconnect: bool,
    /// Deadline for blocking calls; `None` blocks forever.
    op_timeout: Option<Duration>,
    /// Successful reconnects over this session's lifetime.
    reconnects: u64,
    /// Pins restored via `Reassert` across all reconnects.
    pins_reasserted: u64,
    /// Re-entrancy guard: a failure *during* recovery must surface,
    /// not recurse into another recovery.
    recovering: bool,
}

impl SimfsClient {
    /// `SIMFS_Init`: connects and performs the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs, context: &str) -> io::Result<SimfsClient> {
        Self::connect_with(addr, context, None)
    }

    /// [`connect`](Self::connect) carrying a cluster-membership claim:
    /// the daemon verifies `(index, size, steps_hash)` against its own
    /// configuration at hello time and refuses the session on mismatch
    /// — the error names both sides' views. Used by [`DvCluster`] so a
    /// misconfigured member list or divergent [`StepMath`] fails loudly
    /// instead of silently misrouting intervals.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        context: &str,
        membership: Option<Membership>,
    ) -> io::Result<SimfsClient> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr().ok();
        let (stream, reader, client_id, epoch) =
            Self::handshake(stream, context, membership, None)?;
        Ok(SimfsClient {
            stream,
            reader,
            client_id,
            context: context.to_string(),
            next_req: 1,
            stray: Vec::new(),
            pending_out: FrameBatch::new(),
            epoch,
            addr: peer,
            membership,
            held: HashMap::new(),
            auto_reconnect: false,
            op_timeout: None,
            reconnects: 0,
            pins_reasserted: 0,
            recovering: false,
        })
    }

    /// The hello exchange over an already-connected socket.
    /// `prior_epoch` is `Some` on reconnects (the daemon counts them).
    fn handshake(
        mut stream: TcpStream,
        context: &str,
        membership: Option<Membership>,
        prior_epoch: Option<u64>,
    ) -> io::Result<(TcpStream, FrameReader<TcpStream>, u64, u64)> {
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Analysis,
                context: context.to_string(),
                membership,
                epoch: prior_epoch,
            }
            .encode(),
        )?;
        let frame = reader
            .read_frame()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { client_id, epoch } => Ok((stream, reader, client_id, epoch)),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// Enables (or disables) automatic reconnection: when a blocking
    /// call hits a dead connection, DVLib redials with capped
    /// exponential backoff (10 ms doubling to 1 s, for up to 30 s),
    /// re-asserts its held pins through `Reassert`, transparently
    /// re-acquires any the daemon reports gone, and re-sends whatever
    /// request was in flight. Off by default: fail-fast callers (and
    /// the cluster unwind paths) see the raw error.
    pub fn set_auto_reconnect(&mut self, on: bool) {
        self.auto_reconnect = on;
    }

    /// Sets the deadline of blocking calls (`wait`, `bitrep`,
    /// `status`, ...). On expiry they return an
    /// [`io::ErrorKind::TimedOut`] error carrying a [`DvTimeout`] —
    /// unless auto-reconnect is enabled, in which case the timeout
    /// first feeds the reconnect path. `None` (the default) blocks
    /// forever.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        self.op_timeout = timeout;
    }

    /// Successful reconnects over this session's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Pins restored via `Reassert` across all reconnects.
    pub fn pins_reasserted(&self) -> u64 {
        self.pins_reasserted
    }

    /// The daemon's recovery epoch from the latest handshake.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `err` should trigger recovery, and recovery is possible.
    fn try_recover(&mut self, err: &io::Error, op: &'static str) -> bool {
        if !self.auto_reconnect || self.recovering || !is_disconnect(err) {
            return false;
        }
        self.recovering = true;
        let outcome = self.recover_session(op);
        self.recovering = false;
        outcome.is_ok()
    }

    /// Redials the daemon with capped exponential backoff, re-runs the
    /// hello handshake carrying the prior epoch, re-asserts held pins,
    /// and re-acquires the ones the daemon reports gone. The session's
    /// identity (client id, epoch) is replaced on success.
    fn recover_session(&mut self, op: &'static str) -> io::Result<()> {
        let addr = self.addr.ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no address to reconnect to")
        })?;
        let prior_client = self.client_id;
        let prior_epoch = self.epoch;
        // Everything staged or buffered belongs to the dead session:
        // its pins are released by the daemon-side ClientGone (or the
        // crash), so stale releases and stray frames must not leak
        // into the new one.
        self.pending_out.clear();
        self.stray.clear();
        let deadline = Instant::now() + RECONNECT_WINDOW;
        let mut delay = RECONNECT_MIN_DELAY;
        let (stream, reader, client_id, epoch) = loop {
            let attempt = TcpStream::connect_timeout(&addr, RECONNECT_CONNECT_TIMEOUT)
                .and_then(|s| Self::handshake(s, &self.context, self.membership, Some(prior_epoch)));
            match attempt {
                Ok(session) => break session,
                Err(e) => {
                    if Instant::now() + delay >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(RECONNECT_MAX_DELAY);
                }
            }
        };
        self.stream = stream;
        self.reader = reader;
        self.client_id = client_id;
        self.epoch = epoch;
        self.reconnects += 1;
        if self.held.is_empty() {
            return Ok(());
        }
        // Re-assert every held pin count; the daemon transfers what
        // its recovery restored and names what is gone.
        let keys: Vec<u64> = self
            .held
            .iter()
            .flat_map(|(&key, &count)| std::iter::repeat_n(key, count as usize))
            .collect();
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Reassert {
            req_id,
            prior_client,
            prior_epoch,
            keys,
        })?;
        let gone = loop {
            match self.pump_one(Some(RECONNECT_WINDOW))? {
                Some(Response::Reasserted {
                    req_id: r,
                    restored,
                    gone,
                    ..
                }) if r == req_id => {
                    self.pins_reasserted += restored.len() as u64;
                    break gone;
                }
                Some(Response::Error { message }) => return Err(io::Error::other(message)),
                Some(_stray_from_dead_request) => {}
                None => {
                    return Err(DvTimeout {
                        op,
                        after: RECONNECT_WINDOW,
                    }
                    .into_io())
                }
            }
        };
        // Gone pins: the daemon no longer holds them — drop the counts
        // and re-acquire, so the caller's view ("I hold these keys")
        // is true again without its involvement.
        let mut reacquire: Vec<u64> = Vec::new();
        for (key, _reason) in gone {
            if let Some(n) = self.held.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.held.remove(&key);
                }
            }
            reacquire.push(key);
        }
        if !reacquire.is_empty() {
            // Ready responses re-enter `held` through dispatch; keys
            // that now fail outright stay dropped (the daemon named
            // them gone and cannot serve them).
            let _ = self.acquire(&reacquire)?;
        }
        Ok(())
    }

    /// Re-sends the unresolved keys of `req` after a reconnect (the
    /// req_id is client-assigned, so the new daemon instance simply
    /// echoes it and the existing dispatch bookkeeping keeps working).
    fn resend_outstanding(&mut self, req: &AcquireRequest) -> io::Result<()> {
        if req.outstanding.is_empty() {
            return Ok(());
        }
        let keys: Vec<u64> = req.outstanding.iter().copied().collect();
        self.send(&Request::Acquire {
            req_id: req.req_id,
            keys,
        })
    }

    /// The DV-assigned client id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The context this session analyzes.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Sends `req` together with any staged fire-and-forget frames in
    /// one write.
    fn send(&mut self, req: &Request) -> io::Result<()> {
        self.pending_out.push_request(req);
        self.flush_pending()
    }

    /// Stages a fire-and-forget frame to ride the next coalesced write
    /// (how [`DvCluster`] attaches access digests to member traffic).
    fn stage(&mut self, req: &Request) {
        self.pending_out.push_request(req);
    }

    /// Delivers staged frames (if any) in a single write.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending_out.is_empty() {
            return Ok(());
        }
        let result = self.stream.write_all(self.pending_out.as_bytes());
        self.pending_out.clear();
        result
    }

    /// `SIMFS_Acquire_nb`: requests `keys` without blocking.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<AcquireRequest> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Acquire {
            req_id,
            keys: keys.to_vec(),
        })?;
        Ok(AcquireRequest {
            req_id,
            outstanding: keys.iter().copied().collect(),
            status: SimfsStatus::default(),
            queued: HashSet::new(),
        })
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// Processes one incoming frame into the request's bookkeeping.
    fn dispatch(&mut self, req: &mut AcquireRequest, resp: Response) -> io::Result<()> {
        match resp {
            Response::Ready { req_id, key } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.ready.push(key);
                    // A Ready is a pin grant: track it so a reconnect
                    // knows what to re-assert.
                    *self.held.entry(key).or_insert(0) += 1;
                }
            Response::Failed {
                req_id,
                key,
                reason,
            } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.failed.push((key, reason));
                }
            Response::Queued {
                req_id,
                key,
                est_wait_ms,
            } if req_id == req.req_id => {
                req.queued.insert(key);
                req.status.est_wait = Some(Duration::from_millis(est_wait_ms));
            }
            Response::Error { message } => {
                return Err(io::Error::other(message));
            }
            _ => {
                // A frame for a different outstanding request: with one
                // request in flight at a time this cannot happen; with
                // multiple, callers interleave wait() calls and each
                // request sees only its own frames because req_ids
                // differ. Dropping is safe for Queued (informational);
                // Ready/Failed for other requests are re-delivered by
                // the server only once, so multiplexing callers should
                // use waitsome on a merged request instead.
            }
        }
        Ok(())
    }

    /// Receives one response; `timeout: None` blocks, otherwise returns
    /// `Ok(None)` if no complete frame arrives in time. Partial frames
    /// stay buffered in the [`FrameReader`] — a timeout never
    /// desynchronizes the stream.
    fn pump_one(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        // Anything still staged must be on the wire before we wait for
        // responses (a buffered request would deadlock the wait).
        self.flush_pending()?;
        // Drain already-buffered frames without touching the socket (or
        // its timeout configuration).
        if let Some(body) = self.reader.pop_buffered()? {
            return Response::decode(&body).map(Some);
        }
        let Some(t) = timeout else {
            return match self.reader.read_frame()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the session",
                )),
            };
        };
        // Timed probe: exactly one read syscall, so a frame arriving in
        // pieces cannot stretch the wait past one timeout window
        // (read_frame loops and would re-arm the timeout per chunk).
        self.reader.get_ref().set_read_timeout(Some(t))?;
        let result = self.reader.fill_once();
        self.reader.get_ref().set_read_timeout(None)?;
        match result {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the session",
            )),
            Ok(_) => match self.reader.pop_buffered()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Ok(None),
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Next response: strays first, then the socket.
    fn next_response(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        if !self.stray.is_empty() {
            return Ok(Some(self.stray.remove(0)));
        }
        self.pump_one(timeout)
    }

    /// One blocking receive step for `req`, honoring the op timeout
    /// and the reconnect path. Returns `Ok(true)` when a recovery
    /// replaced the session and re-sent the outstanding keys — the
    /// caller must reset its deadline.
    fn pump_for(
        &mut self,
        req: &mut AcquireRequest,
        deadline: Option<Instant>,
        op: &'static str,
    ) -> io::Result<bool> {
        // Probe in bounded chunks so a deadline is honored within
        // ~250 ms even while frames for other requests keep arriving.
        let chunk = deadline.map(|d| {
            d.saturating_duration_since(Instant::now())
                .min(Duration::from_millis(250))
                .max(Duration::from_millis(1))
        });
        match self.next_response(chunk) {
            Ok(Some(resp)) => {
                self.dispatch(req, resp)?;
                Ok(false)
            }
            Ok(None) => {
                let Some(d) = deadline else { return Ok(false) };
                if Instant::now() < d {
                    return Ok(false);
                }
                let err = DvTimeout {
                    op,
                    after: self.op_timeout.unwrap_or_default(),
                }
                .into_io();
                if self.try_recover(&err, op) {
                    self.resend_outstanding(req)?;
                    return Ok(true);
                }
                Err(err)
            }
            Err(e) => {
                if self.try_recover(&e, op) {
                    self.resend_outstanding(req)?;
                    return Ok(true);
                }
                Err(e)
            }
        }
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves (or the
    /// [op timeout](Self::set_op_timeout) expires).
    pub fn wait(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        while !req.done() {
            if self.pump_for(req, deadline, "wait")? {
                deadline = self.op_timeout.map(|t| Instant::now() + t);
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Test`: non-blocking completion probe.
    pub fn test(&mut self, req: &mut AcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        // Drain whatever already arrived.
        while !req.done() {
            match self.next_response(Some(Duration::from_millis(1))) {
                Ok(Some(resp)) => self.dispatch(req, resp)?,
                Ok(None) => break,
                Err(e) => {
                    if self.try_recover(&e, "test") {
                        self.resend_outstanding(req)?;
                        break;
                    }
                    return Err(e);
                }
            }
        }
        Ok((req.done(), req.status.clone()))
    }

    /// `SIMFS_Waitsome`: blocks until at least one more key resolves;
    /// returns the status so far.
    pub fn waitsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let resolved_before = req.status.ready.len() + req.status.failed.len();
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        while !req.done() && req.status.ready.len() + req.status.failed.len() == resolved_before {
            if self.pump_for(req, deadline, "waitsome")? {
                deadline = self.op_timeout.map(|t| Instant::now() + t);
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Testsome`: non-blocking; returns the resolved subset.
    pub fn testsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let (_, status) = self.test(req)?;
        Ok(status)
    }

    /// `SIMFS_Release`: drops this client's pin on `key`. The frame is
    /// staged and coalesced into the next request's write (releases
    /// expect no response); sessions that release and then go idle
    /// should call [`flush`](Self::flush) to push the pin drop out
    /// immediately.
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        if let Some(n) = self.held.get_mut(&key) {
            *n -= 1;
            if *n == 0 {
                self.held.remove(&key);
            }
        }
        self.pending_out.push_request(&Request::Release { key });
        // Cap the staging buffer: a pathological release-only loop
        // still reaches the daemon in bounded batches.
        if self.pending_out.as_bytes().len() >= 16 * 1024 {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Delivers any staged fire-and-forget frames now.
    pub fn flush(&mut self) -> io::Result<()> {
        self.flush_pending()
    }

    /// Sends a request and blocks for the response that resolves it,
    /// honoring the op timeout and the reconnect path (recovery simply
    /// re-sends `req` — req_ids are client-assigned, so the new daemon
    /// instance echoes the same one and `matcher` keeps working).
    fn call<T>(
        &mut self,
        op: &'static str,
        req: &Request,
        mut matcher: impl FnMut(Response) -> io::Result<CallStep<T>>,
    ) -> io::Result<T> {
        let mut deadline = self.op_timeout.map(|t| Instant::now() + t);
        if let Err(e) = self.send(req) {
            if !self.try_recover(&e, op) {
                return Err(e);
            }
            self.send(req)?;
            deadline = self.op_timeout.map(|t| Instant::now() + t);
        }
        loop {
            let chunk = deadline.map(|d| {
                d.saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(250))
                    .max(Duration::from_millis(1))
            });
            match self.pump_one(chunk) {
                Ok(Some(resp)) => match matcher(resp)? {
                    CallStep::Done(value) => return Ok(value),
                    CallStep::Stray(other) => self.stray.push(other),
                },
                Ok(None) => {
                    let Some(d) = deadline else { continue };
                    if Instant::now() < d {
                        continue;
                    }
                    let err = DvTimeout {
                        op,
                        after: self.op_timeout.unwrap_or_default(),
                    }
                    .into_io();
                    if !self.try_recover(&err, op) {
                        return Err(err);
                    }
                    self.send(req)?;
                    deadline = self.op_timeout.map(|t| Instant::now() + t);
                }
                Err(e) => {
                    if !self.try_recover(&e, op) {
                        return Err(e);
                    }
                    self.send(req)?;
                    deadline = self.op_timeout.map(|t| Instant::now() + t);
                }
            }
        }
    }

    /// `SIMFS_Bitrep`: checks the materialized file against the
    /// recorded checksum of the initial simulation. `Ok(None)` when no
    /// checksum was recorded for this key.
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.call("bitrep", &Request::Bitrep { req_id, key }, |resp| match resp {
            Response::BitrepResult {
                req_id: r,
                matches,
                known,
                ..
            } if r == req_id => Ok(CallStep::Done(known.then_some(matches))),
            Response::Failed { req_id: r, reason, .. } if r == req_id => {
                Err(io::Error::other(reason))
            }
            Response::Error { message } => Err(io::Error::other(message)),
            other => Ok(CallStep::Stray(other)),
        })
    }

    /// Queries the context's runtime statistics (the profiling support
    /// the status API provides, §III-C).
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.call("status", &Request::Status { req_id }, |resp| match resp {
            Response::StatusInfo {
                req_id: r,
                hits,
                misses,
                restarts,
                produced_steps,
                active_sims,
            } if r == req_id => Ok(CallStep::Done(ContextStats {
                hits,
                misses,
                restarts,
                produced_steps,
                active_sims,
            })),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Ok(CallStep::Stray(other)),
        })
    }

    /// `SIMFS_Finalize`: orderly goodbye; the DV releases this client's
    /// pins and kills its idle prefetches. The daemon closes the
    /// connection once the `Bye` is processed.
    pub fn finalize(mut self) -> io::Result<()> {
        self.send(&Request::Bye)
    }

    /// Closes the session without the `Bye` handshake, after delivering
    /// any staged `Release` frames. The daemon maps the resulting
    /// hangup to `ClientGone` exactly as for a plain drop — but the
    /// staged releases reach it first, so its pin counts drain through
    /// the normal path instead of the disconnect GC.
    pub fn close(mut self) -> io::Result<()> {
        self.flush_pending()
    }
}

impl Drop for SimfsClient {
    fn drop(&mut self) {
        // Best-effort: `Release` frames staged for write-coalescing
        // must not die in the buffer — a dropped session with staged
        // releases would otherwise strand daemon-side pins until the
        // hangup-driven `ClientGone` GC runs. Errors are ignored; the
        // socket is going away either way and `ClientGone` remains the
        // backstop.
        let _ = self.flush_pending();
    }
}

/// Runtime statistics of a simulation context, as reported by the DV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextStats {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses so far.
    pub misses: u64,
    /// Re-simulations launched.
    pub restarts: u64,
    /// Output steps produced.
    pub produced_steps: u64,
    /// Currently running re-simulations.
    pub active_sims: u64,
}

/// Handle for a non-blocking acquire spanning a [`DvCluster`]: one
/// member-local [`AcquireRequest`] per daemon that received keys.
#[derive(Debug)]
pub struct ClusterAcquireRequest {
    /// Indexed by cluster member; `None` where no keys routed.
    parts: Vec<Option<AcquireRequest>>,
    /// The requested keys in request order, with the acquire-time
    /// epoch: the digest observation of this request, recorded into
    /// the member logs only once the request resolves — at which point
    /// the per-key `Queued` responses reveal which epochs were true
    /// ready points.
    keys: Vec<u64>,
    epoch: u64,
    /// Observation already recorded (guards double-recording when both
    /// `test` and `wait` see the request complete).
    observed: bool,
}

impl ClusterAcquireRequest {
    /// Keys still pending across all members.
    pub fn outstanding(&self) -> usize {
        self.parts.iter().flatten().map(AcquireRequest::outstanding).sum()
    }

    /// True once every key resolved (ready or failed) on every member.
    pub fn done(&self) -> bool {
        self.parts.iter().flatten().all(AcquireRequest::done)
    }

    /// Merged status across the members so far.
    fn merged(&self) -> SimfsStatus {
        let mut status = SimfsStatus::default();
        for part in self.parts.iter().flatten() {
            status.ready.extend_from_slice(&part.status.ready);
            status.failed.extend_from_slice(part.status.failed.as_slice());
            status.est_wait = match (status.est_wait, part.status.est_wait) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        status
    }
}

/// An analysis session spanning a cluster of DV daemons (§III scaled
/// out): daemon `k` of `K` owns the restart intervals with
/// `interval % K == k`, so every request routes to exactly one member —
/// by the same interval-granularity hash [`crate::dv::DvRouter`] uses
/// for intra-process shards (raw `key % K` would scatter each
/// re-simulation's claims, waiters and productions across daemons).
/// Each member connection is a full [`SimfsClient`], so the
/// write-coalescing of fire-and-forget `Release` frames applies
/// per-daemon unchanged.
///
/// The API mirrors [`SimfsClient`]; multi-key acquires are split by
/// owning member and merged back into one [`SimfsStatus`].
///
/// # Access-stream digests
///
/// Routing splits the stream: each member daemon sees only the keys of
/// the intervals it owns, so its prefetch agents — which need the full
/// sequence to detect direction and cadence — would observe a
/// subsequence full of artificial jumps. The cluster therefore records
/// its **full pre-routing access stream** into one bounded lossy
/// [`AccessLog`] per member and forwards each member's copy as a
/// fire-and-forget `AccessDigest` frame riding that member's next
/// coalesced write. Members told at hello time that they are clustered
/// ignore their local (post-routing) view and observe the forwarded
/// stream instead. Overflows degrade to counted drops, never blocking
/// or unbounded memory; a single-daemon "cluster" skips forwarding —
/// its local view already is the full stream.
pub struct DvCluster {
    members: Vec<SimfsClient>,
    router: DvRouter,
    /// Per-member copy of the full pre-routing access stream, drained
    /// into an `AccessDigest` on that member's next coalesced write.
    logs: Vec<AccessLog>,
    /// Clock for record epochs (client-side; only gaps carry meaning).
    epoch: Instant,
    /// Reused drain buffer.
    drain_scratch: Vec<AccessRecord>,
}

impl DvCluster {
    /// Connects to every daemon of the cluster, in member order.
    /// `steps` must match the context's step math on the daemons —
    /// it is what both sides hash intervals with; the hello handshake
    /// carries `(index, size, config_hash(steps))` so a daemon whose
    /// position or cadence disagrees rejects the session immediately.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn connect<A: ToSocketAddrs>(
        addrs: &[A],
        context: &str,
        steps: StepMath,
    ) -> io::Result<DvCluster> {
        assert!(!addrs.is_empty(), "a cluster needs at least one daemon");
        let size = addrs.len() as u32;
        let steps_hash = steps.config_hash();
        let members = addrs
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                SimfsClient::connect_with(
                    addr,
                    context,
                    Some(Membership {
                        index: index as u32,
                        size,
                        steps_hash,
                    }),
                )
            })
            .collect::<io::Result<Vec<_>>>()?;
        let router = DvRouter::new(steps, size);
        let logs = (0..members.len())
            .map(|_| AccessLog::new(ACCESS_LOG_CAPACITY))
            .collect();
        Ok(DvCluster {
            members,
            router,
            logs,
            epoch: Instant::now(),
            drain_scratch: Vec::new(),
        })
    }

    /// Records a *resolved* request's accesses (in request order, at
    /// their acquire-time epoch) into every member's digest log.
    /// Deferred to resolution so the per-key `Queued` responses can
    /// mark which epochs were true ready points — a blocked key's
    /// following gap is production wait, not consumption, and must not
    /// be sampled into tau_cli (the same rule the daemon applies to
    /// its local records). Overlapping non-blocking requests may
    /// record out of resolution order; replay skips the resulting
    /// non-positive gaps, so disorder degrades sampling, never
    /// corrupts it. No-op for single-member clusters: the one daemon's
    /// local view already is the full stream.
    fn observe_resolved(&mut self, req: &mut ClusterAcquireRequest) {
        if self.members.len() <= 1 || req.observed {
            return;
        }
        req.observed = true;
        for &key in &req.keys {
            let ready = !req
                .parts
                .iter()
                .flatten()
                .any(|part| part.queued.contains(&key));
            for log in &mut self.logs {
                // The member daemon attributes records to its own
                // session client id; the field here is a placeholder.
                log.push(AccessRecord {
                    client: 0,
                    key,
                    epoch: req.epoch,
                    ready,
                });
            }
        }
    }

    /// Stages member `m`'s pending digest (if any) to ride its next
    /// coalesced write.
    fn stage_digest(&mut self, m: usize) {
        if self.members.len() <= 1 {
            return;
        }
        let log = &mut self.logs[m];
        if log.is_empty() && log.dropped() == 0 {
            return;
        }
        self.drain_scratch.clear();
        let dropped = log.drain_into(&mut self.drain_scratch);
        let records = self
            .drain_scratch
            .iter()
            .map(|r| (r.key, r.epoch, r.ready))
            .collect();
        self.members[m].stage(&Request::AccessDigest { dropped, records });
    }

    /// Number of daemons in the cluster.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// Fans [`SimfsClient::set_auto_reconnect`] out to every member:
    /// a member daemon that dies and comes back (e.g. restarted with
    /// `--recover`) is redialed and its pins re-asserted instead of
    /// failing the whole cluster session.
    pub fn set_auto_reconnect(&mut self, on: bool) {
        for member in &mut self.members {
            member.set_auto_reconnect(on);
        }
    }

    /// Fans [`SimfsClient::set_op_timeout`] out to every member.
    pub fn set_op_timeout(&mut self, timeout: Option<Duration>) {
        for member in &mut self.members {
            member.set_op_timeout(timeout);
        }
    }

    /// Successful reconnects summed over every member.
    pub fn reconnects(&self) -> u64 {
        self.members.iter().map(SimfsClient::reconnects).sum()
    }

    /// Pins restored via `Reassert` summed over every member.
    pub fn pins_reasserted(&self) -> u64 {
        self.members.iter().map(SimfsClient::pins_reasserted).sum()
    }

    /// The member owning `key`'s restart interval.
    pub fn member_of(&self, key: u64) -> usize {
        self.router.shard_of_key(key)
    }

    /// `SIMFS_Acquire_nb` across the cluster: each member receives the
    /// keys it owns in one request.
    ///
    /// On a partial failure (a member's daemon died mid-send) the
    /// members that already took their subset are unwound — their
    /// requests waited out and every key that became ready released —
    /// before the error is returned. Without that, the orphaned
    /// `Ready` frames would be dropped by later requests' dispatch and
    /// the pins would survive on the healthy daemons until the whole
    /// session's teardown.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<ClusterAcquireRequest> {
        // The digest records the *pre-routing* stream — every member's
        // agents must see the whole trajectory, not the interval
        // subsequence the split below sends them. The observation is
        // stamped now (acquire time) but recorded into the member logs
        // only when the request resolves, once the Queued responses
        // have revealed which keys blocked (see `observe_resolved`).
        let epoch = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut per_member: Vec<Vec<u64>> = vec![Vec::new(); self.members.len()];
        for &key in keys {
            per_member[self.member_of(key)].push(key);
        }
        let mut parts: Vec<Option<AcquireRequest>> = Vec::with_capacity(self.members.len());
        for (i, keys) in per_member.iter().enumerate() {
            if keys.is_empty() {
                parts.push(None);
                continue;
            }
            // The member's digest rides in front of its acquire, in the
            // same write: observation reaches it no later than the keys
            // it will serve.
            self.stage_digest(i);
            match self.members[i].acquire_nb(keys) {
                Ok(part) => parts.push(Some(part)),
                Err(e) => {
                    for (member, part) in self.members.iter_mut().zip(&mut parts) {
                        let Some(part) = part else { continue };
                        if member.wait(part).is_ok() {
                            for key in part.status.ready.clone() {
                                let _ = member.release(key);
                            }
                            let _ = member.flush();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(ClusterAcquireRequest {
            parts,
            keys: keys.to_vec(),
            epoch,
            observed: false,
        })
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves on every
    /// member (members resolve independently, so waiting them out one
    /// at a time loses no concurrency — each daemon keeps producing
    /// while another is being drained).
    ///
    /// If any member fails, the others are still waited out and every
    /// key this request acquired is released before the error returns
    /// — an erroring `wait` means the caller treats the whole acquire
    /// as failed and will never release, so the cluster must not leave
    /// its pins behind on the healthy daemons (the same unwind
    /// [`acquire_nb`](Self::acquire_nb) applies to partial sends).
    pub fn wait(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<SimfsStatus> {
        let mut first_err: Option<io::Error> = None;
        for (member, part) in self.members.iter_mut().zip(&mut req.parts) {
            let Some(part) = part else { continue };
            if let Err(e) = member.wait(part) {
                // Keep draining the remaining members: their requests
                // are already in flight and abandoning them would
                // strand whatever they pin.
                first_err.get_or_insert(e);
            }
        }
        let Some(err) = first_err else {
            self.observe_resolved(req);
            return Ok(req.merged());
        };
        for (member, part) in self.members.iter_mut().zip(&req.parts) {
            let Some(part) = part else { continue };
            for &key in &part.status.ready {
                let _ = member.release(key);
            }
            let _ = member.flush();
        }
        Err(err)
    }

    /// `SIMFS_Test`: non-blocking completion probe over all members.
    ///
    /// A member error gets the same unwind as [`wait`](Self::wait): the
    /// remaining members are still probed, and every key this request
    /// already acquired is released before the error returns — an
    /// erroring probe means the caller treats the whole acquire as
    /// failed and will never release, so the pins must not survive on
    /// the healthy daemons.
    pub fn test(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        let mut first_err: Option<io::Error> = None;
        for (member, part) in self.members.iter_mut().zip(&mut req.parts) {
            let Some(part) = part else { continue };
            if let Err(e) = member.test(part) {
                first_err.get_or_insert(e);
            }
        }
        let Some(err) = first_err else {
            if req.done() {
                self.observe_resolved(req);
            }
            return Ok((req.done(), req.merged()));
        };
        for (member, part) in self.members.iter_mut().zip(&req.parts) {
            let Some(part) = part else { continue };
            for &key in &part.status.ready {
                let _ = member.release(key);
            }
            let _ = member.flush();
        }
        Err(err)
    }

    /// `SIMFS_Release`: staged for write-coalescing on the owning
    /// member's connection (any pending digest for that member is
    /// staged ahead of it).
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        let member = self.member_of(key);
        self.stage_digest(member);
        self.members[member].release(key)
    }

    /// Delivers staged fire-and-forget frames on every member now.
    pub fn flush(&mut self) -> io::Result<()> {
        for member in &mut self.members {
            member.flush()?;
        }
        Ok(())
    }

    /// `SIMFS_Bitrep` on the member owning `key`.
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let member = self.member_of(key);
        self.members[member].bitrep(key)
    }

    /// Context statistics summed over every member (each daemon counts
    /// only the traffic of the intervals it owns).
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let mut total = ContextStats {
            hits: 0,
            misses: 0,
            restarts: 0,
            produced_steps: 0,
            active_sims: 0,
        };
        for member in &mut self.members {
            let s = member.status()?;
            total.hits += s.hits;
            total.misses += s.misses;
            total.restarts += s.restarts;
            total.produced_steps += s.produced_steps;
            total.active_sims += s.active_sims;
        }
        Ok(total)
    }

    /// `SIMFS_Finalize` fanned out: an orderly goodbye to every daemon
    /// in the cluster, so each releases this client's pins. The first
    /// error is reported after all members were attempted (a failed
    /// goodbye must not strand pins on the remaining daemons — their
    /// sockets still close, mapping to `ClientGone`).
    pub fn finalize(self) -> io::Result<()> {
        let mut result = Ok(());
        for member in self.members {
            let r = member.finalize();
            if result.is_ok() {
                result = r;
            }
        }
        result
    }
}

/// The simulator side of the protocol: what a launched re-simulation
/// reports as it runs (used by the `simfs-simd` binary).
pub struct SimulatorSession {
    stream: TcpStream,
}

impl SimulatorSession {
    /// Connects a re-simulation identified by `sim_id` (from the job
    /// environment) to the daemon.
    pub fn connect(
        addr: impl ToSocketAddrs,
        context: &str,
        sim_id: u64,
    ) -> io::Result<SimulatorSession> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Simulator { sim_id },
                context: context.to_string(),
                membership: None,
                epoch: None,
            }
            .encode(),
        )?;
        let frame = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { .. } => Ok(SimulatorSession { stream }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// Restart loaded; production begins (ends the `alpha_sim` phase).
    pub fn started(&mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimStarted.encode())
    }

    /// One output step was published (the intercepted `close`, Fig. 4
    /// step 4).
    pub fn file_produced(&mut self, key: u64, size: u64) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::FileProduced { key, size }.encode())
    }

    /// The assigned range is complete.
    pub fn finished(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimFinished.encode())
    }
}
