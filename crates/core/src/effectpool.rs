//! The effect-execution tier: helper threads that own every blocking
//! operation the daemon's `Effects` outbox used to perform inline on
//! reactor shard threads.
//!
//! # Why a tier, not a thread pool
//!
//! The daemon's premise (and the paper's, §III) is that hits are served
//! at memory speed while misses ride the re-simulation machinery. But an
//! effect executed *inline* on a reactor shard — a `fork` in the
//! launcher, an eviction `unlink`, a WAL `fdatasync`, a storage-area
//! read for Bitrep — stalls every connection multiplexed onto that
//! shard for the effect's full duration: head-of-line blocking of the
//! hit path behind the miss path. This module gives effects their own
//! execution tier so a shard thread never waits on disk or the process
//! table.
//!
//! # Shape
//!
//! * **One bounded FIFO queue per reactor shard.** All effects collected
//!   on shard *s* are submitted to queue *s*, so the submission order of
//!   any one connection (which lives on exactly one shard) is preserved.
//! * **Static queue→helper assignment.** Helper *h* of *H* drains
//!   exactly the queues `q` with `q % H == h`; a queue is never served
//!   by two helpers, so per-queue FIFO is an execution order, not just a
//!   submission order. Simulator protocol events (`FileProduced` before
//!   `SimFinished`) therefore apply in wire order.
//! * **Batch drain.** A helper pops up to [`BATCH`] jobs per queue visit
//!   and hands them to the executor *as one batch*, which is what lets
//!   the server fold many WAL appends into one group fsync.
//! * **Backpressure, not drops.** A submitter finding its queue full
//!   parks on the queue's condvar until a helper makes space. This
//!   cannot deadlock: helpers never submit (the server executes nested
//!   effects inline on helper threads, which are blocking-permitted), so
//!   drain always makes progress.
//! * **Eventfd parking.** Helpers park in a blocking semaphore-mode
//!   eventfd read ([`crate::sys::SemaphoreFd`]); each submission posts
//!   one permit. Completions travel back to the reactor through the
//!   existing per-shard inbox + eventfd wakeup (`Reactor::send_bytes`),
//!   so the reactor needs no new wakeup plumbing.
//!
//! # Locking
//!
//! The per-queue mutex is the `effect-queue` row in
//! `crates/core/LOCKS.md` (level 50, blocking allowed — the submitter's
//! condvar park happens under it). It is acquired with no other
//! documented lock held, on both the submit and the drain side, and is
//! released before the executor runs a batch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use simkit::lockrank;

use crate::sys::SemaphoreFd;

/// Max jobs a helper pops from one queue per visit — the group-fsync
/// window: every WAL append in a batch shares one `fdatasync`.
pub const BATCH: usize = 32;

struct Queue<J> {
    slots: Mutex<VecDeque<J>>,
    /// Signaled by the draining helper whenever it frees space, waking
    /// submitters parked on a full queue.
    space: Condvar,
}

/// The helper pool. `J` is the job type; the pool is pure mechanism
/// (queues, threads, backpressure, ordering) and the `exec` callback
/// supplied at construction is the policy (what a batch of jobs *does*).
pub struct EffectPool<J: Send + 'static> {
    queues: Arc<Vec<Queue<J>>>,
    wakeups: Vec<Arc<SemaphoreFd>>,
    helpers: Mutex<Vec<JoinHandle<()>>>,
    shutdown: Arc<AtomicBool>,
    cap: usize,
}

impl<J: Send + 'static> EffectPool<J> {
    /// Starts `helpers` helper threads serving `shards` bounded queues
    /// of capacity `cap`. `exec` receives each drained batch (1..=[`BATCH`]
    /// jobs from a single queue, in submission order) on a helper
    /// thread, where blocking is permitted.
    pub fn start(
        shards: usize,
        helpers: usize,
        cap: usize,
        exec: Arc<dyn Fn(Vec<J>) + Send + Sync>,
    ) -> std::io::Result<EffectPool<J>> {
        assert!(shards >= 1 && helpers >= 1 && cap >= 1);
        let queues: Arc<Vec<Queue<J>>> = Arc::new(
            (0..shards)
                .map(|_| Queue { slots: Mutex::new(VecDeque::new()), space: Condvar::new() })
                .collect(),
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut wakeups = Vec::with_capacity(helpers);
        let mut handles = Vec::with_capacity(helpers);
        for h in 0..helpers {
            let wake = Arc::new(SemaphoreFd::new()?);
            wakeups.push(wake.clone());
            let queues = queues.clone();
            let shutdown = shutdown.clone();
            let exec = exec.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("dv-effect-{h}"))
                    .spawn(move || run_helper(h, helpers, &queues, &wake, &shutdown, &exec))?,
            );
        }
        Ok(EffectPool {
            queues,
            wakeups,
            helpers: Mutex::new(handles),
            shutdown,
            cap,
        })
    }

    /// Enqueues `job` on `queue` (a reactor shard index), parking until
    /// space is available if the queue is at capacity. Returns `true`
    /// if the submitter had to park (the `helper_queue_full` signal).
    ///
    /// FIFO per queue; never drops a job.
    pub fn submit(&self, queue: usize, job: J) -> bool {
        let q = &self.queues[queue % self.queues.len()];
        let _rank = lockrank::held(lockrank::EFFECT_QUEUE);
        let mut slots = q.slots.lock().unwrap();
        let mut waited = false;
        while slots.len() >= self.cap && !self.shutdown.load(Ordering::Acquire) {
            waited = true;
            slots = q.space.wait(slots).unwrap();
        }
        slots.push_back(job);
        drop(slots);
        self.wakeups[queue % self.wakeups.len()].post(1);
        waited
    }

    /// Jobs currently queued across all shards (diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.queues
            .iter()
            .map(|q| {
                let _rank = lockrank::held(lockrank::EFFECT_QUEUE);
                q.slots.lock().unwrap().len()
            })
            .sum()
    }

    /// Drains every queue and joins the helpers. Pending jobs are
    /// executed, not dropped. Callers must stop submitting first (the
    /// daemon joins its reactor threads before calling this).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        for q in self.queues.iter() {
            q.space.notify_all();
        }
        for w in &self.wakeups {
            w.post(1);
        }
        let mut handles = self.helpers.lock().unwrap();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn run_helper<J: Send>(
    helper: usize,
    helpers: usize,
    queues: &[Queue<J>],
    wake: &SemaphoreFd,
    shutdown: &AtomicBool,
    exec: &Arc<dyn Fn(Vec<J>) + Send + Sync>,
) {
    loop {
        if !wake.acquire() {
            // fd error: only possible mid-teardown; fall through to the
            // drain-and-exit path below.
            shutdown.store(true, Ordering::Release);
        }
        // Serve owned queues round-robin until all are empty. Extra
        // permits (a batch pop covers several submissions) just produce
        // a cheap empty scan.
        loop {
            let mut drained = false;
            for qi in (helper..queues.len()).step_by(helpers) {
                let q = &queues[qi];
                let batch: Vec<J> = {
                    let _rank = lockrank::held(lockrank::EFFECT_QUEUE);
                    let mut slots = q.slots.lock().unwrap();
                    let n = slots.len().min(BATCH);
                    slots.drain(..n).collect()
                };
                if batch.is_empty() {
                    continue;
                }
                drained = true;
                q.space.notify_all();
                exec(batch);
            }
            if !drained {
                break;
            }
        }
        if shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn per_queue_fifo_is_preserved_across_batches() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let pool = EffectPool::start(
            2,
            1,
            1024,
            Arc::new(move |batch: Vec<u64>| sink.lock().unwrap().extend(batch)),
        )
        .unwrap();
        for i in 0..500u64 {
            pool.submit(0, i);
        }
        pool.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_parks_submitter_and_drops_nothing() {
        let done = Arc::new(AtomicUsize::new(0));
        let sink = done.clone();
        let pool = EffectPool::start(
            1,
            1,
            2,
            Arc::new(move |batch: Vec<u64>| {
                // Slow consumer: force the tiny queue to fill.
                std::thread::sleep(Duration::from_millis(2));
                sink.fetch_add(batch.len(), Ordering::Relaxed);
            }),
        )
        .unwrap();
        let mut parked = 0;
        for i in 0..64u64 {
            if pool.submit(0, i) {
                parked += 1;
            }
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 64, "every job must execute");
        assert!(parked > 0, "a capacity-2 queue must have filled at least once");
    }

    #[test]
    fn shutdown_executes_pending_jobs() {
        let done = Arc::new(AtomicUsize::new(0));
        let sink = done.clone();
        let gate = Arc::new(Mutex::new(()));
        let hold = gate.lock().unwrap();
        let gate2 = gate.clone();
        let pool = EffectPool::start(
            4,
            2,
            1024,
            Arc::new(move |batch: Vec<u64>| {
                let _g = gate2.lock().unwrap();
                sink.fetch_add(batch.len(), Ordering::Relaxed);
            }),
        )
        .unwrap();
        for i in 0..40u64 {
            pool.submit(i as usize % 4, i);
        }
        // Helpers are blocked on the gate with jobs still queued;
        // shutdown must wait for them, not drop them.
        drop(hold);
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 40);
        assert_eq!(pool.pending(), 0);
    }
}
