//! Multi-daemon cluster integration tests: K daemon processes (here:
//! K `DvServer`s in one process, each with its own listener, reactor
//! and launcher) composing into one logical control plane, driven
//! through DVLib's [`DvCluster`] routing tier.

use simbatch::ParallelismMap;
use simfs_core::client::{DvCluster, SimfsClient};
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::dv::ClusterMember;
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{DurabilityCfg, DvServer, ServerConfig, ThreadSimLauncher};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

/// B = 4, N = 64 — the same timeline the daemon tests use.
fn steps() -> StepMath {
    StepMath::new(1, 4, 64)
}

/// Starts one cluster member (or, with `ClusterMember::SOLO`, the
/// unsharded reference daemon) over `dir`. Prefetch off by default —
/// the deterministic configuration the equivalence tests pin; the
/// digest tests opt in via [`start_member_prefetch`].
fn start_member(
    dir: &std::path::Path,
    member: ClusterMember,
    cache_steps: u64,
    smax: u32,
    dv_shards: u32,
) -> (DvServer, StorageArea) {
    start_member_prefetch(dir, member, cache_steps, smax, dv_shards, false)
}

/// [`start_member`] with an explicit prefetch switch.
fn start_member_prefetch(
    dir: &std::path::Path,
    member: ClusterMember,
    cache_steps: u64,
    smax: u32,
    dv_shards: u32,
    prefetch: bool,
) -> (DvServer, StorageArea) {
    start_member_cfg(
        dir,
        member,
        cache_steps,
        smax,
        dv_shards,
        prefetch,
        "127.0.0.1:0",
        DurabilityCfg::default(),
    )
    .unwrap()
}

/// The fully general member constructor: explicit listen address and
/// durability, fallible (the kill-9 worker retries bind races).
#[allow(clippy::too_many_arguments)]
fn start_member_cfg(
    dir: &std::path::Path,
    member: ClusterMember,
    cache_steps: u64,
    smax: u32,
    dv_shards: u32,
    prefetch: bool,
    listen: &str,
    durability: DurabilityCfg,
) -> std::io::Result<(DvServer, StorageArea)> {
    let storage = StorageArea::create(dir, u64::MAX)?;
    let size = step_bytes(1).len() as u64;
    let ctx = ContextCfg::new("test-ctx", steps(), size, cache_steps * size)
        .with_policy("lru")
        .with_smax(smax)
        .with_prefetch(prefetch);
    let launcher = Arc::new(ThreadSimLauncher::new(
        step_bytes,
        |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
        Duration::from_millis(3),
        Duration::from_millis(1),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: Arc::new(
                PatternDriver::new("out-", ".sdf", 6)
                    .with_parallelism(ParallelismMap::unconstrained(1, 2)),
            ),
            storage: storage.clone(),
            launcher,
            checksums: HashMap::new(),
            dv_shards,
            cluster: member,
            durability,
        },
        listen,
    )?;
    Ok((server, storage))
}

/// K members over one shared storage area (the paper's layout: one
/// parallel-FS directory, many control-plane daemons).
fn start_cluster(
    tag: &str,
    k: u32,
    cache_steps: u64,
    smax: u32,
    dv_shards: u32,
) -> (Vec<DvServer>, StorageArea, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "simfs-cluster-{}-{}-{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut servers = Vec::new();
    let mut storage = None;
    for index in 0..k {
        let (server, s) =
            start_member(&dir, ClusterMember::new(index, k), cache_steps, smax, dv_shards);
        servers.push(server);
        storage.get_or_insert(s);
    }
    (servers, storage.unwrap(), dir)
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// The cluster ≡ single-daemon contract, end to end over real sockets:
/// the same deterministic request sequence driven through a 3-daemon
/// cluster (via [`DvCluster`]) and through one unsharded daemon (via
/// [`SimfsClient`]) must produce identical client-visible outcomes —
/// per-request ready/failed sets and, after quiescence, identical
/// hit/miss/restart/production totals. This is the wire-level mirror of
/// the `ShardedDv` equivalence property tests.
#[test]
fn three_daemon_cluster_matches_single_daemon() {
    // Big cache (no evictions on either side) keeps the outcome
    // deterministic; smax 6 gives each member a slice of 2.
    // Two local DV shards per member: the cluster tier and the
    // intra-process tier compose (member k's local shard s is flat
    // shard s*3 + k of the 6-way split).
    let (cluster, _cstorage, cdir) = start_cluster("eq", 3, 1000, 6, 2);
    let sdir = std::env::temp_dir().join(format!("simfs-cluster-eq-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sdir);
    let (single, _sstorage) = start_member(&sdir, ClusterMember::SOLO, 1000, 6, 1);

    let addrs: Vec<SocketAddr> = cluster.iter().map(DvServer::addr).collect();
    let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();
    assert_eq!(cc.members(), 3);
    let mut sc = SimfsClient::connect(single.addr(), "test-ctx").unwrap();

    // A fixed op sequence touching every member: misses, hits on
    // already-materialized keys, a multi-key acquire spanning all
    // members, an invalid key, releases (write-coalesced on the member
    // connections). Keys are only re-touched once their interval is
    // fully settled by a prior blocking acquire of the same key, so
    // hit/miss classification is timing-independent.
    enum Op {
        Acquire(&'static [u64]),
        Release(u64),
    }
    let ops = [
        Op::Acquire(&[6]),
        Op::Acquire(&[2]),
        Op::Release(2),
        Op::Release(6),
        Op::Acquire(&[6]),
        Op::Acquire(&[2, 6, 10, 14]),
        Op::Acquire(&[9999]),
        Op::Acquire(&[33]),
        Op::Acquire(&[64]),
    ];
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Acquire(keys) => {
                let got = cc.acquire(keys).unwrap();
                let want = sc.acquire(keys).unwrap();
                assert_eq!(
                    sorted(got.ready.clone()),
                    sorted(want.ready.clone()),
                    "op {i}: ready sets diverge"
                );
                let got_failed: Vec<u64> = got.failed.iter().map(|(k, _)| *k).collect();
                let want_failed: Vec<u64> = want.failed.iter().map(|(k, _)| *k).collect();
                assert_eq!(
                    sorted(got_failed),
                    sorted(want_failed),
                    "op {i}: failed sets diverge"
                );
            }
            Op::Release(key) => {
                cc.release(*key).unwrap();
                sc.release(*key).unwrap();
            }
        }
    }
    cc.flush().unwrap();
    sc.flush().unwrap();

    // Quiesce: six launches (for keys 6, 2, 10, 14, 33, 64); the first
    // five produce their whole 4-step interval, while 64 is a boundary
    // key that re-simulates only itself (§II-A restart dump).
    const EXPECT_PRODUCED: u64 = 5 * 4 + 1;
    let deadline = Instant::now() + Duration::from_secs(15);
    let (mut cs, mut ss) = (cc.status().unwrap(), sc.status().unwrap());
    while (cs.produced_steps, cs.active_sims, ss.produced_steps, ss.active_sims)
        != (EXPECT_PRODUCED, 0, EXPECT_PRODUCED, 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
        cs = cc.status().unwrap();
        ss = sc.status().unwrap();
    }
    assert_eq!(cs.restarts, ss.restarts, "cluster {cs:?} vs single {ss:?}");
    assert_eq!(cs.produced_steps, EXPECT_PRODUCED, "cluster never quiesced: {cs:?}");
    assert_eq!(ss.produced_steps, EXPECT_PRODUCED, "single never quiesced: {ss:?}");
    assert_eq!(cs.hits, ss.hits, "cluster {cs:?} vs single {ss:?}");
    assert_eq!(cs.misses, ss.misses, "cluster {cs:?} vs single {ss:?}");

    cc.finalize().unwrap();
    sc.finalize().unwrap();
    for server in &cluster {
        server.shutdown();
    }
    single.shutdown();
    drop(cluster);
    drop(single);
    let _ = std::fs::remove_dir_all(&cdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// Client teardown fans out: a [`DvCluster`] dropped without finalize
/// closes every member connection, so each daemon runs `ClientGone`
/// and releases this client's pins — including fast-path pins held in
/// reactor-thread-local state.
#[test]
fn cluster_teardown_fans_out_to_every_member() {
    let (cluster, _storage, dir) = start_cluster("teardown", 3, 1000, 6, 2);
    let addrs: Vec<SocketAddr> = cluster.iter().map(DvServer::addr).collect();
    // Keys 2, 6, 10 live on members 0, 1, 2 respectively.
    let keys = [2u64, 6, 10];
    {
        let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();
        let status = cc.acquire(&keys).unwrap();
        assert!(status.ok(), "{status:?}");
        for &k in &keys {
            cc.release(k).unwrap();
        }
        cc.flush().unwrap();
        // Re-acquire: now warm, so every member grants a *fast* pin to
        // this client's connection.
        let status = cc.acquire(&keys).unwrap();
        assert!(status.ok(), "{status:?}");
        for (member, &key) in cluster.iter().zip(&keys) {
            assert_eq!(
                member.fast_pinned("test-ctx", key),
                Some(true),
                "member should hold a fast pin on {key}"
            );
        }
        // Dropped here without finalize: teardown must reach all three.
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    for (member, &key) in cluster.iter().zip(&keys) {
        while member.fast_pinned("test-ctx", key) == Some(true) {
            assert!(
                Instant::now() < deadline,
                "member never released the departed client's pin on {key}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(member.fast_pinned("test-ctx", key), Some(false));
    }
    for server in &cluster {
        server.shutdown();
    }
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cluster member refuses keys whose interval another daemon owns:
/// accepting them would double-produce the interval under the wrong
/// budget slice. (DVLib never sends them; this pins the guard against
/// misrouting clients.)
#[test]
fn member_rejects_foreign_interval() {
    let dir = std::env::temp_dir().join(format!(
        "simfs-cluster-foreign-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Member 1 of 3: owns intervals 1, 4, 7, ... — not key 2's interval 0.
    let (server, storage) = start_member(&dir, ClusterMember::new(1, 3), 1000, 6, 2);
    let mut client = SimfsClient::connect(server.addr(), "test-ctx").unwrap();
    let status = client.acquire(&[2]).unwrap();
    assert!(!status.ok());
    assert_eq!(status.failed.len(), 1);
    assert_eq!(status.failed[0].0, 2);
    assert!(
        status.failed[0].1.reason.contains("cluster member 0"),
        "reason should name the owner: {}",
        status.failed[0].1
    );
    assert!(!storage.exists("out-000002.sdf"), "foreign interval must not launch");
    // Invalid keys are nobody's: every member reports the uniform
    // timeline error, not a bogus ownership claim.
    let status = client.acquire(&[9999]).unwrap();
    assert_eq!(status.failed.len(), 1);
    assert!(
        status.failed[0].1.reason.contains("outside the timeline"),
        "invalid key must get the timeline error on any member: {}",
        status.failed[0].1
    );
    // A key it does own works normally (interval 1 → keys 5..=8).
    let status = client.acquire(&[6]).unwrap();
    assert!(status.ok(), "{status:?}");
    client.finalize().unwrap();
    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hello-time membership handshake: a client whose cluster map or
/// step math disagrees with the daemon is rejected with an error that
/// names both views — instead of being silently served misrouted
/// intervals under the wrong budget slice.
fn must_reject<T>(result: std::io::Result<T>, what: &str) -> std::io::Error {
    match result {
        Ok(_) => panic!("{what} must be rejected"),
        Err(e) => e,
    }
}

#[test]
fn hello_rejects_mismatched_membership() {
    use simfs_core::wire::Membership;
    let dir = std::env::temp_dir().join(format!(
        "simfs-cluster-hello-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (server, _storage) = start_member(&dir, ClusterMember::new(1, 3), 1000, 6, 1);
    let good_hash = steps().config_hash();

    // Wrong member index: the client would route member 2's intervals
    // here.
    let err = must_reject(
        SimfsClient::connect_with(
            server.addr(),
            "test-ctx",
            Some(Membership { index: 2, size: 3, steps_hash: good_hash }),
        ),
        "index mismatch",
    );
    assert!(
        err.to_string().contains("membership mismatch"),
        "unexpected error: {err}"
    );

    // Wrong cluster size: every interval hash diverges.
    let err = must_reject(
        SimfsClient::connect_with(
            server.addr(),
            "test-ctx",
            Some(Membership { index: 1, size: 2, steps_hash: good_hash }),
        ),
        "size mismatch",
    );
    assert!(err.to_string().contains("membership mismatch"), "{err}");

    // Wrong step math: same member map, different cadence hash — the
    // subtle one a silent daemon would misroute on.
    let err = must_reject(
        SimfsClient::connect_with(
            server.addr(),
            "test-ctx",
            Some(Membership { index: 1, size: 3, steps_hash: good_hash ^ 1 }),
        ),
        "steps-hash mismatch",
    );
    assert!(err.to_string().contains("steps hash"), "{err}");

    // The correct claim is accepted and serves owned intervals.
    let mut ok = SimfsClient::connect_with(
        server.addr(),
        "test-ctx",
        Some(Membership { index: 1, size: 3, steps_hash: good_hash }),
    )
    .unwrap();
    let status = ok.acquire(&[6]).unwrap(); // interval 1: member 1's
    assert!(status.ok(), "{status:?}");
    ok.finalize().unwrap();

    // Membership-less hellos (solo tools, simulators) still connect.
    let bare = SimfsClient::connect(server.addr(), "test-ctx").unwrap();
    drop(bare);

    // DvCluster wires the check end to end: a divergent StepMath fails
    // at connect time.
    let err = must_reject(
        DvCluster::connect(&[server.addr()], "test-ctx", StepMath::new(1, 4, 68)),
        "cluster connect with divergent steps",
    );
    assert!(err.to_string().contains("membership mismatch"), "{err}");

    server.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cluster half of the access-stream digest: members of a
/// prefetching cluster see only their routed subsequence locally, so
/// DVLib forwards the full pre-routing stream — and every member's
/// agents must end up observing it (each member counts the replayed
/// records whose keys it owns).
#[test]
fn clustered_members_observe_forwarded_digests() {
    let dir = std::env::temp_dir().join(format!(
        "simfs-cluster-digest-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut servers = Vec::new();
    for index in 0..2 {
        let (server, _storage) =
            start_member_prefetch(&dir, ClusterMember::new(index, 2), 1000, 6, 2, true);
        servers.push(server);
    }
    let addrs: Vec<SocketAddr> = servers.iter().map(DvServer::addr).collect();
    let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();

    // A sequential scan across both members' intervals: the full
    // 16-access stream must reach both sets of agents even though each
    // member serves only 8 of the keys.
    const SCAN: u64 = 16;
    for key in 1..=SCAN {
        let status = cc.acquire(&[key]).unwrap();
        assert!(status.ok(), "{status:?}");
        cc.release(key).unwrap();
    }
    cc.flush().unwrap();

    // Each member owns every other interval: 8 of the 16 records each.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let replayed: Vec<u64> = servers
            .iter()
            .map(|s| s.stats().digest_replayed)
            .collect();
        if replayed.iter().all(|&r| r >= SCAN / 2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "members never observed the forwarded stream: {replayed:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    cc.finalize().unwrap();
    for server in &servers {
        server.shutdown();
    }
    drop(servers);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Crash recovery with a real kill -9
// ---------------------------------------------------------------------

/// Not a test on its own: the subprocess body for
/// [`kill9_member_recovers_with_reassert`]. The parent re-execs this
/// test binary with `member_worker --exact` and the `SIMFS_KILL9_*`
/// environment set; it then runs cluster member 1 with a durable WAL
/// until the parent SIGKILLs it. Without the environment (a normal
/// `cargo test` run) it is a no-op.
#[test]
fn member_worker() {
    let Ok(port) = std::env::var("SIMFS_KILL9_PORT") else {
        return;
    };
    let dir = std::path::PathBuf::from(std::env::var("SIMFS_KILL9_DIR").unwrap());
    let recover = std::env::var("SIMFS_KILL9_RECOVER").as_deref() == Ok("1");
    let listen = format!("127.0.0.1:{port}");
    // The previous (killed) instance's listener may linger briefly;
    // retry the bind like a restarted daemon would.
    let deadline = Instant::now() + Duration::from_secs(10);
    let (_server, _storage) = loop {
        match start_member_cfg(
            &dir,
            ClusterMember::new(1, 3),
            1000,
            6,
            2,
            false,
            &listen,
            DurabilityCfg::durable(recover),
        ) {
            Ok(pair) => break pair,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("worker cannot serve {listen}: {e}"),
        }
    };
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn spawn_member_worker(dir: &std::path::Path, port: u16, recover: bool) -> std::process::Child {
    std::process::Command::new(std::env::current_exe().unwrap())
        .args(["member_worker", "--exact"])
        .env("SIMFS_KILL9_DIR", dir)
        .env("SIMFS_KILL9_PORT", port.to_string())
        .env("SIMFS_KILL9_RECOVER", if recover { "1" } else { "0" })
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn member worker")
}

/// Polls until the worker's listener accepts (it handles the probe
/// connection's EOF like any departed client).
fn await_listening(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match std::net::TcpStream::connect(addr) {
            Ok(_) => return,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("worker on {addr} never came up: {e}"),
        }
    }
}

/// Sorted `.sdf` listing of a storage directory — the client-visible
/// residency, excluding the WAL (`dv-member-*.wal` is daemon-private).
fn sdf_listing(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".sdf"))
        .collect();
    names.sort();
    names
}

/// The tentpole end-to-end: a 3-member cluster where member 1 is a real
/// child process with a durable WAL. It is SIGKILLed while the client
/// holds pins on its interval, restarted with `--recover`, and the
/// client — auto-reconnect on — re-handshakes and re-asserts its pins.
/// Every per-request outcome and the final storage listing must match a
/// cluster that never crashed.
#[test]
fn kill9_member_recovers_with_reassert() {
    // Reference: an uncrashed in-process 3-member cluster.
    let (reference, _rstorage, ref_dir) = start_cluster("kill9-ref", 3, 1000, 6, 2);
    let ref_addrs: Vec<SocketAddr> = reference.iter().map(DvServer::addr).collect();
    let mut rc = DvCluster::connect(&ref_addrs, "test-ctx", steps()).unwrap();

    // Faulted cluster: members 0 and 2 in-process, member 1 a child.
    let dir = std::env::temp_dir().join(format!("simfs-cluster-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (m0, _storage) = start_member(&dir, ClusterMember::new(0, 3), 1000, 6, 2);
    let (m2, _) = start_member(&dir, ClusterMember::new(2, 3), 1000, 6, 2);
    let port = {
        // Reserve a port for the worker (bind-then-drop).
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let worker_addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let child = spawn_member_worker(&dir, port, false);
    await_listening(worker_addr);

    let addrs = [m0.addr(), worker_addr, m2.addr()];
    let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();
    cc.set_auto_reconnect(true);
    cc.set_op_timeout(Some(Duration::from_secs(10)));

    let acquire_both = |cc: &mut DvCluster, rc: &mut DvCluster, keys: &[u64], tag: &str| {
        let got = cc.acquire(keys).unwrap();
        let want = rc.acquire(keys).unwrap();
        assert_eq!(
            sorted(got.ready.clone()),
            sorted(want.ready.clone()),
            "{tag}: ready sets diverge"
        );
        let got_failed: Vec<u64> = got.failed.iter().map(|(k, _)| *k).collect();
        let want_failed: Vec<u64> = want.failed.iter().map(|(k, _)| *k).collect();
        assert_eq!(sorted(got_failed), sorted(want_failed), "{tag}: failed sets diverge");
    };

    // Phase A — pins land on every member; 5 and 6 (member 1's
    // interval 1) stay pinned across the crash. 6 is a slow-path pin
    // (granted with the launch), 5 a fast-path hit pin: the WAL must
    // cover both grant paths.
    acquire_both(&mut cc, &mut rc, &[6], "A:6");
    acquire_both(&mut cc, &mut rc, &[5], "A:5");
    acquire_both(&mut cc, &mut rc, &[2], "A:2");
    acquire_both(&mut cc, &mut rc, &[10], "A:10");

    // Quiesce both clusters so no sim is mid-production at the kill.
    const PRODUCED_A: u64 = 3 * 4; // intervals 1, 0, 2 fully materialized
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (c, r) = (cc.status().unwrap(), rc.status().unwrap());
        if (c.produced_steps, c.active_sims, r.produced_steps, r.active_sims)
            == (PRODUCED_A, 0, PRODUCED_A, 0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "clusters never quiesced: {c:?} vs {r:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // kill -9 member 1 mid-pin, then restart it with --recover.
    let mut child = child;
    child.kill().unwrap();
    child.wait().unwrap();
    let mut child = spawn_member_worker(&dir, port, true);
    await_listening(worker_addr);

    // Phase B — the next touch of member 1 rides the reconnect path:
    // re-handshake, cross-epoch re-assertion of the pins on 5 and 6,
    // then the acquire itself (a warm hit: recovery re-primed the
    // interval from storage).
    acquire_both(&mut cc, &mut rc, &[7], "B:7");
    assert!(cc.reconnects() >= 1, "client never reconnected");
    assert!(cc.pins_reasserted() >= 2, "pins on 5 and 6 must survive via re-assertion");
    // The re-asserted pins are live: releasing and re-acquiring behaves
    // exactly as on the uncrashed cluster.
    cc.release(6).unwrap();
    rc.release(6).unwrap();
    acquire_both(&mut cc, &mut rc, &[6], "B:6 again");
    acquire_both(&mut cc, &mut rc, &[33], "B:33");
    acquire_both(&mut cc, &mut rc, &[2, 6, 10], "B:multi");

    // Quiesce phase B's one new launch (interval 8 for key 33).
    const PRODUCED_REF: u64 = PRODUCED_A + 4;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let r = rc.status().unwrap();
        let c = cc.status().unwrap();
        // The restarted member's counters reset at the crash, so the
        // faulted cluster's aggregate differs; quiesce on activity and
        // on the reference's totals instead.
        if r.produced_steps == PRODUCED_REF && r.active_sims == 0 && c.active_sims == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "phase B never quiesced: {c:?} vs {r:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Recovery equivalence, the client-visible half: identical
    // materialized steps on disk.
    assert_eq!(
        sdf_listing(&dir),
        sdf_listing(&ref_dir),
        "storage diverged from the uncrashed reference"
    );

    cc.finalize().unwrap();
    rc.finalize().unwrap();
    child.kill().unwrap();
    child.wait().unwrap();
    m0.shutdown();
    m2.shutdown();
    for server in &reference {
        server.shutdown();
    }
    drop((m0, m2, reference));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Interval failover, end to end with a real kill -9: member 1 dies
/// mid-pin and is NOT restarted — with failover enabled, every request
/// still completes because member 2 (the successor-rule taker) primes
/// the dead member's intervals from shared storage, re-simulates the
/// cold ones under its own budget, and parks the re-homed pins. When
/// member 1 later restarts with `--recover`, the client hands the
/// parked pins back and the final storage listing matches a cluster
/// that never crashed.
#[test]
fn kill9_member_fails_over_to_taker_and_hands_back() {
    // Reference: an uncrashed in-process 3-member cluster.
    let (reference, _rstorage, ref_dir) = start_cluster("failover-ref", 3, 1000, 6, 2);
    let ref_addrs: Vec<SocketAddr> = reference.iter().map(DvServer::addr).collect();
    let mut rc = DvCluster::connect(&ref_addrs, "test-ctx", steps()).unwrap();

    // Faulted cluster: members 0 and 2 in-process, member 1 a child.
    let dir = std::env::temp_dir().join(format!("simfs-cluster-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (m0, _storage) = start_member(&dir, ClusterMember::new(0, 3), 1000, 6, 2);
    let (m2, _) = start_member(&dir, ClusterMember::new(2, 3), 1000, 6, 2);
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let worker_addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let child = spawn_member_worker(&dir, port, false);
    await_listening(worker_addr);

    let addrs = [m0.addr(), worker_addr, m2.addr()];
    let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();
    cc.set_auto_reconnect(true);
    cc.set_failover(true);
    // Short probe window: down-detection in ~1.5 s instead of 30.
    cc.set_down_window(Duration::from_millis(1500));

    let acquire_both = |cc: &mut DvCluster, rc: &mut DvCluster, keys: &[u64], tag: &str| {
        let got = cc.acquire(keys).unwrap();
        let want = rc.acquire(keys).unwrap();
        assert_eq!(
            sorted(got.ready.clone()),
            sorted(want.ready.clone()),
            "{tag}: ready sets diverge"
        );
        let got_failed: Vec<u64> = got.failed.iter().map(|(k, _)| *k).collect();
        let want_failed: Vec<u64> = want.failed.iter().map(|(k, _)| *k).collect();
        assert_eq!(sorted(got_failed), sorted(want_failed), "{tag}: failed sets diverge");
    };

    // Phase A — pins on every member; 5 and 6 (member 1's interval 1)
    // stay pinned across the crash and will be re-homed onto the taker.
    acquire_both(&mut cc, &mut rc, &[6], "A:6");
    acquire_both(&mut cc, &mut rc, &[5], "A:5");
    acquire_both(&mut cc, &mut rc, &[2], "A:2");
    acquire_both(&mut cc, &mut rc, &[10], "A:10");

    const PRODUCED_A: u64 = 3 * 4; // intervals 1, 0, 2 fully materialized
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (c, r) = (cc.status().unwrap(), rc.status().unwrap());
        if (c.produced_steps, c.active_sims, r.produced_steps, r.active_sims)
            == (PRODUCED_A, 0, PRODUCED_A, 0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "clusters never quiesced: {c:?} vs {r:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // kill -9 member 1 — and do NOT restart it.
    let mut child = child;
    child.kill().unwrap();
    child.wait().unwrap();

    // Phase B — every request completes without member 1.
    // 7: dead member's warm interval — the taker primes it from shared
    // storage. The first touch also re-homes the pins on 5 and 6.
    acquire_both(&mut cc, &mut rc, &[7], "B:7 takeover");
    assert!(cc.degraded(), "down member must be detected");
    assert_eq!(cc.members_down(), 1);
    assert!(
        cc.taken_over_pins() >= 2,
        "pins on 5 and 6 must be re-homed: {}",
        cc.taken_over_pins()
    );
    // 17: dead member's cold interval — the taker re-simulates it.
    acquire_both(&mut cc, &mut rc, &[17], "B:17 cold takeover");
    // Native members are unaffected.
    acquire_both(&mut cc, &mut rc, &[2, 10], "B:native");
    // Takeover pins are live pins: release + re-acquire routes to the
    // taker and behaves exactly as on the uncrashed cluster.
    cc.release(6).unwrap();
    rc.release(6).unwrap();
    acquire_both(&mut cc, &mut rc, &[6], "B:6 again");
    assert!(
        m2.stats().takeover_acquires >= 1,
        "the taker must have served tagged takeover acquires"
    );

    // Quiesce phase B (interval 4 re-simulated: by the taker on the
    // faulted side, by member 1 on the reference).
    const PRODUCED_REF: u64 = PRODUCED_A + 4;
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (c, r) = (cc.status().unwrap(), rc.status().unwrap());
        if r.produced_steps == PRODUCED_REF && r.active_sims == 0 && c.active_sims == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "phase B never quiesced: {c:?} vs {r:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Phase C — restart member 1 with --recover. The next acquire
    // revives it and hands the parked pins back: re-acquired at the
    // restored home member first, then released at the taker.
    let mut child = spawn_member_worker(&dir, port, true);
    await_listening(worker_addr);
    acquire_both(&mut cc, &mut rc, &[8], "C:8 home again");
    assert!(!cc.degraded(), "revived member must clear degraded mode");
    assert_eq!(cc.taken_over_pins(), 0, "every parked pin must be handed back");
    assert!(cc.reconnects() >= 1);
    assert!(
        m2.stats().takeover_pins_handed_back >= 2,
        "the taker must have drained hand-backs"
    );
    acquire_both(&mut cc, &mut rc, &[2, 6, 10], "C:multi");

    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (c, r) = (cc.status().unwrap(), rc.status().unwrap());
        if r.produced_steps == PRODUCED_REF && r.active_sims == 0 && c.active_sims == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "phase C never quiesced: {c:?} vs {r:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Degraded service must converge to the same on-disk residency as
    // the uncrashed reference.
    assert_eq!(
        sdf_listing(&dir),
        sdf_listing(&ref_dir),
        "storage diverged from the uncrashed reference"
    );

    cc.finalize().unwrap();
    rc.finalize().unwrap();
    child.kill().unwrap();
    child.wait().unwrap();
    m0.shutdown();
    m2.shutdown();
    for server in &reference {
        server.shutdown();
    }
    drop((m0, m2, reference));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Satellite: with auto-reconnect OFF, an op against a dead member must
/// surface a typed [`MemberDown`] after the probe window — not hang.
#[test]
fn dead_member_surfaces_member_down_instead_of_hanging() {
    use simfs_core::client::MemberDown;
    let dir = std::env::temp_dir().join(format!(
        "simfs-cluster-memberdown-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (m0, _storage) = start_member(&dir, ClusterMember::new(0, 3), 1000, 6, 2);
    let (m2, _) = start_member(&dir, ClusterMember::new(2, 3), 1000, 6, 2);
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let worker_addr: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
    let child = spawn_member_worker(&dir, port, false);
    await_listening(worker_addr);

    let addrs = [m0.addr(), worker_addr, m2.addr()];
    let mut cc = DvCluster::connect(&addrs, "test-ctx", steps()).unwrap();
    // No auto-reconnect, no failover: the op must fail typed, fast.
    cc.set_down_window(Duration::from_millis(800));

    let mut child = child;
    child.kill().unwrap();
    child.wait().unwrap();

    let started = Instant::now();
    let err = cc.acquire(&[6]).unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        MemberDown::from_io(&err).is_some_and(|d| d.member == 1),
        "expected a typed MemberDown for member 1, got: {err}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "down detection took {elapsed:?} — the op effectively hung"
    );

    m0.shutdown();
    m2.shutdown();
    drop((m0, m2));
    let _ = std::fs::remove_dir_all(&dir);
}
