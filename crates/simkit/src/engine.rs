//! The event loop: a time-ordered queue of one-shot handlers.
//!
//! The engine is generic over a user state `S`; handlers receive
//! `(&mut Engine<S>, &mut S)` so they can mutate the model and schedule
//! follow-up events. Determinism is guaranteed by (time, sequence-number)
//! ordering: ties fire in scheduling order.
//!
//! Cancellation is lazy: [`Engine::cancel`] marks the event id and the
//! main loop discards marked events when they surface. This keeps the
//! queue a plain binary heap (no decrease-key) — the pattern used by most
//! production DES cores — and the SimFS harness relies on it to model the
//! paper's "kill prefetched simulations on direction change" (§IV-C).

use crate::time::{Dur, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

type Handler<S> = Box<dyn FnOnce(&mut Engine<S>, &mut S)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    run: Handler<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}

impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq)
        // surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event engine.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: HashSet<u64>,
}

impl<S> Default for Engine<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Engine<S> {
    /// Creates an engine at virtual time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
        }
    }

    /// The current virtual time. Monotonically non-decreasing.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued (including cancelled-but-unreaped).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `f` to run at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — time travel would silently break
    /// causality in the model.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "scheduled event in the past: {at:?} < {:?}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
        EventId(seq)
    }

    /// Schedules `f` to run `d` after the current instant.
    pub fn schedule_in(
        &mut self,
        d: Dur,
        f: impl FnOnce(&mut Engine<S>, &mut S) + 'static,
    ) -> EventId {
        let at = self.now + d;
        self.schedule_at(at, f)
    }

    /// Cancels a pending event. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Executes the next pending event, if any. Returns `false` when the
    /// queue is exhausted.
    pub fn step(&mut self, state: &mut S) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.executed += 1;
            (ev.run)(self, state);
            return true;
        }
        false
    }

    /// Runs until the queue drains; returns the final virtual time.
    pub fn run(&mut self, state: &mut S) -> SimTime {
        while self.step(state) {}
        self.now
    }

    /// Runs events with `at <= deadline`. Afterwards `now() == deadline`
    /// unless the queue drained earlier. Returns `true` if events remain.
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> bool {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.at <= deadline => {
                    self.step(state);
                }
                Some(_) => {
                    self.now = deadline;
                    return true;
                }
                None => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return false;
                }
            }
        }
    }

    /// Runs at most `n` events (useful for fuel-limited fuzzing).
    pub fn run_steps(&mut self, state: &mut S, n: u64) -> u64 {
        let mut done = 0;
        while done < n && self.step(state) {
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        en.schedule_at(SimTime::from_secs(3), |_, l: &mut Vec<u64>| l.push(3));
        en.schedule_at(SimTime::from_secs(1), |_, l: &mut Vec<u64>| l.push(1));
        en.schedule_at(SimTime::from_secs(2), |_, l: &mut Vec<u64>| l.push(2));
        en.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(en.now(), SimTime::from_secs(3));
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            en.schedule_at(t, move |_, l: &mut Vec<u64>| l.push(i));
        }
        en.run(&mut log);
        assert_eq!(log, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut en: Engine<u64> = Engine::new();
        let mut count = 0u64;
        fn tick(en: &mut Engine<u64>, count: &mut u64) {
            *count += 1;
            if *count < 5 {
                en.schedule_in(Dur::from_secs(1), tick);
            }
        }
        en.schedule_in(Dur::from_secs(1), tick);
        en.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(en.now(), SimTime::from_secs(5));
    }

    #[test]
    fn cancellation_prevents_execution() {
        let mut en: Engine<Vec<&'static str>> = Engine::new();
        let mut log = Vec::new();
        let keep = en.schedule_at(SimTime::from_secs(1), |_, l: &mut Vec<_>| l.push("keep"));
        let drop_ = en.schedule_at(SimTime::from_secs(2), |_, l: &mut Vec<_>| l.push("drop"));
        assert!(en.cancel(drop_));
        assert!(!en.cancel(drop_), "double-cancel reports false");
        en.run(&mut log);
        assert_eq!(log, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut en: Engine<()> = Engine::new();
        assert!(!en.cancel(EventId(42)));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut log = Vec::new();
        for s in 1..=5 {
            en.schedule_at(SimTime::from_secs(s), move |_, l: &mut Vec<u64>| l.push(s));
        }
        let more = en.run_until(&mut log, SimTime::from_secs(3));
        assert!(more);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(en.now(), SimTime::from_secs(3));
        en.run(&mut log);
        assert_eq!(log, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut en: Engine<()> = Engine::new();
        let more = en.run_until(&mut (), SimTime::from_secs(10));
        assert!(!more);
        assert_eq!(en.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut en: Engine<()> = Engine::new();
        en.schedule_at(SimTime::from_secs(5), |_, _| {});
        en.run(&mut ());
        en.schedule_at(SimTime::from_secs(1), |_, _| {});
    }

    #[test]
    fn run_steps_is_fuel_limited() {
        let mut en: Engine<u64> = Engine::new();
        let mut hits = 0u64;
        for s in 0..10 {
            en.schedule_at(SimTime::from_secs(s), |_, h: &mut u64| *h += 1);
        }
        assert_eq!(en.run_steps(&mut hits, 4), 4);
        assert_eq!(hits, 4);
        assert_eq!(en.pending(), 6);
    }

    #[test]
    fn executed_counts_only_real_events() {
        let mut en: Engine<()> = Engine::new();
        let a = en.schedule_at(SimTime::from_secs(1), |_, _| {});
        en.schedule_at(SimTime::from_secs(2), |_, _| {});
        en.cancel(a);
        en.run(&mut ());
        assert_eq!(en.executed(), 1);
    }
}
