//! [`CacheSim`]: the byte-budget storage-area manager.
//!
//! The Data Virtualizer associates each simulation context with a storage
//! area of bounded size (§III-A): files materialized by re-simulations
//! are inserted here, files opened by analyses are pinned via reference
//! counts, and when the budget is exceeded the replacement policy picks
//! victims among unpinned entries. If *everything* is pinned the area
//! temporarily overflows — the paper's semantics: referenced output steps
//! can never be dropped.

use crate::fasthash::{u64_map, U64Map};
use crate::hitindex::{HitIndex, Retire};
use crate::{PinFn, Policy};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct EntryInfo {
    size: u64,
    pins: u32,
    /// Miss cost at insertion, kept so an eviction veto (fast pin /
    /// reference bit in the attached [`HitIndex`]) can re-enter the
    /// victim into the policy as freshly used.
    cost: u64,
}

/// Cumulative counters for a [`CacheSim`] lifetime.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found the key resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries evicted by policy decision.
    pub evictions: u64,
    /// Entries removed externally.
    pub removals: u64,
    /// Times the area exceeded its budget because every entry was pinned.
    pub overflows: u64,
}

impl CacheStats {
    /// Hit ratio over all accesses (0 when no accesses yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A storage area: policy + sizes + reference counts + byte budget.
pub struct CacheSim {
    policy: Box<dyn Policy + Send>,
    entries: U64Map<EntryInfo>,
    capacity: u64,
    used: u64,
    stats: CacheStats,
    /// Concurrent membership replica consulted by lock-free hit paths.
    /// When attached, inserts publish to it and evictions must win a
    /// [`HitIndex::try_retire`] against concurrent fast pins.
    index: Option<Arc<HitIndex>>,
}

impl CacheSim {
    /// Creates a storage area with the given policy and byte budget.
    pub fn new(policy: Box<dyn Policy + Send>, capacity_bytes: u64) -> Self {
        CacheSim {
            policy,
            entries: u64_map(),
            capacity: capacity_bytes,
            used: 0,
            stats: CacheStats::default(),
            index: None,
        }
    }

    /// Attaches a concurrent [`HitIndex`] replica: current and future
    /// residents are published to it, and evictions honour its fast
    /// pins and reference bits. The index's *writes* stay serialized by
    /// whatever lock guards this `CacheSim`; only readers are
    /// concurrent.
    pub fn attach_index(&mut self, index: Arc<HitIndex>) {
        for key in self.entries.keys() {
            index.publish(*key);
        }
        self.index = Some(index);
    }

    /// The policy's paper name (e.g. `"DCL"`).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is `key` resident?
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Records an access; returns `true` on hit. On a miss the caller is
    /// expected to re-simulate and then [`insert`](Self::insert).
    pub fn access(&mut self, key: u64) -> bool {
        if self.entries.contains_key(&key) {
            self.policy.on_hit(key);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Non-mutating membership probe (no statistics, no policy update) —
    /// used by prefetch agents that must not distort the access stream.
    pub fn peek(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    fn evict_until_fits(&mut self) -> Vec<u64> {
        let mut evicted = Vec::new();
        // Bounds the second-chance loop below: every resident entry can
        // be vetoed at most once per cleared reference bit, so this cap
        // is only reached under sustained concurrent pinning — which is
        // exactly when tolerating overflow is the right call.
        let mut vetoes = 0usize;
        while self.used > self.capacity {
            let entries = &self.entries;
            let index = self.index.as_deref();
            let pinned = move |k: u64| {
                entries.get(&k).is_some_and(|e| e.pins > 0)
                    || index.is_some_and(|idx| idx.is_pinned(k))
            };
            match self.policy.evict(&pinned as PinFn<'_>) {
                Some(victim) => {
                    // The index is the authoritative gate against
                    // concurrent fast pins: its write lock excludes the
                    // read-lock-holding pinners, so a Retired verdict
                    // cannot race a pin.
                    let verdict = match &self.index {
                        Some(idx) => idx.try_retire(victim),
                        None => Retire::Absent,
                    };
                    match verdict {
                        Retire::Retired | Retire::Absent => {
                            let info = self
                                .entries
                                .remove(&victim)
                                .expect("policy evicted unknown key");
                            debug_assert_eq!(info.pins, 0, "policy evicted a pinned key");
                            self.used -= info.size;
                            self.stats.evictions += 1;
                            evicted.push(victim);
                        }
                        Retire::Pinned | Retire::Hot => {
                            // A concurrent fast hit pinned or touched
                            // the victim; had it gone through the lock
                            // it would have refreshed the entry — give
                            // it that refresh and pick another victim.
                            let cost = self
                                .entries
                                .get(&victim)
                                .map_or(0, |e| e.cost);
                            self.policy.on_insert(victim, cost);
                            vetoes += 1;
                            if vetoes > self.entries.len() * 2 + 8 {
                                self.stats.overflows += 1;
                                break;
                            }
                        }
                    }
                }
                None => {
                    // Everything resident is pinned: tolerate overflow.
                    self.stats.overflows += 1;
                    break;
                }
            }
        }
        evicted
    }

    /// Inserts a newly materialized entry, evicting as needed. Returns
    /// the keys that were evicted to make room.
    ///
    /// # Panics
    /// Panics if `key` is already resident (the DV never re-materializes
    /// a resident step).
    pub fn insert(&mut self, key: u64, size: u64, cost: u64) -> Vec<u64> {
        self.insert_pinned(key, size, cost, 0)
    }

    /// Like [`insert`](Self::insert), but the entry enters with `pins`
    /// references already held — used by the DV when clients are blocked
    /// waiting on the step, so the step cannot be chosen as its own
    /// eviction victim.
    pub fn insert_pinned(&mut self, key: u64, size: u64, cost: u64, pins: u32) -> Vec<u64> {
        assert!(
            !self.entries.contains_key(&key),
            "insert of resident key {key}"
        );
        self.entries.insert(key, EntryInfo { size, pins, cost });
        self.policy.on_insert(key, cost);
        self.used += size;
        self.stats.inserts += 1;
        if let Some(idx) = &self.index {
            idx.publish(key);
        }
        self.evict_until_fits()
    }

    /// Pins `key` (reference count +1). Returns `false` if absent.
    pub fn pin(&mut self, key: u64) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Unpins `key` (reference count −1). Returns `false` if absent.
    ///
    /// # Panics
    /// Panics if the key's reference count is already zero.
    pub fn unpin(&mut self, key: u64) -> bool {
        match self.entries.get_mut(&key) {
            Some(e) => {
                assert!(e.pins > 0, "unpin of unpinned key {key}");
                e.pins -= 1;
                true
            }
            None => false,
        }
    }

    /// Current reference count of `key` (0 if absent).
    pub fn pin_count(&self, key: u64) -> u32 {
        self.entries.get(&key).map_or(0, |e| e.pins)
    }

    /// Removes `key` without an eviction decision (context teardown).
    /// With an attached index, the caller must have quiesced fast-path
    /// traffic first — a withdrawal does not honour fast pins.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(idx) = &self.index {
            idx.withdraw(key);
        }
        match self.entries.remove(&key) {
            Some(info) => {
                self.used -= info.size;
                self.policy.on_remove(key);
                self.stats.removals += 1;
                true
            }
            None => false,
        }
    }

    /// Resident keys in unspecified order (diagnostics / teardown).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lru;

    fn lru_cache(capacity: u64) -> CacheSim {
        CacheSim::new(Box::new(Lru::new()), capacity)
    }

    #[test]
    fn insert_within_budget_evicts_nothing() {
        let mut c = lru_cache(300);
        assert!(c.insert(1, 100, 0).is_empty());
        assert!(c.insert(2, 100, 0).is_empty());
        assert_eq!(c.used_bytes(), 200);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn overflow_evicts_lru() {
        let mut c = lru_cache(250);
        c.insert(1, 100, 0);
        c.insert(2, 100, 0);
        let evicted = c.insert(3, 100, 0);
        assert_eq!(evicted, vec![1]);
        assert_eq!(c.used_bytes(), 200);
        assert!(!c.contains(1));
    }

    #[test]
    fn access_updates_stats_and_recency() {
        let mut c = lru_cache(250);
        c.insert(1, 100, 0);
        c.insert(2, 100, 0);
        assert!(c.access(1));
        assert!(!c.access(99));
        let evicted = c.insert(3, 100, 0);
        assert_eq!(evicted, vec![2], "1 was refreshed by the hit");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn peek_does_not_touch_policy_or_stats() {
        let mut c = lru_cache(250);
        c.insert(1, 100, 0);
        c.insert(2, 100, 0);
        assert!(c.peek(1));
        let evicted = c.insert(3, 100, 0);
        assert_eq!(evicted, vec![1], "peek must not refresh recency");
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn pinned_entries_overflow_the_budget() {
        let mut c = lru_cache(150);
        c.insert(1, 100, 0);
        c.pin(1);
        let evicted = c.insert(2, 100, 0);
        assert!(evicted.is_empty() || !evicted.contains(&1));
        // 2 itself is unpinned; with capacity 150 and used 200, policy
        // evicts 2 (the only unpinned entry).
        assert!(c.contains(1));
        assert!(c.stats().overflows > 0 || c.used_bytes() <= 150);
    }

    #[test]
    fn everything_pinned_tolerates_overflow() {
        let mut c = lru_cache(150);
        c.insert(1, 100, 0);
        c.pin(1);
        c.insert(2, 100, 0);
        c.pin(2); // too late to stop 2's insert-eviction? no: insert already ran
        let evicted = c.insert(3, 100, 0);
        c.pin(3);
        // At least one eviction attempt happened; remaining pinned entries
        // stay.
        assert!(c.contains(1));
        let _ = evicted;
    }

    #[test]
    fn unpin_makes_evictable_again() {
        let mut c = lru_cache(100);
        c.insert(1, 100, 0);
        c.pin(1);
        c.insert(2, 100, 0); // overflow: 2 evicted (only unpinned)
        assert!(c.contains(1));
        c.unpin(1);
        c.insert(3, 100, 0);
        assert!(!c.contains(1), "after unpin, 1 is evictable");
        assert!(c.contains(3));
    }

    #[test]
    fn pin_refcounts_nest() {
        let mut c = lru_cache(100);
        c.insert(1, 50, 0);
        c.pin(1);
        c.pin(1);
        assert_eq!(c.pin_count(1), 2);
        c.unpin(1);
        assert_eq!(c.pin_count(1), 1);
        c.unpin(1);
        assert_eq!(c.pin_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned")]
    fn unpin_underflow_panics() {
        let mut c = lru_cache(100);
        c.insert(1, 50, 0);
        c.unpin(1);
    }

    #[test]
    fn remove_frees_bytes() {
        let mut c = lru_cache(300);
        c.insert(1, 100, 0);
        c.insert(2, 100, 0);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.used_bytes(), 100);
        assert_eq!(c.stats().removals, 1);
    }

    #[test]
    fn oversize_entry_is_inserted_then_evicted_next_round() {
        let mut c = lru_cache(100);
        let evicted = c.insert(1, 500, 0);
        // The entry does not fit at all: it evicts itself.
        assert_eq!(evicted, vec![1]);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn hit_ratio_math() {
        let mut c = lru_cache(300);
        c.insert(1, 100, 0);
        c.access(1);
        c.access(1);
        c.access(9);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
