//! Quickstart: virtualize a synthetic simulation and watch SimFS serve
//! misses by re-simulating on demand.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! What happens (the Fig. 4 sequence, wall-clock):
//!
//! 1. a DV daemon starts over an *empty* storage area — every output
//!    step is virtual;
//! 2. the analysis opens `out-000042.sdf`: a miss. The DV launches a
//!    re-simulation from the nearest restart; the analysis blocks;
//! 3. the simulation produces the enclosing restart interval; the DV
//!    notifies the analysis, which reads the now-real file;
//! 4. a second open of the same step is a pure cache hit.

use simfs::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> std::io::Result<()> {
    // --- context: 1 timestep per output step, restart every 8 steps,
    // 256 steps on the timeline.
    let steps = StepMath::new(1, 8, 256);
    let dir = std::env::temp_dir().join(format!("simfs-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX)?;
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6));

    // The "simulator": deterministic bytes per step, 3 ms per output
    // step, 20 ms restart latency.
    let make_bytes = |key: u64| {
        let mut ds = Dataset::new(key, key as f64);
        ds.set_attr("simulator", "synthetic");
        ds.add_var("field", vec![8], simstore::Data::F64(vec![key as f64; 8]))
            .expect("field");
        ds.encode().to_vec()
    };
    let launcher = Arc::new(ThreadSimLauncher::new(
        make_bytes,
        |key| format!("out-{key:06}.sdf"),
        Duration::from_millis(20),
        Duration::from_millis(3),
    ));

    let ctx = ContextCfg::new("quickstart", steps, 1024, 64 * 1024).with_smax(4);
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher,
            checksums: HashMap::new(),
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )?;
    println!("DV daemon listening on {}", server.addr());

    // --- analysis: transparent mode through the Table I facade.
    let client = SimfsClient::connect(server.addr(), "quickstart")?;
    let mut vfs = VirtualFs::new(client, driver, storage);

    println!("\nopening a missing output step (triggers re-simulation)...");
    let t0 = Instant::now();
    let ds = simfs::core::intercept::netcdf::nc_open(&mut vfs, "out-000042.sdf")?;
    let miss_time = t0.elapsed();
    let field = simfs::core::intercept::netcdf::nc_vara_get_double(&ds, "field")?;
    println!(
        "  step {} ready after {:?}; field[0] = {}",
        ds.step_index, miss_time, field[0]
    );
    simfs::core::intercept::netcdf::nc_close(&mut vfs, "out-000042.sdf")?;

    println!("re-opening the same step (cache hit)...");
    let t1 = Instant::now();
    let _ds = vfs.open("out-000042.sdf")?;
    let hit_time = t1.elapsed();
    vfs.close("out-000042.sdf")?;
    println!("  ready after {hit_time:?}");

    println!("\nneighbouring steps of the restart interval are cached too:");
    for key in [41u64, 43, 44] {
        let name = format!("out-{key:06}.sdf");
        println!("  {name}: materialized = {}", vfs.is_materialized(&name));
    }

    let stats = server.stats();
    println!(
        "\nDV stats: {} hits, {} misses, {} restarts, {} steps produced",
        stats.hits, stats.misses, stats.restarts, stats.produced_steps
    );
    assert!(
        miss_time > hit_time,
        "a miss re-simulates; a hit only round-trips the daemon"
    );

    vfs.finalize()?;
    server.shutdown();
    std::fs::remove_dir_all(&dir)?;
    println!("\nquickstart OK");
    Ok(())
}
