//! # simfs-bench — harnesses reproducing every table and figure
//!
//! One binary per table/figure of the paper (see DESIGN.md §2 for the
//! index). Each harness prints the series the paper plots and writes a
//! CSV under `bench_results/` for external plotting. Absolute numbers
//! differ from the paper (its substrate was Piz Daint + COSMO/FLASH;
//! ours are the simulator proxies and a DES engine) — the reproduced
//! quantity is the *shape*: who wins, by what rough factor, where the
//! crossovers sit. EXPERIMENTS.md records paper-vs-measured for each.
//!
//! Every harness is also callable as a library function so the
//! integration tests can assert the shapes and `cargo bench` can time
//! scaled-down versions.

pub mod costfigs;
pub mod fig5;
pub mod output;
pub mod prefetchfigs;

pub use output::{RunOpts, Table};
