//! Seeded randomness with cheap independent streams.
//!
//! Every stochastic element of the harness — trace generation, queueing
//! delays, analysis start offsets — draws from a stream derived from one
//! root seed, so an experiment is reproduced exactly by its seed alone
//! (the methodology the paper follows by reporting medians over 100
//! seeded repetitions).
//!
//! Stream derivation uses SplitMix64, the standard seeding mixer (also
//! what `rand` uses internally for `seed_from_u64`): statistically
//! independent streams from `(root, stream-id)` pairs without carrying a
//! generator around.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The concrete RNG used throughout the workspace.
pub type SimRng = StdRng;

/// SplitMix64 finalizer: one round of output mixing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from a root seed and a stream id.
///
/// `derive_seed(root, a) != derive_seed(root, b)` for `a != b` with
/// overwhelming probability, and consecutive stream ids give well-mixed
/// seeds even though they differ in one bit.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(root).wrapping_add(splitmix64(stream ^ 0xA076_1D64_78BD_642F)))
}

/// A named sequence of derived seeds: `seq.rng(n)` is the generator for
/// logical stream `n`.
#[derive(Clone, Copy, Debug)]
pub struct SeedSeq {
    root: u64,
}

impl SeedSeq {
    /// Creates a sequence rooted at `root`.
    pub fn new(root: u64) -> Self {
        SeedSeq { root }
    }

    /// The root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The derived seed for stream `stream`.
    pub fn seed(&self, stream: u64) -> u64 {
        derive_seed(self.root, stream)
    }

    /// A generator for stream `stream`.
    pub fn rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed(stream))
    }

    /// A child sequence, for hierarchical experiments
    /// (e.g. repetition -> per-analysis streams).
    pub fn child(&self, stream: u64) -> SeedSeq {
        SeedSeq {
            root: self.seed(stream),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn streams_differ() {
        let s = SeedSeq::new(1);
        assert_ne!(s.seed(0), s.seed(1));
        assert_ne!(s.seed(1), s.seed(2));
    }

    #[test]
    fn roots_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let s = SeedSeq::new(99);
        let a: Vec<u64> = (0..8).map(|_| s.rng(3).gen()).collect();
        // Each call to rng(3) restarts the stream.
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let mut r = s.rng(3);
        let fresh: u64 = r.gen();
        assert_eq!(fresh, a[0]);
    }

    #[test]
    fn child_sequences_are_independent() {
        let s = SeedSeq::new(5);
        let c0 = s.child(0);
        let c1 = s.child(1);
        assert_ne!(c0.seed(0), c1.seed(0));
        assert_ne!(c0.root(), s.root());
    }

    #[test]
    fn consecutive_streams_look_mixed() {
        // Weak avalanche check: neighbouring stream ids should differ in
        // many bits, not just the low ones.
        let s = SeedSeq::new(1234);
        let x = s.seed(10);
        let y = s.seed(11);
        assert!((x ^ y).count_ones() > 10);
    }
}
