//! `simfs-dv` — the SimFS Data Virtualizer daemon binary.
//!
//! Serves one simulation context described by a spec file (see
//! [`simfs::spec`]), launching `simfs-simd` subprocesses for
//! re-simulations:
//!
//! ```sh
//! # one-time: the initial simulation (restart files + checksum db)
//! simfs-dv --spec climate.ctx --init
//!
//! # serve the virtualized context
//! simfs-dv --spec climate.ctx --listen 127.0.0.1:7878
//! ```
//!
//! Analyses then connect with `SimfsClient::connect(addr, "climate")`
//! or any tool built on the transparent-mode facade.

use simbatch::ProcessLauncher;
use simfs::spec::ContextSpec;
use simfs_core::dv::ClusterMember;
use simfs_core::server::{DurabilityCfg, DvServer, ServerConfig};
use simstore::{checksum_db, StorageArea};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    spec_path: String,
    listen: String,
    init: bool,
    simd_program: String,
    dv_shards: u32,
    cluster_index: u32,
    cluster_size: u32,
    durable: bool,
    recover: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec_path: String::new(),
        listen: "127.0.0.1:0".to_string(),
        init: false,
        simd_program: "simfs-simd".to_string(),
        dv_shards: 0,
        cluster_index: 0,
        cluster_size: 1,
        durable: false,
        recover: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--spec" => {
                i += 1;
                args.spec_path = argv.get(i).cloned().ok_or("--spec needs a path")?;
            }
            "--listen" => {
                i += 1;
                args.listen = argv.get(i).cloned().ok_or("--listen needs an address")?;
            }
            "--simd" => {
                i += 1;
                args.simd_program = argv.get(i).cloned().ok_or("--simd needs a path")?;
            }
            "--init" => args.init = true,
            "--durable" => args.durable = true,
            "--recover" => {
                args.durable = true;
                args.recover = true;
            }
            "--dv-shards" => {
                i += 1;
                args.dv_shards = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--dv-shards needs a shard count (0 = auto)")?;
            }
            "--cluster-index" => {
                i += 1;
                args.cluster_index = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cluster-index needs this daemon's index (0-based)")?;
            }
            "--cluster-size" => {
                i += 1;
                args.cluster_size = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cluster-size needs the total daemon count")?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if args.spec_path.is_empty() {
        return Err(
            "usage: simfs-dv --spec <file> [--listen addr] [--simd path] \
             [--dv-shards n] [--cluster-index k --cluster-size n] \
             [--durable] [--recover] [--init]"
                .into(),
        );
    }
    if args.cluster_index >= args.cluster_size {
        return Err(format!(
            "--cluster-index {} out of range 0..{} (set --cluster-size first)",
            args.cluster_index, args.cluster_size
        ));
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("simfs-dv: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", args.spec_path))?;
    let spec = ContextSpec::parse(&text)?;
    let storage = StorageArea::create(&spec.data_dir, u64::MAX).map_err(|e| e.to_string())?;

    if args.init {
        let init = simfs::setup::run_initial_simulation(
            &storage,
            spec.sim,
            spec.seed,
            spec.dd,
            spec.dr,
            spec.timesteps,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "context {:?} initialized: {} restart files, {} checksums in {}",
            spec.name,
            init.restarts,
            init.checksums.len(),
            spec.data_dir
        );
        return Ok(());
    }

    let db_path = storage.root().join(checksum_db::DB_FILENAME);
    let checksums: HashMap<u64, u64> = if db_path.is_file() {
        checksum_db::load(&db_path).map_err(|e| e.to_string())?
    } else {
        eprintln!("warning: no checksum db at {}; SIMFS_Bitrep disabled", db_path.display());
        HashMap::new()
    };

    let driver = Arc::new(spec.driver(&args.simd_program));
    let server = DvServer::start(
        ServerConfig {
            ctx: spec.context_cfg(),
            driver,
            storage,
            launcher: Arc::new(ProcessLauncher::new()),
            checksums,
            dv_shards: args.dv_shards,
            cluster: ClusterMember::new(args.cluster_index, args.cluster_size),
            durability: if args.durable {
                DurabilityCfg::durable(args.recover)
            } else {
                DurabilityCfg::default()
            },
        },
        &args.listen,
    )
    .map_err(|e| format!("cannot bind {}: {e}", args.listen))?;

    println!(
        "simfs-dv serving context {:?} on {} (policy {}, smax {}, cache {} steps{})",
        spec.name,
        server.addr(),
        spec.policy,
        spec.smax,
        spec.cache_steps,
        if args.cluster_size > 1 {
            format!(", cluster member {} of {}", args.cluster_index, args.cluster_size)
        } else {
            String::new()
        }
    );
    if args.durable {
        println!(
            "durability on: pin/lease WAL in the storage area{}",
            if args.recover { ", recovered prior state" } else { "" }
        );
    }
    println!("press Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}
