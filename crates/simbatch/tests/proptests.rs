//! Property tests: cluster conservation and FIFO semantics, shape
//! rounding, queue-model bounds.

use proptest::prelude::*;
use simbatch::{AllocShape, Cluster, ClusterEvent, JobId, ParallelismMap, QueueModel};
use simkit::{Dur, SeedSeq};
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Submit(u32),
    Finish(usize),
    Cancel(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..8).prop_map(Op::Submit),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::Finish(i.index(64))),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Cancel(i.index(64))),
    ]
}

proptest! {
    /// Node accounting is conserved and never negative; started jobs
    /// never exceed the cluster size.
    #[test]
    fn cluster_conserves_nodes(
        total in 4u32..32,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut cluster = Cluster::new(total);
        let mut next_id = 0u64;
        let mut running: Vec<JobId> = Vec::new();
        let mut nodes_of: HashMap<JobId, u32> = HashMap::new();

        let absorb = |events: Vec<ClusterEvent>, running: &mut Vec<JobId>| {
            for ClusterEvent::Started(job) in events {
                running.push(job);
            }
        };

        for op in ops {
            match op {
                Op::Submit(nodes) => {
                    let nodes = nodes.min(total);
                    let id = JobId(next_id);
                    next_id += 1;
                    nodes_of.insert(id, nodes);
                    let ev = cluster.submit(id, nodes);
                    absorb(ev, &mut running);
                }
                Op::Finish(i) => {
                    if !running.is_empty() {
                        let id = running.remove(i % running.len());
                        let ev = cluster.finish(id);
                        absorb(ev, &mut running);
                    }
                }
                Op::Cancel(i) => {
                    // Cancel an arbitrary id: may be queued, running, or
                    // long gone — all must be safe.
                    let id = JobId((i as u64) % next_id.max(1));
                    let was_running = running.iter().position(|&j| j == id);
                    let ev = cluster.cancel(id);
                    if let Some(pos) = was_running {
                        running.remove(pos);
                    }
                    absorb(ev, &mut running);
                }
            }
            let used: u32 = running.iter().map(|j| nodes_of[j]).sum();
            prop_assert_eq!(used, cluster.used_nodes());
            prop_assert!(cluster.used_nodes() <= total);
            prop_assert_eq!(cluster.free_nodes() + cluster.used_nodes(), total);
            prop_assert!(cluster.peak_used() <= total);
        }
    }

    /// Shape rounding: result always satisfies the shape and is the
    /// smallest such value >= the request.
    #[test]
    fn shape_round_up_is_minimal(want in 1u32..10_000, m in 1u32..64) {
        for shape in [
            AllocShape::Any,
            AllocShape::PowerOfTwo,
            AllocShape::Square,
            AllocShape::MultipleOf(m),
        ] {
            let got = shape.round_up(want);
            prop_assert!(got >= want);
            prop_assert!(shape.allows(got), "{shape:?}({want}) -> {got}");
            // Minimality: nothing between want and got satisfies it.
            if got > want {
                for candidate in want..got {
                    prop_assert!(!shape.allows(candidate));
                }
            }
        }
    }

    /// Parallelism levels are monotone in level and clamped.
    #[test]
    fn parallelism_levels_monotone(base in 1u32..100, max_level in 0u32..6) {
        let map = ParallelismMap::unconstrained(base, max_level);
        let mut prev = 0;
        for level in 0..=max_level + 2 {
            let nodes = map.nodes_for_level(level);
            prop_assert!(nodes >= prev);
            prev = nodes;
        }
        prop_assert_eq!(
            map.nodes_for_level(max_level),
            map.nodes_for_level(max_level + 5)
        );
    }

    /// Queue models: samples are non-negative and constant/uniform
    /// respect their bounds.
    #[test]
    fn queue_samples_in_bounds(seed in any::<u64>(), lo_s in 0u64..100, span_s in 0u64..100) {
        let mut rng = SeedSeq::new(seed).rng(0);
        let lo = Dur::from_secs(lo_s);
        let hi = Dur::from_secs(lo_s + span_s);
        let uniform = QueueModel::Uniform { lo, hi };
        for _ in 0..50 {
            let d = uniform.sample(&mut rng);
            prop_assert!(d >= lo && d <= hi);
        }
        let exp = QueueModel::Exponential { mean: Dur::from_secs(10) };
        for _ in 0..50 {
            let _ = exp.sample(&mut rng); // must not panic; >= 0 by type
        }
    }
}
