//! Runtime lock-rank tracker for the daemon's documented lock hierarchy.
//!
//! The static half of this contract lives in `crates/core/LOCKS.md` (the
//! machine-readable registry) and is enforced syntactically by
//! `cargo run -p simlint`. This module is the dynamic half: a
//! `cfg(debug_assertions)`-gated thread-local stack of currently-held
//! ranks, asserted on every acquisition of a documented lock. Debug
//! builds (and therefore every tier-1 `cargo test` run) panic the moment
//! any thread acquires locks out of order or calls a blocking primitive
//! while holding a lock whose registry row forbids blocking — the same
//! ordering the lint checks on the source text, but across function and
//! crate boundaries the syntactic pass cannot see (e.g. cache eviction
//! inside the DV engine touching the `HitIndex` write lock while the
//! caller holds a DV shard).
//!
//! In release builds every function here compiles to nothing: [`held`]
//! returns a zero-sized guard, [`assert_blocking_ok`] is empty, and
//! [`checks`] returns 0.
//!
//! # Rules
//!
//! * A lock may be acquired only while every rank already held by the
//!   current thread is **strictly greater** than the new lock's level.
//!   Equal levels are forbidden too — that is what outlaws taking two DV
//!   shard locks at once.
//! * While any held rank has `blocking: false`, calling a blocking
//!   primitive (file write/fsync, process spawn/kill, sleep, socket
//!   send) is a bug; such primitives call [`assert_blocking_ok`].
//!
//! The numeric levels and blocking flags are mirrored in
//! `crates/core/LOCKS.md`; simlint cross-checks that the constants below
//! and the registry agree, so neither can drift alone.

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};

/// One row of the lock-rank registry: a documented lock (or family of
/// locks that are never nested with each other) and its acquisition
/// level. Higher levels are acquired first; see the module doc.
#[derive(Clone, Copy, Debug)]
pub struct Rank {
    /// Acquisition level. A new lock must be strictly below every held
    /// level.
    pub level: u16,
    /// Registry name, matching the `name` column in `LOCKS.md`.
    pub name: &'static str,
    /// Whether blocking operations are permitted while this lock is
    /// held. `false` means the Effects-outbox rule applies: collect
    /// under the lock, effect after release.
    pub blocking: bool,
}

/// Reaper park/wake signal (std mutex + condvar). Held across timed
/// condvar waits and while polling `supervision_due`/`has_leases`, so it
/// sits above everything and allows blocking.
pub const REAP_SIGNAL: Rank = Rank { level: 70, name: "reap-signal", blocking: true };
/// Shutdown quiesce signal (std mutex + condvar); held across the
/// idle-shard poll during drain.
pub const QUIESCE: Rank = Rank { level: 70, name: "quiesce", blocking: true };
/// Takeover interval-priming set. Deliberately held across the storage
/// rescan and the per-key shard locks while a takeover is primed.
pub const TAKEOVER_PRIMED: Rank = Rank { level: 60, name: "takeover-primed", blocking: true };
/// Effect-pool per-shard queue mutex (tier 1c). A submitting reactor
/// shard parks on the queue condvar while the queue is full
/// (backpressure), so blocking is allowed while it is held; it is never
/// nested with any other documented lock.
pub const EFFECT_QUEUE: Rank = Rank { level: 50, name: "effect-queue", blocking: true };
/// Per-key-range DV shard mutex (tier 2 in the server doc). The hot
/// lock: everything under it must be pure state-machine work.
pub const DV_SHARD: Rank = Rank { level: 40, name: "dv-shard", blocking: false };
/// `HitIndex` shard `RwLock` (tier 1). Taken on the lock-free fast path
/// and, for writes, under a DV shard lock during publish/evict.
pub const HIT_INDEX: Rank = Rank { level: 30, name: "hit-index", blocking: false };
/// Daemon WAL mutex (tier 1b). Its entire purpose is batched file I/O,
/// so blocking is allowed *under it* — but it is a leaf: no other
/// documented lock may be acquired while it is held.
pub const WAL: Rank = Rank { level: 20, name: "wal", blocking: true };
/// Launch ledger mutex (tier 4): bookkeeping only; launcher and socket
/// I/O happen strictly after release.
pub const LEDGER: Rank = Rank { level: 20, name: "ledger", blocking: false };
/// Client lease table mutex.
pub const LEASES: Rank = Rank { level: 20, name: "leases", blocking: false };
/// Reactor connection-registry shard mutex (tier 3 writer routing).
pub const REACTOR_REGISTRY: Rank = Rank { level: 15, name: "reactor-registry", blocking: false };
/// Reactor cross-thread inbox mutex.
pub const REACTOR_INBOX: Rank = Rank { level: 10, name: "reactor-inbox", blocking: false };

#[cfg(debug_assertions)]
static CHECKS: AtomicU64 = AtomicU64::new(0);

#[cfg(debug_assertions)]
mod imp {
    use super::{Rank, CHECKS};
    use std::cell::RefCell;
    use std::sync::atomic::Ordering;

    struct HeldEntry {
        id: u64,
        level: u16,
        name: &'static str,
        blocking: bool,
    }

    thread_local! {
        static STACK: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
        static NONBLOCKING_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }

    pub fn mark_thread_nonblocking() {
        NONBLOCKING_THREAD.with(|f| f.set(true));
    }

    pub fn thread_is_nonblocking() -> bool {
        NONBLOCKING_THREAD.with(|f| f.get())
    }

    /// Debug guard recording one held rank; removal is by unique id so
    /// guards may drop out of LIFO order (e.g. a rank guard outliving
    /// the mutex guard it brackets).
    pub struct Held {
        id: u64,
    }

    pub fn held(rank: Rank) -> Held {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        let id = NEXT_ID.with(|n| {
            let mut n = n.borrow_mut();
            *n += 1;
            *n
        });
        // Check and push under separate borrows: a panic here unwinds
        // through the Drop impls of already-held guards, which need to
        // re-borrow the stack.
        let worst = STACK.with(|s| s.borrow().iter().map(|e| (e.level, e.name)).min());
        if let Some((level, name)) = worst {
            assert!(
                rank.level < level,
                "lock-rank violation: acquiring '{}' (level {}) while holding '{}' (level {}); \
                 see crates/core/LOCKS.md",
                rank.name,
                rank.level,
                name,
                level,
            );
        }
        STACK.with(|s| {
            s.borrow_mut().push(HeldEntry {
                id,
                level: rank.level,
                name: rank.name,
                blocking: rank.blocking,
            })
        });
        Held { id }
    }

    impl Drop for Held {
        fn drop(&mut self) {
            STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().position(|e| e.id == self.id) {
                    s.remove(pos);
                }
            });
        }
    }

    pub fn assert_blocking_ok(what: &str) {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        if thread_is_nonblocking() {
            panic!(
                "blocking operation '{what}' on a non-blocking thread (a reactor shard with \
                 the effect pool active); submit it through the effect tier — \
                 see crates/core/LOCKS.md",
            );
        }
        let offender = STACK.with(|s| {
            s.borrow().iter().find(|e| !e.blocking).map(|e| (e.name, e.level))
        });
        if let Some((name, level)) = offender {
            panic!(
                "blocking operation '{what}' while holding non-blocking lock '{name}' \
                 (level {level}); route the effect through the outbox — see crates/core/LOCKS.md",
            );
        }
    }

    pub fn assert_none_held_below(level: u16, what: &str) {
        CHECKS.fetch_add(1, Ordering::Relaxed);
        let offender = STACK.with(|s| {
            s.borrow().iter().find(|e| e.level < level).map(|e| (e.name, e.level))
        });
        if let Some((name, held_level)) = offender {
            panic!(
                "'{what}' entered while holding '{name}' (level {held_level} < {level}); \
                 this inverts the lock hierarchy — see crates/core/LOCKS.md",
            );
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::Rank;

    /// Zero-sized no-op guard (release builds).
    pub struct Held;

    #[inline(always)]
    pub fn held(_rank: Rank) -> Held {
        Held
    }

    #[inline(always)]
    pub fn mark_thread_nonblocking() {}

    #[inline(always)]
    pub fn thread_is_nonblocking() -> bool {
        false
    }

    #[inline(always)]
    pub fn assert_blocking_ok(_what: &str) {}

    #[inline(always)]
    pub fn assert_none_held_below(_level: u16, _what: &str) {}
}

pub use imp::Held;

/// Records `rank` as held by the current thread until the returned guard
/// drops, asserting it is strictly below every rank already held. Call
/// immediately before acquiring the corresponding lock so the rank
/// ordering is checked even if the lock call itself would deadlock.
/// No-op in release builds.
#[inline]
pub fn held(rank: Rank) -> Held {
    imp::held(rank)
}

/// Asserts no lock whose registry row forbids blocking is currently held
/// by this thread, and that the thread itself has not been marked
/// non-blocking via [`mark_thread_nonblocking`]. Blocking primitives on
/// daemon paths (WAL flush/sync, process launch, storage delete) call
/// this at entry. No-op in release builds.
#[inline]
pub fn assert_blocking_ok(what: &str) {
    imp::assert_blocking_ok(what);
}

/// Marks the current thread as forbidden from calling blocking
/// primitives at all, held locks or not. Reactor shard threads call this
/// when the effect-execution tier is active: with helpers available
/// there is no legitimate reason for a shard thread to touch disk or the
/// process table, so every [`assert_blocking_ok`] site becomes a
/// thread-wide tripwire rather than a lock-scoped one. Irreversible for
/// the thread's lifetime; no-op in release builds.
#[inline]
pub fn mark_thread_nonblocking() {
    imp::mark_thread_nonblocking();
}

/// Whether [`mark_thread_nonblocking`] was called on this thread.
/// Always `false` in release builds.
#[inline]
pub fn thread_is_nonblocking() -> bool {
    imp::thread_is_nonblocking()
}

/// Asserts the current thread holds no rank strictly below `level`.
/// Used at entry to subsystems that may legitimately run under a lock of
/// exactly `level` but must never be re-entered from deeper in the
/// hierarchy (e.g. the DV state machine under its shard lock). No-op in
/// release builds.
#[inline]
pub fn assert_none_held_below(level: u16, what: &str) {
    imp::assert_none_held_below(level, what);
}

/// Total rank checks performed process-wide (acquisitions plus blocking
/// assertions). Tests use this to prove the tracker was actually
/// exercised — a passing run with `checks() == 0` would prove nothing.
/// Always 0 in release builds.
pub fn checks() -> u64 {
    #[cfg(debug_assertions)]
    {
        CHECKS.load(Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    fn catches(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
        std::panic::catch_unwind(f).is_err()
    }

    #[test]
    fn in_order_acquisition_is_clean() {
        let before = checks();
        let _a = held(TAKEOVER_PRIMED);
        let _b = held(DV_SHARD);
        let _c = held(LEDGER);
        assert!(checks() >= before + 3);
    }

    #[test]
    fn out_of_order_acquisition_panics() {
        assert!(catches(|| {
            let _a = held(DV_SHARD);
            let _b = held(TAKEOVER_PRIMED);
        }));
    }

    #[test]
    fn equal_rank_acquisition_panics() {
        // Two DV shard locks at once is the canonical forbidden pattern.
        assert!(catches(|| {
            let _a = held(DV_SHARD);
            let _b = held(DV_SHARD);
        }));
    }

    #[test]
    fn blocking_under_shard_panics_but_under_wal_is_fine() {
        assert!(catches(|| {
            let _a = held(DV_SHARD);
            assert_blocking_ok("fsync");
        }));
        let _w = held(WAL);
        assert_blocking_ok("fsync");
    }

    #[test]
    fn out_of_lifo_release_is_supported() {
        let a = held(DV_SHARD);
        let b = held(LEDGER);
        drop(a);
        drop(b);
        // After both drop, the stack is empty again.
        let _fresh = held(REAP_SIGNAL);
    }

    #[test]
    fn nonblocking_thread_trips_blocking_assert_with_no_locks_held() {
        // Run in a scratch thread: the mark is irreversible and must not
        // leak into sibling tests on this thread.
        std::thread::spawn(|| {
            assert!(!thread_is_nonblocking());
            assert_blocking_ok("fsync");
            mark_thread_nonblocking();
            assert!(thread_is_nonblocking());
            assert!(catches(|| assert_blocking_ok("fsync")));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn none_held_below_guards_reentry() {
        let _a = held(DV_SHARD);
        assert_none_held_below(DV_SHARD.level, "handle_into");
        let l = held(LEDGER);
        assert!(catches(move || {
            let _l = l;
            assert_none_held_below(DV_SHARD.level, "handle_into");
        }));
    }
}
