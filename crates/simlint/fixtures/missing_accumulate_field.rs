// Fixture: a DvStats field missing from accumulate(). `evictions`
// is declared and emitted by the bench, but the roll-up uses a `..`
// rest pattern and never touches it — both are findings. Not
// compiled — consumed by include_str! in tests.

pub struct DvStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl DvStats {
    pub fn accumulate(&mut self, other: &DvStats) {
        let DvStats { hits, misses, .. } = *other;
        self.hits += hits;
        self.misses += misses;
    }
}
