//! # simfs-core — the SimFS Data Virtualizer
//!
//! SimFS virtualizes simulation output the way an OS virtualizes memory
//! (§II): analyses see the complete set of output steps, but only a
//! subset is materialized; accesses to missing steps trigger
//! re-simulations restarted from checkpoint files. This crate implements
//! the paper's contribution:
//!
//! * [`model`] — the simulation model (§II-A): output/restart cadences
//!   `Δd`/`Δr`, the restart mapping `R(d_i)`, re-simulation ranges,
//!   miss costs, and the per-context configuration.
//! * [`dv`] — the **Data Virtualizer**: a deterministic, I/O-free state
//!   machine handling acquire/release, miss-triggered launches,
//!   reference counting, caching (§III-A/D) and prefetch-driven launch
//!   and kill decisions (§IV). Events in, actions out; no clocks, no
//!   sockets — both the virtual-time harness and the TCP daemon drive
//!   the same logic.
//! * [`prefetch`] — per-client prefetch agents (§IV-B): stride/direction
//!   detection, restart-latency masking, bandwidth matching with the
//!   doubling ramp, backward prefetching, and pollution resets.
//! * [`perfmodel`] — the performance estimators: exponential moving
//!   averages of `alpha_sim`, `tau_sim`, `tau_cli` (§IV-C1c).
//! * [`driver`] — simulation drivers (§III-B): naming conventions,
//!   key extraction, job creation (the paper's LUA scripts, as a Rust
//!   trait + pattern driver).
//! * [`mod@replay`] — synchronous workload replay: computes `V(γ)`
//!   (number of re-simulated steps) for the cost models and Fig. 5.
//! * [`vharness`] — the virtual-time experiment harness tying the DV to
//!   `simkit`'s engine and `simbatch`'s cluster (Figs. 16–19).
//! * [`wire`], [`server`], [`client`], [`intercept`] — the real deal: a
//!   length-prefixed TCP protocol (the paper's "control messages
//!   (TCP/IP)", Fig. 4), the daemon, the DVLib client API
//!   (`SIMFS_Init/Acquire/Wait/.../Bitrep`, §III-C), and the
//!   transparent-mode I/O facade (Table I).
//! * [`reactor`], [`sys`] — the daemon's sharded epoll front-end: a
//!   fixed pool of event-loop threads serves every connection (raw
//!   `extern "C"` epoll/eventfd bindings; no external dependency).
//! * [`effectpool`] — the effect-execution tier: bounded per-shard
//!   queues feeding helper threads that own every blocking effect
//!   (sim launch/kill, WAL group-fsync, eviction deletes, storage
//!   reads), so a reactor shard never waits on disk or `fork`.

pub mod client;
pub mod driver;
pub mod dv;
pub mod effectpool;
pub mod intercept;
pub mod model;
pub mod perfmodel;
pub mod prefetch;
pub mod reactor;
pub mod replay;
pub mod server;
pub mod sys;
pub mod vharness;
pub mod wire;

pub use client::{AcquireRequest, FailError, SimfsClient, SimfsStatus};
pub use driver::{PatternDriver, SimDriver};
pub use dv::{
    ClientId, DataVirtualizer, DvAction, DvEvent, DvRouter, DvStats, FailCode, LaunchReason,
    ShardedDv, SimId,
};
pub use model::{ContextCfg, StepMath};
pub use replay::{replay, ReplayStats};
pub use server::{DaemonTuning, DvServer, ServerConfig};
pub use vharness::{AnalysisResult, VirtualExperiment};
