//! Fast hashing for `u64` step keys.
//!
//! Every hot path in the virtualizer — policy membership, cache
//! entries, pending-production maps — is keyed by `u64` output-step
//! keys. The standard library's SipHash is DoS-resistant but slow for
//! short integer keys (see the Rust Performance Book's hashing
//! chapter); step keys come from the DV itself, not an adversary, so a
//! single SplitMix64 round is both sufficient (strong avalanche, unlike
//! a pure identity hash, so sequential keys don't collide structurally)
//! and several times faster.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// One-round SplitMix64 finalizer.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hasher specialized for single `u64` writes (step keys).
#[derive(Clone, Copy, Debug, Default)]
pub struct U64Hasher {
    state: u64,
}

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = mix(self.state ^ n);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 keys (rare in this crate): fold 8-byte
        // chunks through the mixer.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
}

/// `BuildHasher` for [`U64Hasher`].
#[derive(Clone, Copy, Debug, Default)]
pub struct U64BuildHasher;

impl BuildHasher for U64BuildHasher {
    type Hasher = U64Hasher;

    #[inline]
    fn build_hasher(&self) -> U64Hasher {
        U64Hasher::default()
    }
}

/// A `HashMap` keyed by step keys.
pub type U64Map<V> = HashMap<u64, V, U64BuildHasher>;
/// A `HashSet` of step keys.
pub type U64Set = HashSet<u64, U64BuildHasher>;

/// An empty [`U64Map`].
pub fn u64_map<V>() -> U64Map<V> {
    HashMap::with_hasher(U64BuildHasher)
}

/// An empty [`U64Set`].
pub fn u64_set() -> U64Set {
    HashSet::with_hasher(U64BuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: U64Map<&str> = u64_map();
        m.insert(1, "a");
        m.insert(u64::MAX, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&u64::MAX), Some(&"b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sequential_keys_hash_apart() {
        // The avalanche property that makes this safe for HashMap
        // bucketing of sequential step keys.
        let h = |k: u64| {
            let mut hasher = U64BuildHasher.build_hasher();
            hasher.write_u64(k);
            hasher.finish()
        };
        let a = h(100);
        let b = h(101);
        assert!((a ^ b).count_ones() > 16, "poor avalanche: {a:x} vs {b:x}");
    }

    #[test]
    fn byte_fallback_is_consistent() {
        let mut h1 = U64BuildHasher.build_hasher();
        h1.write(b"hello world bytes");
        let mut h2 = U64BuildHasher.build_hasher();
        h2.write(b"hello world bytes");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = U64BuildHasher.build_hasher();
        h3.write(b"hello world bytez");
        assert_ne!(h1.finish(), h3.finish());
    }
}
