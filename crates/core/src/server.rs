//! The DV daemon: TCP front-end of the Data Virtualizer (Fig. 4).
//!
//! One daemon serves one or more *simulation contexts* (§II: "for a
//! given simulation, scientists identify multiple simulation contexts
//! that are made available to the analyses through SimFS"); clients
//! select a context by name in their hello handshake — the protocol
//! twin of the paper's `SIMFS_Init(sim_context, ...)` / environment
//! variable. Analysis clients connect through DVLib
//! ([`crate::client`]); re-simulations are spawned through a
//! [`JobLauncher`] and connect back as simulator clients to report
//! `SimStarted` / `FileProduced` / `SimFinished`.
//!
//! # Concurrency model
//!
//! Two connection front-ends share one protocol core
//! (see [`Frontend`]):
//!
//! * **Epoll reactor (default).** min(cores, 8) reactor threads, each
//!   owning an epoll instance and a disjoint subset of connections
//!   ([`crate::reactor`]). Requests are dispatched on the owning shard
//!   thread; responses to *other* clients are routed to their owning
//!   shard's outbox and flushed there. Daemon thread count is fixed
//!   (shards + accept + reaper) regardless of client count.
//! * **Thread-per-connection (legacy).** One OS thread per client,
//!   blocking reads and writes. Kept behind
//!   [`ServerConfig::frontend`] for one release so `bench_daemon
//!   --frontend {threads,epoll}` can A/B them; it caps concurrency at
//!   OS thread limits.
//!
//! The hot path underneath is lock-minimized and write-coalesced:
//!
//! * **Split locks.** Each context runs the DV state machine under one
//!   `Mutex<DvCore>` (pure state transitions, no I/O) and routes client
//!   writers through a separate [`WriterTable`] (sharded stream map for
//!   the threaded front-end, the reactor registry for epoll), so
//!   threads notifying different clients do not contend on the DV lock
//!   or on one another.
//! * **Collect under lock, effect after release.** A transition locks
//!   the DV, runs [`DataVirtualizer::handle_into`] into a reusable
//!   scratch buffer, resolves actions into an [`Effects`] value
//!   (response outbox + launch/kill/evict lists) and unlocks. Response
//!   *encoding*, socket writes, job spawning and file deletion all
//!   happen outside the DV lock.
//! * **Coalesced wire I/O.** All responses a transition produces for
//!   one destination client are encoded into a single
//!   [`wire::FrameBatch`] and delivered in one write; request frames
//!   are drained through a buffered [`wire::FrameReader`], so a burst
//!   of queued control messages costs one syscall each way. The bytes
//!   on the wire are identical to frame-at-a-time I/O.
//! * **Launch ledger.** Because launches/kills happen outside the DV
//!   lock, a prefetch kill could otherwise race a not-yet-effected
//!   launch of the same sim. A small per-context ledger serializes
//!   *only* job-control bookkeeping (launch intents are registered
//!   under the DV lock; the ledger lock itself is never held across
//!   launcher I/O) and cancels launches whose kill won the race.
//!   Deferred eviction deletes re-check the cache under the DV lock so
//!   an overlapping re-production cannot lose its file to a stale
//!   eviction.
//! * **Event-driven maintenance.** The job reaper parks on a condvar
//!   while no jobs are in flight (an idle daemon makes zero syscalls)
//!   and polls launchers only while something is running; shutdown
//!   quiesce waits on a condvar notified as sims complete instead of
//!   spinning, and the accept loop is unblocked by a shutdown eventfd
//!   (epoll) or a non-blocking poll (legacy) — never by the old
//!   connect-to-self hack.
//!
//! One consequence of effecting writes outside the lock: responses to
//! *different* requests of one client may interleave differently than
//! under the old coarse lock (e.g. a `Ready` from a production racing
//! ahead of the `Queued` estimate for the same key). Per-request
//! semantics are unchanged — DVLib treats `Queued` as informational.
//!
//! This remains the classic coordination-daemon shape — the data path
//! (bulk file I/O) never goes through the daemon, only control messages
//! do, exactly as the paper separates control (TCP) from data (parallel
//! file system).

use crate::driver::SimDriver;
use crate::dv::{ClientId, DataVirtualizer, DvAction, DvEvent, SimId};
use crate::model::ContextCfg;
use crate::reactor::{ConnCtx, Reactor};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLIN};
use crate::wire::{self, ClientKind, FrameBatch, FrameReader, Request, Response};
use parking_lot::Mutex;
use simbatch::{JobId, JobLauncher, SpawnSpec};
use simcache::U64Set;
use simkit::SimTime;
use simstore::StorageArea;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::RangeInclusive;
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Environment variables passed to launched simulator jobs.
pub mod env_keys {
    /// Daemon address (`host:port`).
    pub const DV_ADDR: &str = "SIMFS_DV_ADDR";
    /// DV-assigned simulation id.
    pub const SIM_ID: &str = "SIMFS_SIM_ID";
    /// Context name.
    pub const CONTEXT: &str = "SIMFS_CONTEXT";
    /// Storage-area directory the simulator writes into.
    pub const DATA_DIR: &str = "SIMFS_DATA_DIR";
}

/// Which connection front-end the daemon runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Frontend {
    /// Sharded epoll reactor: min(cores, 8) event-loop threads serve
    /// every connection; daemon thread count is independent of client
    /// count.
    #[default]
    Epoll,
    /// Legacy thread-per-connection front-end. Kept for one release
    /// for A/B benchmarking (`bench_daemon --frontend threads`); to be
    /// removed once the reactor has baked.
    Threads,
}

/// Daemon configuration for one simulation context.
pub struct ServerConfig {
    /// The context (cadences, cache, policy, `s_max`, prefetching).
    pub ctx: ContextCfg,
    /// Simulator driver (naming, job creation, checksums).
    pub driver: Arc<dyn SimDriver>,
    /// Storage area backing the context.
    pub storage: StorageArea,
    /// Job launcher for re-simulations.
    pub launcher: Arc<dyn JobLauncher>,
    /// Recorded checksums of the initial simulation (`SIMFS_Bitrep`
    /// reference data): key → checksum.
    pub checksums: HashMap<u64, u64>,
    /// Connection front-end. Daemon-wide: with
    /// [`start_multi`](DvServer::start_multi), the first context's
    /// choice applies to the whole daemon.
    pub frontend: Frontend,
}

/// Writer-map shard count (threaded front-end). Client ids are assigned
/// sequentially, so a simple modulo spreads registration and
/// notification traffic evenly.
const WRITER_SHARDS: usize = 8;

/// The state guarded by the per-context DV lock: the state machine, the
/// request bookkeeping its notifications resolve through, and the
/// reusable action scratch buffer.
struct DvCore {
    dv: DataVirtualizer,
    /// (client, key) → request ids awaiting Ready/Failed.
    pending: HashMap<(ClientId, u64), Vec<u64>>,
    /// Scratch for [`DataVirtualizer::handle_into`]; reused across
    /// transitions so the hot path allocates nothing.
    actions: Vec<DvAction>,
}

/// Job-control ledger: serializes launch/kill effects (only those) and
/// cancels launches whose kill won the race to the launcher.
#[derive(Default)]
struct LaunchLedger {
    /// Sims whose `Launch` action has been collected (registered under
    /// the DV lock) but not yet picked up by an effector thread. Lets a
    /// racing kill tell "launch still in flight" (cancel it) from "sim
    /// already completed" (drop it), so `cancelled` stays bounded.
    pending_launch: U64Set,
    /// Sims currently inside a `launcher.launch()` call (the ledger
    /// lock is dropped for the I/O; this set covers the gap).
    launching: U64Set,
    /// Sims handed to the launcher and not yet known-complete.
    launched: U64Set,
    /// Sims killed before their launch was effected.
    cancelled: U64Set,
}

impl LaunchLedger {
    /// Any job somewhere between "launch collected" and "known
    /// complete" — the condition under which the reaper must poll.
    fn jobs_in_flight(&self) -> bool {
        !(self.pending_launch.is_empty() && self.launching.is_empty() && self.launched.is_empty())
    }
}

/// Everything a DV transition wants done once the DV lock is released.
/// Owned by each connection/reaper context and reused, so a transition
/// allocates nothing in steady state.
#[derive(Default)]
struct Effects {
    /// Responses to send, in emission order.
    outbox: Vec<(ClientId, Response)>,
    /// Sims to launch.
    launches: Vec<(SimId, RangeInclusive<u64>, u32)>,
    /// Sims to kill.
    kills: Vec<SimId>,
    /// Output steps to delete from the storage area.
    evicts: Vec<u64>,
    /// Sims known complete (finished/failed): drop their ledger entry.
    completed: Vec<SimId>,
    /// Reusable per-destination write batches.
    batches: Vec<(ClientId, FrameBatch)>,
}

impl Effects {
    fn has_job_control(&self) -> bool {
        !self.launches.is_empty() || !self.kills.is_empty() || !self.completed.is_empty()
    }
}

/// Routes responses to client connections; the front-ends differ only
/// here.
enum WriterTable {
    /// Threaded front-end: client id → cloned write half, sharded.
    Threads(Vec<Mutex<HashMap<ClientId, TcpStream>>>),
    /// Epoll front-end: the reactor's registry routes to the owning
    /// shard, which performs the write.
    Reactor(Arc<Reactor>),
}

impl WriterTable {
    fn threads_shard(
        shards: &[Mutex<HashMap<ClientId, TcpStream>>],
        client: ClientId,
    ) -> &Mutex<HashMap<ClientId, TcpStream>> {
        &shards[(client % WRITER_SHARDS as u64) as usize]
    }

    /// Registers a threaded session's write half.
    ///
    /// # Panics
    /// Panics under the epoll front-end, which registers connections
    /// with the reactor at handshake time instead.
    fn register_stream(&self, client: ClientId, stream: TcpStream) {
        match self {
            WriterTable::Threads(shards) => {
                Self::threads_shard(shards, client).lock().insert(client, stream);
            }
            WriterTable::Reactor(_) => unreachable!("threaded session under epoll front-end"),
        }
    }

    fn unregister(&self, client: ClientId) {
        match self {
            WriterTable::Threads(shards) => {
                Self::threads_shard(shards, client).lock().remove(&client);
            }
            WriterTable::Reactor(reactor) => reactor.unregister(client),
        }
    }

    /// Delivers (and clears) one destination's batch. Departed clients
    /// are dropped silently on both paths.
    fn send_batch(&self, client: ClientId, batch: &mut FrameBatch) {
        match self {
            WriterTable::Threads(shards) => {
                let mut shard = Self::threads_shard(shards, client).lock();
                if let Some(stream) = shard.get_mut(&client) {
                    let _ = batch.write_to(stream);
                }
            }
            WriterTable::Reactor(reactor) => {
                // Borrowed send: a response to the dispatching
                // connection itself is staged with no allocation; only
                // cross-connection traffic is copied into an inbox.
                reactor.send_bytes(client, batch.as_bytes());
            }
        }
    }
}

/// Per-context runtime: the DV state machine plus its effectors.
struct CtxRuntime {
    name: String,
    state: Mutex<DvCore>,
    writers: WriterTable,
    ledger: Mutex<LaunchLedger>,
    driver: Arc<dyn SimDriver>,
    storage: StorageArea,
    launcher: Arc<dyn JobLauncher>,
    checksums: HashMap<u64, u64>,
}

/// Front-end machinery owned by the daemon.
enum FrontendRt {
    Threads,
    Epoll {
        reactor: Arc<Reactor>,
        /// Signalled at shutdown; registered in the accept loop's epoll
        /// alongside the listener.
        accept_wake: EventFd,
    },
}

struct Inner {
    contexts: HashMap<String, Arc<CtxRuntime>>,
    epoch: Instant,
    addr: SocketAddr,
    next_client: AtomicU64,
    shutdown: AtomicBool,
    frontend: FrontendRt,
    /// Wakes the reaper when jobs enter flight (and at shutdown); the
    /// guarded bool is the shutdown request.
    reap_signal: (StdMutex<bool>, Condvar),
    /// Notified whenever sims complete or die, so shutdown's quiesce
    /// wait is event-driven instead of a sleep poll.
    quiesce: (StdMutex<()>, Condvar),
}

impl Inner {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Routes a hello's context name; an empty name with exactly one
    /// context falls through to it (single-context deployments keep the
    /// pre-multi-context ergonomics).
    fn route(&self, name: &str) -> Option<&Arc<CtxRuntime>> {
        if let Some(ctx) = self.contexts.get(name) {
            return Some(ctx);
        }
        if name.is_empty() && self.contexts.len() == 1 {
            return self.contexts.values().next();
        }
        None
    }

    fn notify_reaper(&self) {
        let _guard = self.reap_signal.0.lock().unwrap();
        self.reap_signal.1.notify_all();
    }

    fn notify_quiesce(&self) {
        let _guard = self.quiesce.0.lock().unwrap();
        self.quiesce.1.notify_all();
    }
}

impl CtxRuntime {
    /// Resolves the actions of one DV transition into `fx` (called with
    /// the DV lock held; does no I/O).
    fn collect(&self, core: &mut DvCore, fx: &mut Effects) {
        let launches_before = fx.launches.len();
        for action in core.actions.drain(..) {
            match action {
                DvAction::NotifyReady { client, key } => {
                    if let Some(reqs) = core.pending.remove(&(client, key)) {
                        for req_id in reqs {
                            fx.outbox.push((client, Response::Ready { req_id, key }));
                        }
                    }
                }
                DvAction::NotifyFailed {
                    client,
                    key,
                    reason,
                } => {
                    if let Some(reqs) = core.pending.remove(&(client, key)) {
                        for req_id in reqs {
                            fx.outbox.push((
                                client,
                                Response::Failed {
                                    req_id,
                                    key,
                                    reason: reason.clone(),
                                },
                            ));
                        }
                    }
                }
                DvAction::Launch {
                    sim, keys, level, ..
                } => fx.launches.push((sim, keys, level)),
                DvAction::Kill { sim } => fx.kills.push(sim),
                DvAction::Evict { key } => fx.evicts.push(key),
            }
        }
        if fx.launches.len() > launches_before {
            // Register in-flight launches while the DV lock is still
            // held: any kill of these sims is collected strictly later,
            // so it will find them here (or in `launched`) and never
            // mistake a live launch for a completed sim. Launch events
            // are rare (one per re-simulation), so the extra lock is
            // off the hit path.
            let mut ledger = self.ledger.lock();
            for (sim, _, _) in &fx.launches[launches_before..] {
                ledger.pending_launch.insert(*sim);
            }
        }
    }

    /// Locks the DV, applies one event, and collects its effects.
    fn transition(&self, inner: &Inner, event: DvEvent, fx: &mut Effects) {
        let now = inner.now();
        let mut core = self.state.lock();
        let DvCore { dv, actions, .. } = &mut *core;
        dv.handle_into(now, event, actions);
        self.collect(&mut core, fx);
    }

    /// Encodes and delivers the outbox: one [`FrameBatch`] (one write)
    /// per destination client. Departed clients are dropped silently,
    /// matching the old behavior.
    fn flush_outbox(&self, fx: &mut Effects) {
        if fx.outbox.is_empty() {
            return;
        }
        // Group per destination, preserving per-client emission order.
        // Transitions touch a handful of clients, so linear scan beats
        // a map. Batch entries (and their buffers) are retained across
        // flushes — `used` counts the live prefix; entries past it are
        // cleared spares from earlier flushes with stale client ids.
        let mut used = 0;
        for (client, resp) in fx.outbox.drain(..) {
            match fx.batches[..used].iter_mut().find(|(c, _)| *c == client) {
                Some((_, batch)) => batch.push_response(&resp),
                None => {
                    if let Some((c, batch)) = fx.batches.get_mut(used) {
                        *c = client;
                        batch.push_response(&resp);
                    } else {
                        let mut batch = FrameBatch::new();
                        batch.push_response(&resp);
                        fx.batches.push((client, batch));
                    }
                    used += 1;
                }
            }
        }
        for (client, batch) in &mut fx.batches[..used] {
            self.writers.send_batch(*client, batch);
            batch.clear();
        }
    }

    /// Applies job-control effects. Returns sims whose launch failed
    /// (fed back as `SimFailed`). The ledger lock is held only for set
    /// bookkeeping — never across launcher I/O — because `collect`
    /// takes it while holding the DV lock; holding it through a slow
    /// job submission would convoy every transition on the context.
    fn apply_job_control(&self, inner: &Inner, fx: &mut Effects, failed: &mut Vec<SimId>) {
        if !fx.has_job_control() {
            return;
        }
        let mut to_kill: Vec<SimId> = Vec::new();
        let mut to_launch: Vec<(SimId, RangeInclusive<u64>, u32)> = Vec::new();
        {
            let mut ledger = self.ledger.lock();
            for sim in fx.kills.drain(..) {
                if ledger.launched.remove(&sim) {
                    to_kill.push(sim);
                } else if ledger.pending_launch.contains(&sim)
                    || ledger.launching.contains(&sim)
                {
                    // Kill won the race against a launch another thread
                    // has collected but not yet effected: cancel it.
                    ledger.cancelled.insert(sim);
                }
                // Neither pending, launching nor launched: the sim
                // already finished or failed; nothing to kill and
                // nothing to remember.
            }
            for (sim, keys, level) in fx.launches.drain(..) {
                ledger.pending_launch.remove(&sim);
                if ledger.cancelled.remove(&sim) {
                    continue;
                }
                ledger.launching.insert(sim);
                to_launch.push((sim, keys, level));
            }
            for sim in fx.completed.drain(..) {
                if ledger.launching.contains(&sim) {
                    // Completed before its launching thread finalized
                    // (possible with in-process launchers): route
                    // through `cancelled` so finalization below does
                    // not record a dead sim as launched.
                    ledger.cancelled.insert(sim);
                } else {
                    ledger.launched.remove(&sim);
                    ledger.cancelled.remove(&sim);
                }
            }
        }
        for sim in to_kill {
            let _ = self.launcher.kill(JobId(sim));
        }
        let launched_any = !to_launch.is_empty();
        for (sim, keys, level) in to_launch {
            let spec = self
                .driver
                .make_job(*keys.start(), *keys.end(), level)
                .env(env_keys::DV_ADDR, inner.addr.to_string())
                .env(env_keys::SIM_ID, sim.to_string())
                .env(env_keys::CONTEXT, &self.name)
                .env(
                    env_keys::DATA_DIR,
                    self.storage.root().to_string_lossy().to_string(),
                );
            let launched = self.launcher.launch(JobId(sim), &spec).is_ok();
            let kill_now = {
                let mut ledger = self.ledger.lock();
                ledger.launching.remove(&sim);
                if !launched {
                    ledger.cancelled.remove(&sim);
                    failed.push(sim);
                    false
                } else if ledger.cancelled.remove(&sim) {
                    // A kill (or an early completion) landed while the
                    // launcher ran: take the job straight back down.
                    true
                } else {
                    ledger.launched.insert(sim);
                    false
                }
            };
            if kill_now {
                let _ = self.launcher.kill(JobId(sim));
            }
        }
        if launched_any {
            // Jobs are now in flight: the reaper must start polling for
            // orphaned exits.
            inner.notify_reaper();
        }
    }

    /// Effects everything a transition collected: socket writes, job
    /// control, evictions. Launch failures feed back as `SimFailed`
    /// events until quiescence. Never holds the DV lock while doing
    /// I/O.
    fn commit(&self, inner: &Inner, fx: &mut Effects) {
        let mut failed: Vec<SimId> = Vec::new();
        let mut sims_retired = false;
        loop {
            sims_retired |= !fx.kills.is_empty() || !fx.completed.is_empty();
            self.flush_outbox(fx);
            self.apply_job_control(inner, fx, &mut failed);
            if !fx.evicts.is_empty() {
                // The evictions were decided under a DV lock we have
                // since released: an overlapping production may have
                // re-materialized a key meanwhile. Re-check (one lock
                // for the whole batch) so we do not delete files the
                // cache now believes in. The residual write-then-delete
                // window is inherent: simulators publish files before
                // their FileProduced message reaches the DV.
                {
                    let core = self.state.lock();
                    fx.evicts.retain(|&key| !core.dv.is_cached(key));
                }
                for key in fx.evicts.drain(..) {
                    let name = self.driver.filename_of(key);
                    let _ = self.storage.delete(&name);
                }
            }
            if failed.is_empty() {
                break;
            }
            for sim in failed.drain(..) {
                fx.completed.push(sim);
                self.transition(inner, DvEvent::SimFailed { sim }, fx);
            }
        }
        if sims_retired {
            // Sims finished, failed or were killed: a quiesce waiter
            // (shutdown) may now observe an idle context.
            inner.notify_quiesce();
        }
    }

    /// Processes one analysis request; `false` ends the session.
    /// Shared by both front-ends.
    fn handle_analysis_request(
        &self,
        inner: &Inner,
        client: ClientId,
        req: Request,
        fx: &mut Effects,
    ) -> bool {
        match req {
            Request::Acquire { req_id, keys } => {
                // One DV lock acquisition for the whole request; all
                // resulting responses leave as one coalesced batch per
                // destination after release.
                {
                    let now = inner.now();
                    let mut core = self.state.lock();
                    for &key in &keys {
                        // Register interest before handling so a
                        // concurrent production cannot race past the
                        // notification.
                        core.pending.entry((client, key)).or_default().push(req_id);
                        let DvCore { dv, actions, .. } = &mut *core;
                        dv.handle_into(now, DvEvent::Acquire { client, key }, actions);
                        self.collect(&mut core, fx);
                        // Still pending? Tell the client it is queued,
                        // with the wait estimate (§III-C).
                        if core.pending.contains_key(&(client, key)) {
                            let est = core
                                .dv
                                .estimate_wait(key)
                                .map_or(0, |d| d.as_nanos() / 1_000_000);
                            fx.outbox.push((
                                client,
                                Response::Queued {
                                    req_id,
                                    key,
                                    est_wait_ms: est,
                                },
                            ));
                        }
                    }
                }
                self.commit(inner, fx);
                true
            }
            Request::Release { key } => {
                self.transition(inner, DvEvent::Release { client, key }, fx);
                self.commit(inner, fx);
                true
            }
            Request::Bitrep { req_id, key } => {
                // Pure storage I/O: never touches the DV lock.
                let name = self.driver.filename_of(key);
                let result = self.storage.read(&name).ok().map(|bytes| {
                    let sum = self.driver.checksum(&bytes);
                    match self.checksums.get(&key) {
                        Some(recorded) => (sum == *recorded, true),
                        None => (false, false),
                    }
                });
                let resp = match result {
                    Some((matches, known)) => Response::BitrepResult {
                        req_id,
                        key,
                        matches,
                        known,
                    },
                    None => Response::Failed {
                        req_id,
                        key,
                        reason: "file not materialized; acquire it first".to_string(),
                    },
                };
                fx.outbox.push((client, resp));
                self.flush_outbox(fx);
                true
            }
            Request::Status { req_id } => {
                let resp = {
                    let core = self.state.lock();
                    let stats = core.dv.stats();
                    Response::StatusInfo {
                        req_id,
                        hits: stats.hits,
                        misses: stats.misses,
                        restarts: stats.restarts,
                        produced_steps: stats.produced_steps,
                        active_sims: core.dv.active_sims() as u64,
                    }
                };
                fx.outbox.push((client, resp));
                self.flush_outbox(fx);
                true
            }
            Request::Bye => false,
            _ => {
                fx.outbox.push((
                    client,
                    Response::Error {
                        message: "unexpected analysis request".to_string(),
                    },
                ));
                self.flush_outbox(fx);
                false
            }
        }
    }

    /// Tears down an analysis session: drops the writer, clears pending
    /// request bookkeeping, releases the client's pins via
    /// `ClientGone`. Shared by both front-ends.
    fn analysis_disconnect(&self, inner: &Inner, client: ClientId, fx: &mut Effects) {
        self.writers.unregister(client);
        {
            let mut core = self.state.lock();
            core.pending.retain(|(c, _), _| *c != client);
        }
        self.transition(inner, DvEvent::ClientGone { client }, fx);
        self.commit(inner, fx);
    }

    /// Processes one simulator request; `false` ends the session.
    /// Shared by both front-ends.
    fn handle_simulator_request(
        &self,
        inner: &Inner,
        sim: SimId,
        req: Request,
        finished: &mut bool,
        fx: &mut Effects,
    ) -> bool {
        let event = match req {
            Request::SimStarted => DvEvent::SimStarted { sim },
            Request::FileProduced { key, size } => DvEvent::FileProduced { sim, key, size },
            Request::SimFinished => {
                *finished = true;
                fx.completed.push(sim);
                DvEvent::SimFinished { sim }
            }
            _ => return false, // Bye or protocol error: drop the session
        };
        self.transition(inner, event, fx);
        self.commit(inner, fx);
        !*finished
    }

    /// Tears down a simulator session; a connection dying before
    /// `SimFinished` means the re-simulation failed.
    fn simulator_disconnect(&self, inner: &Inner, sim: SimId, finished: bool, fx: &mut Effects) {
        if !finished {
            fx.completed.push(sim);
            self.transition(inner, DvEvent::SimFailed { sim }, fx);
            self.commit(inner, fx);
        }
        // Collect any already-exited jobs while we are here (launchers
        // report each exit exactly once, so the results must be applied,
        // not dropped — a discarded exit would hang its waiters forever).
        self.reap_exits(inner, fx);
    }

    /// Drains the launcher's exited jobs and applies them as DV events.
    /// Unknown sims (already finished via the protocol) are no-ops
    /// inside the DV.
    fn reap_exits(&self, inner: &Inner, fx: &mut Effects) {
        for (job, success) in self.launcher.reap() {
            let event = if success {
                DvEvent::SimFinished { sim: job.0 }
            } else {
                DvEvent::SimFailed { sim: job.0 }
            };
            fx.completed.push(job.0);
            self.transition(inner, event, fx);
            self.commit(inner, fx);
        }
    }
}

/// A running DV daemon; dropping it (or calling
/// [`shutdown`](DvServer::shutdown)) stops the accept loop.
pub struct DvServer {
    inner: Arc<Inner>,
}

impl DvServer {
    /// Binds and starts a single-context daemon. Pre-existing files in
    /// the storage area (the initial simulation's output) are primed
    /// into the cache.
    pub fn start(config: ServerConfig, bind: &str) -> io::Result<DvServer> {
        Self::start_multi(vec![config], bind)
    }

    /// Binds and starts a daemon serving several simulation contexts
    /// (§II) on one address; clients route by context name at hello
    /// time. The first context's [`ServerConfig::frontend`] selects the
    /// connection front-end for the whole daemon.
    ///
    /// # Panics
    /// Panics on duplicate context names — a configuration error.
    pub fn start_multi(configs: Vec<ServerConfig>, bind: &str) -> io::Result<DvServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;

        let frontend = configs.first().map(|c| c.frontend).unwrap_or_default();
        let frontend_rt = match frontend {
            Frontend::Threads => FrontendRt::Threads,
            Frontend::Epoll => {
                let shards = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                FrontendRt::Epoll {
                    reactor: Reactor::start(shards)?,
                    accept_wake: EventFd::new()?,
                }
            }
        };

        let mut contexts = HashMap::new();
        let mut prime_work: Vec<(Arc<CtxRuntime>, Vec<u64>)> = Vec::new();
        for config in configs {
            let name = config.ctx.name.clone();
            let mut dv = DataVirtualizer::new(config.ctx);

            // Prime: everything already on disk is cached state.
            let mut evicted = Vec::new();
            for file in config.storage.list()? {
                if let Some(key) = config.driver.key_of(&file) {
                    let size = config.storage.size_of(&file).unwrap_or(0);
                    evicted.extend(dv.prime(key, size));
                }
            }
            let writers = match &frontend_rt {
                FrontendRt::Threads => WriterTable::Threads(
                    (0..WRITER_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
                ),
                FrontendRt::Epoll { reactor, .. } => WriterTable::Reactor(Arc::clone(reactor)),
            };
            let runtime = Arc::new(CtxRuntime {
                name: name.clone(),
                state: Mutex::new(DvCore {
                    dv,
                    pending: HashMap::new(),
                    actions: Vec::new(),
                }),
                writers,
                ledger: Mutex::new(LaunchLedger::default()),
                driver: config.driver,
                storage: config.storage,
                launcher: config.launcher,
                checksums: config.checksums,
            });
            prime_work.push((Arc::clone(&runtime), evicted));
            let previous = contexts.insert(name.clone(), runtime);
            assert!(previous.is_none(), "duplicate context name {name:?}");
        }

        let inner = Arc::new(Inner {
            contexts,
            epoch: Instant::now(),
            addr,
            next_client: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            frontend: frontend_rt,
            reap_signal: (StdMutex::new(false), Condvar::new()),
            quiesce: (StdMutex::new(()), Condvar::new()),
        });

        // Delete whatever the priming evicted (storage shrunk between
        // runs).
        for (runtime, evicted) in prime_work {
            for key in evicted {
                let name = runtime.driver.filename_of(key);
                let _ = runtime.storage.delete(&name);
            }
        }

        Self::spawn_accept_loop(&inner, listener)?;

        // Reaper: a launched job can die before it ever connects (bad
        // restart file, scheduler rejection). While jobs are in flight,
        // poll every launcher and translate orphaned exits into
        // SimFailed/SimFinished so waiting analyses get an answer
        // instead of a hang; while nothing runs, park on the condvar —
        // an idle daemon makes zero syscalls.
        let reap_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("dv-reaper".into())
            .spawn(move || run_reaper(&reap_inner))?;
        Ok(DvServer { inner })
    }

    fn spawn_accept_loop(inner: &Arc<Inner>, listener: TcpListener) -> io::Result<()> {
        match &inner.frontend {
            FrontendRt::Threads => {
                // Non-blocking accept + shutdown-flag poll: bounded
                // shutdown latency without the old connect-to-self
                // unblock hack.
                listener.set_nonblocking(true)?;
                let inner = Arc::clone(inner);
                std::thread::Builder::new().name("dv-accept".into()).spawn(move || loop {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_nodelay(true);
                            let conn_inner = Arc::clone(&inner);
                            std::thread::spawn(move || handle_connection(conn_inner, stream));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            // EMFILE, ECONNABORTED and friends are
                            // transient at high connection counts; an
                            // accept thread that exits takes the
                            // listener with it and the daemon would
                            // silently stop accepting forever. Back off
                            // and retry; shutdown is the only exit.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                })?;
            }
            FrontendRt::Epoll { accept_wake, .. } => {
                // Event-driven accept: one epoll over the listener and
                // the shutdown eventfd, so shutdown unblocks instantly.
                listener.set_nonblocking(true)?;
                let epoll = Epoll::new()?;
                epoll.add(listener.as_raw_fd(), EPOLLIN, 0)?;
                epoll.add(accept_wake.fd(), EPOLLIN, 1)?;
                let inner = Arc::clone(inner);
                std::thread::Builder::new().name("dv-accept".into()).spawn(move || {
                    let FrontendRt::Epoll { reactor, .. } = &inner.frontend else {
                        unreachable!("epoll accept loop without reactor");
                    };
                    let mut events = [EpollEvent::default(); 4];
                    loop {
                        let _ = epoll.wait(&mut events, -1);
                        if inner.shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        loop {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    if stream.set_nonblocking(true).is_err() {
                                        continue;
                                    }
                                    let _ = stream.set_nodelay(true);
                                    reactor.submit(
                                        stream,
                                        Box::new(EpollConn {
                                            inner: Arc::clone(&inner),
                                            state: ConnState::Handshake,
                                        }),
                                    );
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(_) => {
                                    // Transient (EMFILE/ECONNABORTED):
                                    // never exit — the listener dies
                                    // with this thread. Back off; the
                                    // level-triggered epoll re-reports
                                    // the pending connection.
                                    std::thread::sleep(Duration::from_millis(10));
                                    break;
                                }
                            }
                        }
                    }
                })?;
            }
        }
        Ok(())
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Statistics snapshot of the only context (single-context
    /// deployments).
    ///
    /// # Panics
    /// Panics if the daemon serves more than one context — use
    /// [`context_stats`](Self::context_stats) then.
    pub fn stats(&self) -> crate::dv::DvStats {
        assert_eq!(
            self.inner.contexts.len(),
            1,
            "multi-context daemon: use context_stats(name)"
        );
        let runtime = self.inner.contexts.values().next().expect("one context");
        runtime.state.lock().dv.stats().clone()
    }

    /// Statistics snapshot of a named context.
    pub fn context_stats(&self, name: &str) -> Option<crate::dv::DvStats> {
        self.inner
            .contexts
            .get(name)
            .map(|rt| rt.state.lock().dv.stats().clone())
    }

    /// The names of the contexts served.
    pub fn context_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.contexts.keys().cloned().collect();
        names.sort();
        names
    }

    /// Stops accepting connections.
    pub fn shutdown(&self) {
        // Quiesce before stopping the machinery: in-flight
        // re-simulations keep producing files until they report
        // SimFinished, and the reaper (which must keep running here —
        // it is how a *crashed* sim's exit reaches the DV) drains
        // orphans. A bounded wait lets callers tear down the storage
        // area without racing live writers. The wait is event-driven:
        // `commit` notifies the quiesce condvar as sims retire (the
        // short timeout only backstops a wakeup lost to the unguarded
        // DV-state read).
        let deadline = Instant::now() + Duration::from_secs(5);
        let (lock, cv) = &self.inner.quiesce;
        for ctx in self.inner.contexts.values() {
            let mut guard = lock.lock().unwrap();
            loop {
                let idle = {
                    let core = ctx.state.lock();
                    core.dv.active_sims() == 0 && core.dv.queued_launches() == 0
                };
                if idle {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let wait = (deadline - now).min(Duration::from_millis(100));
                guard = cv.wait_timeout(guard, wait).unwrap().0;
            }
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        match &self.inner.frontend {
            FrontendRt::Threads => {
                // The non-blocking accept loop observes the flag within
                // one poll interval.
            }
            FrontendRt::Epoll {
                reactor,
                accept_wake,
            } => {
                accept_wake.signal();
                reactor.shutdown();
            }
        }
        // Release the reaper from its idle park.
        {
            let mut stop = self.inner.reap_signal.0.lock().unwrap();
            *stop = true;
        }
        self.inner.reap_signal.1.notify_all();
    }
}

impl Drop for DvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_reaper(inner: &Arc<Inner>) {
    let mut fx = Effects::default();
    loop {
        // Park until jobs are in flight (or shutdown). Zero wakeups,
        // zero syscalls while the daemon is idle.
        {
            let mut stop = inner.reap_signal.0.lock().unwrap();
            loop {
                if *stop {
                    return;
                }
                if inner.contexts.values().any(|rt| rt.ledger.lock().jobs_in_flight()) {
                    break;
                }
                stop = inner.reap_signal.1.wait(stop).unwrap();
            }
        }
        // Poll pass: translate orphaned exits into DV events.
        for runtime in inner.contexts.values() {
            runtime.reap_exits(inner, &mut fx);
        }
        // Re-poll cadence while jobs run; shutdown interrupts the wait.
        {
            let stop = inner.reap_signal.0.lock().unwrap();
            if *stop {
                return;
            }
            let _ = inner
                .reap_signal
                .1
                .wait_timeout(stop, Duration::from_millis(50))
                .unwrap();
        }
    }
}

/// Per-connection state machine of the epoll front-end. The handshake
/// frame routes the connection to a context and a role; afterwards each
/// frame is dispatched through the same shared request handlers the
/// threaded front-end uses.
struct EpollConn {
    inner: Arc<Inner>,
    state: ConnState,
}

enum ConnState {
    /// Awaiting the Hello frame.
    Handshake,
    Analysis {
        runtime: Arc<CtxRuntime>,
        client: ClientId,
        fx: Effects,
    },
    Simulator {
        runtime: Arc<CtxRuntime>,
        sim: SimId,
        finished: bool,
        fx: Effects,
    },
    /// Torn down; any further frame closes the connection.
    Done,
}

/// Encodes one response as a complete wire frame for a direct
/// connection write (handshake replies that precede registration).
fn direct_frame(cx: &mut ConnCtx<'_>, resp: &Response) {
    let mut batch = FrameBatch::new();
    batch.push_response(resp);
    cx.write(batch.as_bytes());
}

impl crate::reactor::Handler for EpollConn {
    fn on_frame(&mut self, frame: &[u8], cx: &mut ConnCtx<'_>) -> bool {
        match &mut self.state {
            ConnState::Handshake => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                let Request::Hello { kind, context } = req else {
                    direct_frame(
                        cx,
                        &Response::Error {
                            message: "expected Hello".to_string(),
                        },
                    );
                    return false;
                };
                let Some(runtime) = self.inner.route(&context).cloned() else {
                    direct_frame(cx, &unknown_context_error(&self.inner, &context));
                    return false;
                };
                match kind {
                    ClientKind::Analysis => {
                        let client = self.inner.next_client.fetch_add(1, Ordering::SeqCst);
                        // Route first, then greet: a notification can
                        // only exist after a request, which can only
                        // follow the HelloOk already in the buffer.
                        cx.register(client);
                        direct_frame(cx, &Response::HelloOk { client_id: client });
                        self.state = ConnState::Analysis {
                            runtime,
                            client,
                            fx: Effects::default(),
                        };
                    }
                    ClientKind::Simulator { sim_id } => {
                        // Simulators receive no post-handshake traffic;
                        // they are not registered for routing.
                        direct_frame(cx, &Response::HelloOk { client_id: sim_id });
                        self.state = ConnState::Simulator {
                            runtime,
                            sim: sim_id,
                            finished: false,
                            fx: Effects::default(),
                        };
                    }
                }
                true
            }
            ConnState::Analysis {
                runtime,
                client,
                fx,
            } => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                runtime.handle_analysis_request(&self.inner, *client, req, fx)
            }
            ConnState::Simulator {
                runtime,
                sim,
                finished,
                fx,
            } => {
                let Ok(req) = Request::decode(frame) else {
                    return false;
                };
                runtime.handle_simulator_request(&self.inner, *sim, req, finished, fx)
            }
            ConnState::Done => false,
        }
    }

    fn on_close(&mut self) {
        match std::mem::replace(&mut self.state, ConnState::Done) {
            ConnState::Handshake | ConnState::Done => {}
            ConnState::Analysis {
                runtime,
                client,
                mut fx,
            } => runtime.analysis_disconnect(&self.inner, client, &mut fx),
            ConnState::Simulator {
                runtime,
                sim,
                finished,
                mut fx,
            } => runtime.simulator_disconnect(&self.inner, sim, finished, &mut fx),
        }
    }
}

fn unknown_context_error(inner: &Inner, context: &str) -> Response {
    Response::Error {
        message: format!("unknown simulation context {:?} (available: {:?})", context, {
            let mut names: Vec<&String> = inner.contexts.keys().collect();
            names.sort();
            names
        }),
    }
}

fn handle_connection(inner: Arc<Inner>, stream: TcpStream) {
    let mut reader = FrameReader::new(stream);
    let hello = match reader.read_frame() {
        Ok(Some(body)) => match Request::decode(&body) {
            Ok(req) => req,
            Err(_) => return,
        },
        _ => return,
    };
    let Request::Hello { kind, context } = hello else {
        let resp = Response::Error {
            message: "expected Hello".to_string(),
        };
        if let Ok(mut w) = reader.get_ref().try_clone() {
            let _ = wire::write_frame(&mut w, &resp.encode());
        }
        return;
    };
    let Some(runtime) = inner.route(&context).cloned() else {
        let resp = unknown_context_error(&inner, &context);
        if let Ok(mut w) = reader.get_ref().try_clone() {
            let _ = wire::write_frame(&mut w, &resp.encode());
        }
        return;
    };
    match kind {
        ClientKind::Analysis => analysis_session(inner, runtime, reader),
        ClientKind::Simulator { sim_id } => simulator_session(inner, runtime, reader, sim_id),
    }
}

fn analysis_session(
    inner: Arc<Inner>,
    runtime: Arc<CtxRuntime>,
    mut reader: FrameReader<TcpStream>,
) {
    let client: ClientId = inner.next_client.fetch_add(1, Ordering::SeqCst);
    let Ok(mut writer) = reader.get_ref().try_clone() else {
        return;
    };
    if wire::write_frame(&mut writer, &Response::HelloOk { client_id: client }.encode()).is_err() {
        return;
    }
    runtime.writers.register_stream(client, writer);

    let mut fx = Effects::default();
    while let Ok(Some(frame)) = reader.read_frame() {
        let Ok(req) = Request::decode(&frame) else {
            break;
        };
        if !runtime.handle_analysis_request(&inner, client, req, &mut fx) {
            break;
        }
    }
    runtime.analysis_disconnect(&inner, client, &mut fx);
}

fn simulator_session(
    inner: Arc<Inner>,
    runtime: Arc<CtxRuntime>,
    mut reader: FrameReader<TcpStream>,
    sim: SimId,
) {
    {
        let mut writer = match reader.get_ref().try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let _ = wire::write_frame(&mut writer, &Response::HelloOk { client_id: sim }.encode());
    }
    let mut fx = Effects::default();
    let mut finished = false;
    while let Ok(Some(frame)) = reader.read_frame() {
        let Ok(req) = Request::decode(&frame) else {
            break;
        };
        if !runtime.handle_simulator_request(&inner, sim, req, &mut finished, &mut fx) {
            break;
        }
    }
    runtime.simulator_disconnect(&inner, sim, finished, &mut fx);
}

/// In-process simulator launcher: "launches" jobs as threads that
/// connect back to the daemon like a real simulator process would. Used
/// by tests and the virtual examples; production deployments use
/// [`simbatch::ProcessLauncher`] with the `simfs-simd` binary.
pub struct ThreadSimLauncher {
    /// Generates the bytes of output step `key`.
    make_bytes: Arc<dyn Fn(u64) -> Vec<u8> + Send + Sync>,
    /// Maps a key to its published filename (must agree with the
    /// context's driver).
    name_of: Arc<dyn Fn(u64) -> String + Send + Sync>,
    /// Wall-clock production delay per step (simulates `tau_sim`).
    step_delay: std::time::Duration,
    /// Restart latency before the first step (simulates `alpha_sim`).
    restart_delay: std::time::Duration,
    kill_flags: Mutex<HashMap<JobId, Arc<AtomicBool>>>,
}

impl ThreadSimLauncher {
    /// A launcher producing steps via `make_bytes` with the given
    /// latencies, publishing them under `name_of(key)`.
    pub fn new(
        make_bytes: impl Fn(u64) -> Vec<u8> + Send + Sync + 'static,
        name_of: impl Fn(u64) -> String + Send + Sync + 'static,
        restart_delay: std::time::Duration,
        step_delay: std::time::Duration,
    ) -> ThreadSimLauncher {
        ThreadSimLauncher {
            make_bytes: Arc::new(make_bytes),
            name_of: Arc::new(name_of),
            step_delay,
            restart_delay,
            kill_flags: Mutex::new(HashMap::new()),
        }
    }

    fn parse_arg(spec: &SpawnSpec, flag: &str) -> Option<u64> {
        let pos = spec.args.iter().position(|a| a == flag)?;
        spec.args.get(pos + 1)?.parse().ok()
    }

    fn env_of<'a>(spec: &'a SpawnSpec, key: &str) -> Option<&'a str> {
        spec.env
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl JobLauncher for ThreadSimLauncher {
    fn launch(&self, job: JobId, spec: &SpawnSpec) -> io::Result<simbatch::JobHandle> {
        let start = Self::parse_arg(spec, "--start-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --start-key"))?;
        let stop = Self::parse_arg(spec, "--stop-key")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing --stop-key"))?;
        let addr = Self::env_of(spec, env_keys::DV_ADDR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing DV addr"))?
            .to_string();
        let sim_id: u64 = Self::env_of(spec, env_keys::SIM_ID)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing sim id"))?;
        let context = Self::env_of(spec, env_keys::CONTEXT).unwrap_or("").to_string();
        let data_dir = Self::env_of(spec, env_keys::DATA_DIR)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "missing data dir"))?
            .to_string();

        let killed = Arc::new(AtomicBool::new(false));
        self.kill_flags.lock().insert(job, Arc::clone(&killed));
        let make_bytes = Arc::clone(&self.make_bytes);
        let name_of = Arc::clone(&self.name_of);
        let (restart_delay, step_delay) = (self.restart_delay, self.step_delay);

        std::thread::spawn(move || {
            let run = || -> io::Result<()> {
                let mut stream = TcpStream::connect(&addr)?;
                wire::write_frame(
                    &mut stream,
                    &Request::Hello {
                        kind: ClientKind::Simulator { sim_id },
                        context,
                    }
                    .encode(),
                )?;
                let _ = wire::read_frame(&mut stream)?; // HelloOk
                std::thread::sleep(restart_delay);
                wire::write_frame(&mut stream, &Request::SimStarted.encode())?;
                let area = StorageArea::create(&data_dir, u64::MAX)?;
                for key in start..=stop {
                    if killed.load(Ordering::SeqCst) {
                        // Killed: vanish without SimFinished; the server
                        // treats the drop as SimFailed — unless the DV
                        // already removed the sim (the normal kill path).
                        return Ok(());
                    }
                    std::thread::sleep(step_delay);
                    let bytes = make_bytes(key);
                    let size = area.publish(&name_of(key), &bytes)?;
                    wire::write_frame(&mut stream, &Request::FileProduced { key, size }.encode())?;
                }
                wire::write_frame(&mut stream, &Request::SimFinished.encode())?;
                Ok(())
            };
            let _ = run();
        });
        Ok(simbatch::JobHandle { job, pid: 0 })
    }

    fn kill(&self, job: JobId) -> io::Result<()> {
        if let Some(flag) = self.kill_flags.lock().remove(&job) {
            flag.store(true, Ordering::SeqCst);
        }
        Ok(())
    }

    fn reap(&self) -> Vec<(JobId, bool)> {
        Vec::new()
    }
}
