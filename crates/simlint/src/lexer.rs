//! A lightweight Rust lexer: just enough to walk receiver chains and
//! scopes without misreading comments, strings, raw strings, char
//! literals or lifetimes. No dependencies, by policy — this crate must
//! build in the vendored-offline environment.

/// Token kinds the checks care about. Literal *contents* are kept for
/// strings (the stats check searches JSON keys inside format strings)
/// and discarded for chars.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (integers; floats split at the dot, which is
    /// harmless for these checks and keeps `x.0.lock()` readable).
    Num(String),
    /// Any single punctuation character: `{ } ( ) [ ] . ; , : = ...`.
    Punct(char),
    /// String literal (normal, raw, byte); `text` is the body.
    Str(String),
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// One comment (line or block) with its 1-based start and end lines;
/// `text` includes the comment markers.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// Lexes `src` into tokens and comments. Unterminated constructs
/// (possible in fixture files) terminate at end of input rather than
/// panicking.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            comments.push(Comment {
                text: b[start..i].iter().collect(),
                start_line: line,
                end_line: line,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            comments.push(Comment {
                text: b[start..i].iter().collect(),
                start_line,
                end_line: line,
            });
            continue;
        }
        // Raw (and byte-raw) strings: r"..", r#".."#, br#".."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    let body_start = k + 1;
                    let tok_line = line;
                    let mut m = body_start;
                    'raw: while m < n {
                        if b[m] == '\n' {
                            line += 1;
                        }
                        if b[m] == '"' {
                            let mut h = 0;
                            while m + 1 + h < n && h < hashes && b[m + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                toks.push(Token {
                                    tok: Tok::Str(b[body_start..m].iter().collect()),
                                    line: tok_line,
                                });
                                i = m + 1 + hashes;
                                break 'raw;
                            }
                        }
                        m += 1;
                    }
                    if m >= n {
                        i = n;
                    }
                    continue;
                }
            }
        }
        // Normal (and byte) strings.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let body_start = j;
            let tok_line = line;
            while j < n {
                if b[j] == '\\' {
                    j += 2;
                    continue;
                }
                if b[j] == '\n' {
                    line += 1;
                }
                if b[j] == '"' {
                    break;
                }
                j += 1;
            }
            toks.push(Token {
                tok: Tok::Str(b[body_start..j.min(n)].iter().collect()),
                line: tok_line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not closed by a quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'x' — a char literal after all.
                    toks.push(Token { tok: Tok::Char, line });
                    i = j + 1;
                    continue;
                }
                toks.push(Token { tok: Tok::Lifetime, line });
                i = j;
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '('.
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 2;
            } else {
                j += 1;
            }
            while j < n && b[j] != '\'' {
                j += 1;
            }
            toks.push(Token { tok: Tok::Char, line });
            i = (j + 1).min(n);
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            toks.push(Token {
                tok: Tok::Ident(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && is_ident(b[i]) {
                i += 1;
            }
            toks.push(Token {
                tok: Tok::Num(b[start..i].iter().collect()),
                line,
            });
            continue;
        }
        toks.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    (toks, comments)
}

/// True when `tok` is the identifier `name`.
pub fn is_ident(tok: &Tok, name: &str) -> bool {
    matches!(tok, Tok::Ident(s) if s == name)
}

/// Index just past the balanced bracket that opens at `open` (which
/// must index a `(`/`[`/`{` token). Tolerates unbalanced input by
/// returning the end of the stream.
pub fn skip_balanced(toks: &[Token], open: usize) -> usize {
    let (o, c) = match toks[open].tok {
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        Tok::Punct('{') => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].tok {
            Tok::Punct(p) if p == o => depth += 1,
            Tok::Punct(p) if p == c => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_lifetimes() {
        let src = r##"
// line comment with "quote and lock(
/* block /* nested */ still */
fn f<'a>(x: &'a str) -> char {
    let s = "escaped \" lock() inside";
    let r = r#"raw "with" lock()"#;
    let c = '\'';
    let d = '(';
    x.0.lock()
}
"##;
        let (toks, comments) = lex(src);
        assert_eq!(comments.len(), 2);
        let idents: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        // No identifiers leaked out of comments or strings.
        assert!(idents.contains(&"lock"));
        assert_eq!(idents.iter().filter(|s| **s == "lock").count(), 1);
        assert!(toks.iter().any(|t| t.tok == Tok::Lifetime));
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Char).count(), 2);
        // x.0.lock(): tuple index stays a separate Num token.
        assert!(toks
            .windows(4)
            .any(|w| is_ident(&w[0].tok, "x")
                && w[1].tok == Tok::Punct('.')
                && w[2].tok == Tok::Num("0".into())
                && w[3].tok == Tok::Punct('.')));
    }
}
