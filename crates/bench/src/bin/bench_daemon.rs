//! End-to-end daemon throughput and latency: N concurrent analysis
//! clients hammer a loopback daemon with `acquire`/`release` pairs —
//! the Fig. 4 control-message pattern that bounds how many concurrent
//! analyses one context can serve. Every pair is one full
//! request/response round trip through the wire codec, the reactor and
//! the DV control plane (hit fast path, shard locks), so the numbers
//! directly track the front-end work in `server.rs`/`reactor.rs`.
//!
//! ```sh
//! cargo run --release -p simfs-bench --bin bench_daemon -- \
//!     [--workloads uniform,hitheavy,zipf,uniform+prefetch,hitheavy+prefetch] \
//!     [--clients 1,2,4,...] [--secs 2] [--dv-shards 4] \
//!     [--cluster 1] [--out BENCH_daemon.json]
//! ```
//!
//! A `+prefetch` suffix runs the workload with prefetch agents on —
//! the configuration that historically forfeited the fast path and DV
//! sharding, and now keeps both through the access-stream digest. Those
//! runs additionally report agent-quality counters per point: prefetch
//! launches and hits, pollution resets, kills, and digest
//! replayed/dropped records (the lossiness actually incurred).
//!
//! `--cluster N` (N > 1) runs each workload against an N-daemon
//! cluster (N `DvServer`s in this process, one shared storage area);
//! clients route through DVLib's `DvCluster` interval hash, and each
//! point reports the aggregate rtps plus a per-daemon acquire-rate
//! roll-up from the members' counter deltas.
//!
//! `--degraded` (requires `--cluster` ≥ 2) prices interval failover:
//! sessions enable `set_failover`, and member 1 is shut down halfway
//! through each workload's first point — the surviving members take its
//! intervals over mid-measurement. Every JSON result line carries a
//! `degraded` field so the ladder separates healthy from degraded
//! numbers.
//!
//! `--sim-faults N` injects production faults into the bench simulator:
//! the first production of every Nth key is corrupt, so the daemon's
//! integrity gate rejects it, kills the producer, and the supervisor
//! retries (transparently — the retried production is clean). Pair it
//! with `hitheavy`, whose cold tail keeps launching real sims
//! mid-measurement; every JSON line then reports the supervision
//! counters (`sim_retries`, `intervals_poisoned`, `sims_hung_killed`,
//! `corrupt_outputs`) so fault-smoke ladders pin the retry machinery's
//! cost. Fault-free runs report the same counters, all zero — the
//! supervision tier must stay off the hot path.
//!
//! Three workloads:
//!
//! * **uniform** — every client strides uniformly over a fully warmed
//!   64-key timeline: the pure hit path, comparable across releases
//!   (PR 2's ladder).
//! * **hitheavy** — a 1280-key timeline with 95% of the keyspace warmed
//!   ahead of time; uniform requests mix fast-path hits with cold
//!   misses that launch real re-simulations mid-measurement.
//! * **zipf** — zipfian (θ = 0.99) requests over the warmed 64-key
//!   timeline: the hottest keys cluster in one restart interval, so
//!   both the hit-index shards and one DV shard see heavy skew.
//!
//! Per point it records throughput, p50/p99 round-trip latency, and the
//! daemon's control-plane counter deltas: fast-path vs slow-path
//! acquires, epoch fallbacks, misses, and DV-lock wait/hold time. The
//! JSON summary seeds the perf trajectory in `BENCH_daemon.json`.

use simbatch::ParallelismMap;
use simfs_core::client::{DvCluster, SimfsClient};
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::dv::DvStats;
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{
    ClusterMember, DurabilityCfg, DvServer, ServerConfig, SimFaultSpec, ThreadSimLauncher,
};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Zipf skew parameter (YCSB's classic θ).
const ZIPF_THETA: f64 = 0.99;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Uniform,
    HitHeavy,
    Zipf,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::HitHeavy => "hitheavy",
            Workload::Zipf => "zipf",
        }
    }

    fn parse(s: &str) -> Workload {
        match s {
            "uniform" => Workload::Uniform,
            "hitheavy" => Workload::HitHeavy,
            "zipf" => Workload::Zipf,
            other => panic!("unknown workload {other} (uniform|hitheavy|zipf[+prefetch])"),
        }
    }

    /// Total timeline length.
    fn n_keys(self) -> u64 {
        match self {
            Workload::Uniform | Workload::Zipf => 64,
            Workload::HitHeavy => 1280,
        }
    }

    /// Keys warmed (materialized + released) before measurement.
    fn warm_keys(self) -> u64 {
        match self {
            Workload::Uniform | Workload::Zipf => 64,
            // 95% of the keyspace cached: the remaining 5% miss and
            // re-simulate during the measured window.
            Workload::HitHeavy => 1216,
        }
    }

    fn default_clients(self) -> Vec<usize> {
        match self {
            Workload::Uniform => vec![1, 2, 4, 8, 16, 32, 128, 256, 1024],
            Workload::HitHeavy | Workload::Zipf => vec![1, 32, 256, 1024],
        }
    }

    /// Cache budget in steps. Hit-heavy bounds the cache just above its
    /// warmed set so the 5% cold tail keeps missing (and evicting) in
    /// steady state instead of materializing once; the others never
    /// evict. The hit-heavy budget scales with the cluster size: each
    /// member takes a `1/K` slice, so every member must be granted its
    /// warm slice *plus* one in-flight 4-step interval of slack —
    /// sized for the largest member (`ceil(304/K)` of the 304 warm
    /// intervals), since an uneven interval split would otherwise
    /// under-budget that member and spiral its warm set out through
    /// evictions, un-measuring the intended 5% miss rate. `K = 1`
    /// reduces to the historical 1220.
    fn cache_steps(self, cluster: u32) -> u64 {
        match self {
            Workload::Uniform | Workload::Zipf => u64::MAX / (1 << 20),
            Workload::HitHeavy => {
                let largest_member_intervals = 304u64.div_ceil(cluster as u64);
                (largest_member_intervals * 4 + 4) * cluster as u64
            }
        }
    }
}

/// One ladder: a workload at a prefetch setting.
#[derive(Clone, Copy, PartialEq, Eq)]
struct RunSpec {
    workload: Workload,
    prefetch: bool,
}

impl RunSpec {
    fn parse(s: &str) -> RunSpec {
        let (base, prefetch) = match s.strip_suffix("+prefetch") {
            Some(base) => (base, true),
            None => (s, false),
        };
        RunSpec {
            workload: Workload::parse(base),
            prefetch,
        }
    }

    fn label(&self) -> String {
        if self.prefetch {
            format!("{}+prefetch", self.workload.name())
        } else {
            self.workload.name().to_string()
        }
    }
}

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

#[allow(clippy::too_many_arguments)]
fn start_daemon(
    dir: &std::path::Path,
    n_keys: u64,
    cache_steps: u64,
    dv_shards: u32,
    member: ClusterMember,
    prefetch: bool,
    durable: bool,
    faults: SimFaultSpec,
    effect_helpers: Option<usize>,
) -> (DvServer, StorageArea) {
    let storage = StorageArea::create(dir, u64::MAX).unwrap();
    let size = step_bytes(1).len() as u64;
    let ctx = ContextCfg::new(
        "bench-ctx",
        StepMath::new(1, 4, n_keys),
        size,
        cache_steps.saturating_mul(size),
    )
    .with_policy("lru")
    .with_prefetch(prefetch)
    .with_smax(8);
    let launcher = Arc::new(
        ThreadSimLauncher::new(
            step_bytes,
            |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
            Duration::from_millis(1),
            Duration::from_micros(200),
        )
        .with_faults(faults),
    );
    let server = DvServer::start_tuned(
        vec![ServerConfig {
            ctx,
            driver: Arc::new(
                PatternDriver::new("out-", ".sdf", 6)
                    .with_parallelism(ParallelismMap::unconstrained(1, 2)),
            ),
            storage: storage.clone(),
            launcher,
            checksums: HashMap::new(),
            dv_shards,
            cluster: member,
            durability: if durable {
                DurabilityCfg::durable(false)
            } else {
                DurabilityCfg::default()
            },
        }],
        "127.0.0.1:0",
        simfs_core::server::DaemonTuning { effect_helpers, ..Default::default() },
    )
    .unwrap();
    (server, storage)
}

/// One measured session: direct for single daemons (keeping the ladder
/// byte-identical to earlier releases), interval-routed via
/// [`DvCluster`] for clusters.
enum Session {
    Single(SimfsClient),
    /// The bool is the failover flag: degraded-mode sessions tolerate a
    /// release racing a member death.
    Cluster(DvCluster, bool),
}

impl Session {
    fn connect(addrs: &[std::net::SocketAddr], steps: StepMath, failover: bool) -> Session {
        if addrs.len() == 1 {
            Session::Single(SimfsClient::connect(addrs[0], "bench-ctx").unwrap())
        } else {
            let mut c = DvCluster::connect(addrs, "bench-ctx", steps).unwrap();
            if failover {
                c.set_auto_reconnect(true);
                c.set_failover(true);
                // Fast down-detection so the degraded window dominates
                // the measurement, not the probing.
                c.set_down_window(Duration::from_millis(500));
            }
            Session::Cluster(c, failover)
        }
    }

    fn acquire_release(&mut self, key: u64) {
        match self {
            Session::Single(c) => {
                let status = c.acquire(&[key]).unwrap();
                assert!(status.ok(), "acquire failed: {status:?}");
                c.release(key).unwrap();
            }
            Session::Cluster(c, failover) => {
                let status = c.acquire(&[key]).unwrap();
                assert!(status.ok(), "acquire failed: {status:?}");
                match c.release(key) {
                    Ok(()) => {}
                    // A member can die between the acquire and this
                    // release; the pin dies with it and the next acquire
                    // reroutes. Only tolerable in degraded mode.
                    Err(_) if *failover => {}
                    Err(e) => panic!("release failed: {e}"),
                }
            }
        }
    }

    fn finalize(self) {
        match self {
            Session::Single(c) => drop(c.finalize()),
            Session::Cluster(c, _) => drop(c.finalize()),
        }
    }
}

/// Threads currently alive in this process (daemon threads + main,
/// sampled before any bench client exists).
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .unwrap_or(0)
}

/// xorshift64* — deterministic per-thread key sampling without
/// cross-thread state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cumulative zipf distribution over ranks `0..n` (rank 0 hottest);
/// sampled by binary search on a uniform draw.
fn zipf_cdf(n: u64, theta: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(theta)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

struct Point {
    round_trips: u64,
    elapsed: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// One point: `clients` threads, each looping an `acquire([key])` /
/// `release(key)` pair for `secs` with workload-specific key choice,
/// timing every round trip. The measured window runs from barrier
/// release to stop flag — connect, handshake and teardown are excluded.
fn run_point(
    addrs: Arc<Vec<std::net::SocketAddr>>,
    steps: StepMath,
    workload: Workload,
    clients: usize,
    secs: f64,
    cdf: Arc<Vec<f64>>,
    failover: bool,
) -> Point {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(clients + 1));
    let n_keys = workload.n_keys();
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let stop = stop.clone();
        let start = start.clone();
        let cdf = Arc::clone(&cdf);
        let addrs = Arc::clone(&addrs);
        handles.push(std::thread::spawn(move || -> Vec<u64> {
            let mut client = Session::connect(&addrs, steps, failover);
            let mut rng = Rng(0x9E37_79B9 ^ ((c as u64 + 1) * 0x1234_5677));
            // Uniform keeps PR 2's deterministic stride walk so the
            // ladder stays comparable across releases.
            let mut key = 1 + (c as u64 * 17) % n_keys;
            let mut lat_ns = Vec::with_capacity(4096);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                client.acquire_release(key);
                lat_ns.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                key = match workload {
                    Workload::Uniform => 1 + key % n_keys,
                    Workload::HitHeavy => 1 + rng.next() % n_keys,
                    Workload::Zipf => {
                        let u = rng.next_f64();
                        let rank = cdf.partition_point(|&p| p < u) as u64;
                        1 + rank.min(n_keys - 1)
                    }
                };
            }
            client.finalize();
            lat_ns
        }));
    }
    start.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    let mut all_ns: Vec<u64> = Vec::new();
    for handle in handles {
        all_ns.extend(handle.join().unwrap());
    }
    let round_trips = all_ns.len() as u64;
    all_ns.sort_unstable();
    Point {
        round_trips,
        elapsed,
        p50_us: percentile_us(&all_ns, 0.50),
        p99_us: percentile_us(&all_ns, 0.99),
    }
}

fn main() {
    let mut clients_override: Option<Vec<usize>> = None;
    let mut secs = 2.0f64;
    let mut out = String::from("BENCH_daemon.json");
    let mut dv_shards = 4u32;
    let mut cluster = 1u32;
    let mut durable = false;
    let mut degraded = false;
    let mut sim_faults = 0u64;
    // None = auto (one helper per reactor shard); Some(0) = inline
    // compatibility mode, pricing the pre-effect-tier daemon.
    let mut effect_helpers: Option<usize> = None;
    let mut specs = vec![
        RunSpec { workload: Workload::Uniform, prefetch: false },
        RunSpec { workload: Workload::HitHeavy, prefetch: false },
        RunSpec { workload: Workload::Zipf, prefetch: false },
        RunSpec { workload: Workload::Uniform, prefetch: true },
        RunSpec { workload: Workload::HitHeavy, prefetch: true },
    ];
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        // `--durable` is a bare switch: the pin/lease WAL on, so the
        // ladder can price the write-ahead work against the default.
        if flag == "--durable" {
            durable = true;
            continue;
        }
        // `--degraded` is a bare switch: kill member 1 mid-run and
        // measure failover service by the survivors.
        if flag == "--degraded" {
            degraded = true;
            continue;
        }
        let val = args.next().unwrap_or_default();
        match flag.as_str() {
            "--clients" => {
                clients_override = Some(
                    val.split(',')
                        .map(|s| s.trim().parse().expect("bad --clients"))
                        .collect(),
                );
            }
            "--secs" => secs = val.parse().expect("bad --secs"),
            "--out" => out = val,
            "--dv-shards" => dv_shards = val.parse().expect("bad --dv-shards"),
            "--cluster" => cluster = val.parse().expect("bad --cluster"),
            "--sim-faults" => sim_faults = val.parse().expect("bad --sim-faults"),
            "--effect-helpers" => {
                effect_helpers = Some(val.parse().expect("bad --effect-helpers"));
            }
            "--workloads" => {
                specs = val.split(',').map(|s| RunSpec::parse(s.trim())).collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(cluster >= 1, "--cluster needs at least one daemon");
    assert!(
        !degraded || cluster >= 2,
        "--degraded needs --cluster 2+ (someone must survive to take over)"
    );

    let mut lines = Vec::new();
    for &spec in &specs {
        let workload = spec.workload;
        let name = spec.label();
        let steps = StepMath::new(1, 4, workload.n_keys());
        let dir = std::env::temp_dir().join(format!(
            "simfs-bench-daemon-{}-{}",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // `--cluster N`: N daemons over one shared storage area, each
        // owning its residue class of restart intervals.
        let servers: Vec<DvServer> = (0..cluster)
            .map(|k| {
                start_daemon(
                    &dir,
                    workload.n_keys(),
                    workload.cache_steps(cluster),
                    dv_shards,
                    ClusterMember::new(k, cluster),
                    spec.prefetch,
                    durable,
                    SimFaultSpec { crash_quota: 0, corrupt_every: sim_faults, ..Default::default() },
                    effect_helpers,
                )
                .0
            })
            .collect();
        let addrs = Arc::new(servers.iter().map(DvServer::addr).collect::<Vec<_>>());

        // Warm the workload's cached keyspace so measured misses are a
        // workload property, not cold-start noise. DvCluster routes
        // each warm key to its owning daemon.
        {
            let mut warm = DvCluster::connect(&addrs, "bench-ctx", steps).unwrap();
            let keys: Vec<u64> = (1..=workload.warm_keys()).collect();
            for chunk in keys.chunks(256) {
                let status = warm.acquire(chunk).unwrap();
                assert!(status.ok(), "warmup failed: {status:?}");
                for &k in chunk {
                    warm.release(k).unwrap();
                }
            }
            warm.finalize().unwrap();
        }
        // Let the warmup simulator threads wind down before counting.
        std::thread::sleep(Duration::from_millis(100));
        let daemon_threads = process_threads().saturating_sub(1); // minus main

        let cdf = Arc::new(if workload == Workload::Zipf {
            zipf_cdf(workload.n_keys(), ZIPF_THETA)
        } else {
            Vec::new()
        });

        println!("workload {name}: {daemon_threads} daemon threads before clients");
        println!(
            "{:>8} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>8} {:>9}",
            "clients", "round_trips", "rtps", "p50_us", "p99_us", "fast", "slow", "miss",
            "fallback", "hold_ns/t"
        );
        let clients = clients_override
            .clone()
            .unwrap_or_else(|| workload.default_clients());
        let mut victim_killed = false;
        for &n in &clients {
            let before: Vec<DvStats> = servers.iter().map(DvServer::stats).collect();
            let kill_now = degraded && !victim_killed;
            let point = if kill_now {
                victim_killed = true;
                let victim = &servers[1];
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        std::thread::sleep(Duration::from_secs_f64(secs / 2.0));
                        victim.shutdown();
                    });
                    run_point(
                        Arc::clone(&addrs),
                        steps,
                        workload,
                        n,
                        secs,
                        Arc::clone(&cdf),
                        degraded,
                    )
                })
            } else {
                run_point(
                    Arc::clone(&addrs),
                    steps,
                    workload,
                    n,
                    secs,
                    Arc::clone(&cdf),
                    degraded,
                )
            };
            if kill_now {
                println!("{:>8} member 1 killed mid-point: failover service by survivors", "");
            }
            let after: Vec<DvStats> = servers.iter().map(DvServer::stats).collect();
            // Per-daemon deltas plus the cluster-wide roll-up.
            let d_at = |i: usize, f: fn(&DvStats) -> u64| {
                f(&after[i]).saturating_sub(f(&before[i]))
            };
            let d = |f: fn(&DvStats) -> u64| -> u64 {
                (0..servers.len()).map(|i| d_at(i, f)).sum()
            };
            let (fast, slow) = (d(|s| s.acquired_fast), d(|s| s.acquired_slow));
            let (misses, fallbacks) = (d(|s| s.misses), d(|s| s.hit_fallbacks));
            // Roll-up counters: every DvStats field reaches the JSON
            // line (simlint's stats check pins this contract).
            let hits = d(|s| s.hits);
            let restarts = d(|s| s.restarts);
            let scheduled_steps = d(|s| s.scheduled_steps);
            let produced_steps = d(|s| s.produced_steps);
            let evictions = d(|s| s.evictions);
            let failures = d(|s| s.failures);
            let accept_retries = d(|s| s.accept_retries);
            let takeover_pins_handed_back = d(|s| s.takeover_pins_handed_back);
            // Agent-quality counters (all zero for prefetch-off runs).
            let prefetch_launches = d(|s| s.prefetch_launches);
            let prefetch_hits = d(|s| s.prefetch_hits);
            let pollution_resets = d(|s| s.pollution_resets);
            let kills = d(|s| s.kills);
            let digest_replayed = d(|s| s.digest_replayed);
            let digest_dropped = d(|s| s.digest_dropped);
            // Durability counters (all zero with the WAL off).
            let wal_appends = d(|s| s.wal_appends);
            let wal_replayed = d(|s| s.wal_replayed);
            let pins_recovered = d(|s| s.pins_recovered);
            let leases_expired = d(|s| s.leases_expired);
            let client_reconnects = d(|s| s.client_reconnects);
            // Failover counters (all zero outside degraded runs).
            let takeover_acquires = d(|s| s.takeover_acquires);
            let takeover_intervals_primed = d(|s| s.takeover_intervals_primed);
            // Supervision counters (all zero without --sim-faults:
            // the retry tier must stay off the hot path).
            let sim_retries = d(|s| s.sim_retries);
            let sims_hung_killed = d(|s| s.sims_hung_killed);
            let intervals_poisoned = d(|s| s.intervals_poisoned);
            let corrupt_outputs = d(|s| s.corrupt_outputs);
            // Effect-tier counters (all zero with --effect-helpers 0).
            let effects_offloaded = d(|s| s.effects_offloaded);
            let helper_queue_full = d(|s| s.helper_queue_full);
            let wal_syncs = d(|s| s.wal_syncs);
            let per_class = |ns: fn(&DvStats) -> u64, ops: fn(&DvStats) -> u64| {
                d(ns).checked_div(d(ops)).unwrap_or(0)
            };
            let effect_spawn_ns = per_class(|s| s.effect_spawn_ns, |s| s.effect_spawn_ops);
            let effect_spawn_ops = d(|s| s.effect_spawn_ops);
            let effect_wal_ns = per_class(|s| s.effect_wal_ns, |s| s.effect_wal_ops);
            let effect_wal_ops = d(|s| s.effect_wal_ops);
            let effect_evict_ns = per_class(|s| s.effect_evict_ns, |s| s.effect_evict_ops);
            let effect_evict_ops = d(|s| s.effect_evict_ops);
            let effect_read_ns = per_class(|s| s.effect_read_ns, |s| s.effect_read_ops);
            let effect_read_ops = d(|s| s.effect_read_ops);
            let transitions = d(|s| s.lock_transitions);
            let hold_per_transition =
                d(|s| s.lock_hold_ns).checked_div(transitions).unwrap_or(0);
            let wait_per_transition =
                d(|s| s.lock_wait_ns).checked_div(transitions).unwrap_or(0);
            let rtps = point.round_trips as f64 / point.elapsed;
            println!(
                "{n:>8} {:>12} {rtps:>9.0} {:>9.1} {:>9.1} {fast:>10} {slow:>10} {misses:>8} \
                 {fallbacks:>8} {hold_per_transition:>9}",
                point.round_trips, point.p50_us, point.p99_us
            );
            if spec.prefetch {
                println!(
                    "{:>8} agents: {prefetch_launches} launches, {prefetch_hits} prefetch \
                     hits, {pollution_resets} pollution resets, {kills} kills, digest \
                     {digest_replayed} replayed / {digest_dropped} dropped",
                    ""
                );
            }
            if durable {
                println!(
                    "{:>8} wal: {wal_appends} appends, {wal_replayed} replayed, \
                     {pins_recovered} pins recovered, {leases_expired} leases expired, \
                     {client_reconnects} reconnects",
                    ""
                );
            }
            if degraded {
                println!(
                    "{:>8} failover: {takeover_acquires} takeover acquires, \
                     {takeover_intervals_primed} intervals primed on takers",
                    ""
                );
            }
            if sim_faults > 0 {
                println!(
                    "{:>8} supervision: {corrupt_outputs} corrupt outputs rejected, \
                     {sim_retries} sim retries, {sims_hung_killed} hung kills, \
                     {intervals_poisoned} intervals poisoned",
                    ""
                );
            }
            if effects_offloaded > 0 {
                println!(
                    "{:>8} effects: {effects_offloaded} offloaded, {helper_queue_full} \
                     queue-full stalls, {wal_syncs} wal syncs; ns/op spawn {effect_spawn_ns} \
                     wal {effect_wal_ns} evict {effect_evict_ns} read {effect_read_ns}",
                    ""
                );
            }
            // Per-daemon acquire rates: how evenly the interval hash
            // spread the load across the cluster.
            let per_daemon: Vec<f64> = (0..servers.len())
                .map(|i| {
                    (d_at(i, |s| s.acquired_fast) + d_at(i, |s| s.acquired_slow)) as f64
                        / point.elapsed
                })
                .collect();
            if cluster > 1 {
                let shares = per_daemon
                    .iter()
                    .enumerate()
                    .map(|(i, r)| format!("d{i} {r:.0}/s"))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("{:>8} per-daemon acquires: {shares}", "");
            }
            let per_daemon_json = per_daemon
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
                .join(", ");
            lines.push(format!(
                "    {{\"workload\": \"{}\", \"prefetch\": {}, \"cluster\": {cluster}, \
                 \"degraded\": {degraded}, \
                 \"clients\": {n}, \"secs\": {:.3}, \
                 \"round_trips\": {}, \"rtps\": {rtps:.1}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"acquired_fast\": {fast}, \"acquired_slow\": {slow}, \
                 \"misses\": {misses}, \"hit_fallbacks\": {fallbacks}, \
                 \"hits\": {hits}, \"restarts\": {restarts}, \
                 \"scheduled_steps\": {scheduled_steps}, \
                 \"produced_steps\": {produced_steps}, \
                 \"evictions\": {evictions}, \"failures\": {failures}, \
                 \"accept_retries\": {accept_retries}, \
                 \"prefetch_launches\": {prefetch_launches}, \
                 \"prefetch_hits\": {prefetch_hits}, \
                 \"pollution_resets\": {pollution_resets}, \"kills\": {kills}, \
                 \"digest_replayed\": {digest_replayed}, \
                 \"digest_dropped\": {digest_dropped}, \
                 \"durable\": {durable}, \"wal_appends\": {wal_appends}, \
                 \"wal_replayed\": {wal_replayed}, \
                 \"pins_recovered\": {pins_recovered}, \
                 \"leases_expired\": {leases_expired}, \
                 \"client_reconnects\": {client_reconnects}, \
                 \"takeover_acquires\": {takeover_acquires}, \
                 \"takeover_intervals_primed\": {takeover_intervals_primed}, \
                 \"takeover_pins_handed_back\": {takeover_pins_handed_back}, \
                 \"sim_faults\": {sim_faults}, \"sim_retries\": {sim_retries}, \
                 \"sims_hung_killed\": {sims_hung_killed}, \
                 \"intervals_poisoned\": {intervals_poisoned}, \
                 \"corrupt_outputs\": {corrupt_outputs}, \
                 \"effects_offloaded\": {effects_offloaded}, \
                 \"helper_queue_full\": {helper_queue_full}, \
                 \"wal_syncs\": {wal_syncs}, \
                 \"effect_spawn_ns_per_op\": {effect_spawn_ns}, \
                 \"effect_spawn_ops\": {effect_spawn_ops}, \
                 \"effect_wal_ns_per_op\": {effect_wal_ns}, \
                 \"effect_wal_ops\": {effect_wal_ops}, \
                 \"effect_evict_ns_per_op\": {effect_evict_ns}, \
                 \"effect_evict_ops\": {effect_evict_ops}, \
                 \"effect_read_ns_per_op\": {effect_read_ns}, \
                 \"effect_read_ops\": {effect_read_ops}, \
                 \"lock_hold_ns_per_transition\": {hold_per_transition}, \
                 \"lock_wait_ns_per_transition\": {wait_per_transition}, \
                 \"per_daemon_acquires_per_sec\": [{per_daemon_json}], \
                 \"daemon_threads_before_clients\": {daemon_threads}}}",
                workload.name(), spec.prefetch,
                point.elapsed, point.round_trips, point.p50_us, point.p99_us
            ));
        }

        for server in &servers {
            server.shutdown();
        }
        drop(servers);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // No top-level "cluster" key: every result line carries its own,
    // so runs at different cluster sizes can be merged into one file
    // (as the committed BENCH_daemon.json is).
    let json = format!(
        "{{\n  \"bench\": \"daemon_acquire_release_roundtrips\",\n  \"dv_shards\": {dv_shards},\n  \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).unwrap();
    println!("wrote {out}");
}
