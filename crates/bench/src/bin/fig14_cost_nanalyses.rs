//! Fig. 14: cost vs number of analyses (Δt = 2 y, overlap 50%).
//!
//! `cargo run -p simfs-bench --bin fig14_cost_nanalyses [--full]`

use simfs_bench::{costfigs, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let (table, results) = costfigs::fig14(&opts);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig14_cost_nanalyses")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());

    // The paper's crossover: below ~20 analyses in-situ wins, above it
    // SimFS wins.
    let few = results
        .iter()
        .find(|r| r.case.dr_hours == 8.0 && r.case.cache_fraction == 0.25 && r.case.n_analyses == 5);
    let many = results
        .iter()
        .find(|r| r.case.dr_hours == 8.0 && r.case.cache_fraction == 0.25 && r.case.n_analyses == 125);
    if let (Some(few), Some(many)) = (few, many) {
        println!(
            "\ncrossover check: z=5 in-situ {:.0}$ vs SimFS {:.0}$; z=125 in-situ {:.0}$ vs SimFS {:.0}$",
            few.in_situ, few.simfs, many.in_situ, many.simfs
        );
    }
}
