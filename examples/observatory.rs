//! A "virtual observatory" (the paper's astrophysics motivation):
//! one SimFS daemon serves *multiple simulation contexts* (§II), and an
//! analyst switches between them — "analyzing a coarser grain
//! simulation output on a simulation context and then switch to finer
//! grain on a different context for a more detailed study of
//! interesting events."
//!
//! ```sh
//! cargo run --example observatory
//! ```

use simfs::launchers::KernelLauncher;
use simfs::prelude::*;
use simfs::setup::run_initial_simulation;
use simfs_core::server::ServerConfig;
use simulators::SimKind;
use std::sync::Arc;
use std::time::Duration;

fn context(
    name: &str,
    kind: SimKind,
    seed: u64,
    dd: u64,
    dr: u64,
    timesteps: u64,
    dir: &std::path::Path,
) -> std::io::Result<ServerConfig> {
    let storage = StorageArea::create(dir, u64::MAX)?;
    let init = run_initial_simulation(&storage, kind, seed, dd, dr, timesteps)?;
    let sample = simulators::build_sim(kind, seed).output().encode();
    let step_bytes = sample.len() as u64;
    let n_outputs = timesteps / dd;
    Ok(ServerConfig {
        ctx: ContextCfg::new(
            name,
            StepMath::new(dd, dr, timesteps),
            step_bytes,
            n_outputs / 4 * step_bytes, // 25% cache
        )
        .with_policy("dcl")
        .with_smax(4),
        driver: Arc::new(PatternDriver::new("out-", ".sdf", 6)),
        storage,
        launcher: Arc::new(KernelLauncher::new(
            kind,
            dd,
            dr,
            Duration::from_millis(15),
            Duration::from_millis(3),
        )),
        checksums: init.checksums,
        dv_shards: 1,
        cluster: ClusterMember::SOLO,
        durability: DurabilityCfg::default(),
    })
}

fn main() -> std::io::Result<()> {
    let base = std::env::temp_dir().join(format!("simfs-observatory-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!("running initial simulations for two contexts...");
    // A coarse climate run and a fine blast-wave run, one daemon.
    let climate = context("climate-5min", SimKind::Heat2d, 7, 5, 60, 600, &base.join("climate"))?;
    let blast = context("blastwave-hires", SimKind::Sedov, 0, 1, 20, 200, &base.join("blast"))?;
    let server = DvServer::start_multi(vec![climate, blast], "127.0.0.1:0")?;
    println!(
        "observatory daemon on {} serving contexts {:?}",
        server.addr(),
        server.context_names()
    );

    // Analyst 1 browses the coarse climate data...
    let mut climate_session = SimfsClient::connect(server.addr(), "climate-5min")?;
    println!("\nbrowsing climate context:");
    for key in [30u64, 31, 32, 33] {
        let status = climate_session.acquire(&[key])?;
        assert!(status.ok());
        climate_session.release(key)?;
    }
    let s = climate_session.status()?;
    println!(
        "  climate-5min: {} hits / {} misses, {} re-simulations",
        s.hits, s.misses, s.restarts
    );

    // ...spots something interesting and switches to the fine context
    // (a second SIMFS_Init with a different context name).
    let mut blast_session = SimfsClient::connect(server.addr(), "blastwave-hires")?;
    println!("\nzooming into the blast-wave context:");
    for key in [95u64, 96, 97, 98, 99, 100] {
        let status = blast_session.acquire(&[key])?;
        assert!(status.ok());
        // Detailed study: verify bit-reproducibility of the zoomed data.
        assert_eq!(blast_session.bitrep(key)?, Some(true));
        blast_session.release(key)?;
    }
    let s = blast_session.status()?;
    println!(
        "  blastwave-hires: {} hits / {} misses, {} re-simulations, all bitwise verified",
        s.hits, s.misses, s.restarts
    );

    climate_session.finalize()?;
    blast_session.finalize()?;
    server.shutdown();
    std::fs::remove_dir_all(&base)?;
    println!("\nobservatory OK");
    Ok(())
}
