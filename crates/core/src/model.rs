//! The simulation model (§II-A): cadences, restart mapping, miss costs.
//!
//! A simulation advances in timesteps `t_1 .. t_n`; every `Δd` timesteps
//! it emits an *output step*, every `Δr` timesteps a *restart step*.
//! Output steps are keyed `1 ..= N` (`N = n/Δd`); restart steps are keyed
//! `0 ..= n/Δr` with restart 0 being the initial condition.
//!
//! To produce output step `d_i` the simulation restarts from
//! `R(d_i) = ⌊i·Δd/Δr⌋` and — to exploit spatial locality — runs until
//! at least the next restart boundary `⌈i·Δd/Δr⌉`.
//!
//! We require `Δr` to be a multiple of `Δd` (true for every configuration
//! in the paper: 1440/15, 60/5, 20/1, 48-step Fig. 5 intervals), giving
//! `B = Δr/Δd` output steps per restart interval. A miss on key `i`:
//!
//! * if `i` is a restart boundary (`i % B == 0`): the restart file *is*
//!   the state at `d_i`; the re-simulation only dumps that one step
//!   (miss cost 0);
//! * otherwise: re-simulate the whole interval
//!   `⌊i/B⌋·B + 1 ..= (⌊i/B⌋+1)·B`, at miss cost `i mod B` — the
//!   distance, in output steps, from the previous restart (§III-D).

use serde::{Deserialize, Serialize};
use simbatch::ParallelismMap;
use simkit::Dur;
use std::ops::RangeInclusive;

/// Cadence math for one simulation context.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepMath {
    /// Timesteps between output steps (`Δd`).
    pub dd: u64,
    /// Timesteps between restart steps (`Δr`), a multiple of `Δd`.
    pub dr: u64,
    /// Total timeline length in timesteps (`n`).
    pub n_timesteps: u64,
}

impl StepMath {
    /// Creates the cadence math.
    ///
    /// # Panics
    /// Panics unless `0 < Δd ≤ Δr`, `Δr % Δd == 0`, and the timeline
    /// holds at least one output step.
    pub fn new(dd: u64, dr: u64, n_timesteps: u64) -> StepMath {
        assert!(dd > 0, "Δd must be positive");
        assert!(dr >= dd, "Δr must be at least Δd");
        assert!(
            dr.is_multiple_of(dd),
            "Δr ({dr}) must be a multiple of Δd ({dd}); see model docs"
        );
        assert!(n_timesteps >= dd, "timeline shorter than one output step");
        StepMath { dd, dr, n_timesteps }
    }

    /// Output steps per restart interval (`B = Δr/Δd`).
    pub fn outputs_per_interval(&self) -> u64 {
        self.dr / self.dd
    }

    /// Number of output steps on the timeline (`N`).
    pub fn n_outputs(&self) -> u64 {
        self.n_timesteps / self.dd
    }

    /// Number of restart steps written (excluding the initial condition,
    /// which is restart 0).
    pub fn n_restarts(&self) -> u64 {
        self.n_timesteps / self.dr
    }

    /// Is `key` a valid output-step key?
    pub fn valid_key(&self, key: u64) -> bool {
        key >= 1 && key <= self.n_outputs()
    }

    /// `R(d_i) = ⌊i·Δd/Δr⌋`: the restart step a re-simulation of `key`
    /// starts from.
    pub fn restart_before(&self, key: u64) -> u64 {
        key * self.dd / self.dr
    }

    /// `⌈i·Δd/Δr⌉`: the restart boundary a re-simulation runs to.
    pub fn restart_after(&self, key: u64) -> u64 {
        (key * self.dd).div_ceil(self.dr)
    }

    /// Miss cost of `key`: distance in output steps from its previous
    /// restart step (0 exactly on a boundary) — the cost input of the
    /// BCL/DCL policies (§III-D).
    pub fn miss_cost(&self, key: u64) -> u64 {
        key % self.outputs_per_interval()
    }

    /// The output-step keys produced by the re-simulation serving a miss
    /// on `key` (§II-A): the single step if `key` sits on a restart
    /// boundary, else the whole enclosing restart interval (clamped to
    /// the timeline end).
    pub fn resim_range(&self, key: u64) -> RangeInclusive<u64> {
        debug_assert!(self.valid_key(key), "invalid key {key}");
        let b = self.outputs_per_interval();
        if key.is_multiple_of(b) {
            key..=key
        } else {
            let j = key / b;
            let stop = ((j + 1) * b).min(self.n_outputs());
            (j * b + 1)..=stop
        }
    }

    /// The restart index the re-simulation for `key` loads.
    pub fn resim_restart(&self, key: u64) -> u64 {
        // A boundary key (`key % b == 0`) loads the restart written at
        // that very step; a non-boundary key loads the restart opening
        // its interval. Both are `floor(key / b)`.
        key / self.outputs_per_interval()
    }

    /// The output keys inside restart interval `j` (clamped), i.e. the
    /// range a prefetched simulation of interval `j` produces.
    pub fn interval_keys(&self, j: u64) -> RangeInclusive<u64> {
        let b = self.outputs_per_interval();
        let start = j * b + 1;
        let stop = ((j + 1) * b).min(self.n_outputs());
        start..=stop
    }

    /// The restart interval containing `key` (for non-boundary keys; a
    /// boundary key belongs to the interval it terminates).
    pub fn interval_of(&self, key: u64) -> u64 {
        let b = self.outputs_per_interval();
        key.div_ceil(b) - 1
    }

    /// Number of restart intervals covering the timeline.
    pub fn n_intervals(&self) -> u64 {
        self.n_outputs().div_ceil(self.outputs_per_interval())
    }

    /// Stable fingerprint of the cadence configuration (FNV-1a over
    /// `Δd`, `Δr`, `n`), exchanged in the cluster hello handshake: a
    /// client and a daemon that disagree on the step math would hash
    /// intervals differently and silently misroute every key, so the
    /// daemon rejects mismatched fingerprints at session setup.
    pub fn config_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for field in [self.dd, self.dr, self.n_timesteps] {
            for byte in field.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// Full configuration of a simulation context (§II "Simulation
/// Contexts": a simulator plus one of its configurations, exposed to
/// analyses by name).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContextCfg {
    /// Context name analyses select (environment variable / `SIMFS_Init`
    /// argument in the paper).
    pub name: String,
    /// Cadence and timeline.
    pub steps: StepMath,
    /// Bytes per output step (`s_o`) for cache accounting.
    pub output_bytes: u64,
    /// Storage-area budget in bytes (`M`).
    pub cache_capacity: u64,
    /// Replacement policy name (`lru`/`lirs`/`arc`/`bcl`/`dcl`; the
    /// paper fixes DCL after Fig. 5).
    pub policy: String,
    /// Maximum number of simultaneously running re-simulations
    /// (`s_max`, §VI).
    pub smax: u32,
    /// Enable the prefetch agents (§IV-B).
    pub prefetch: bool,
    /// Conservative prefetching: instead of launching `s_opt` parallel
    /// simulations at once, start with one and double at each
    /// prefetching step (§IV-B1b: "a simulation context can be
    /// configured to not prefetch directly s_opt simulations at time").
    pub prefetch_ramp: bool,
    /// Parallelism-level mapping for bandwidth matching (§IV-B1b).
    pub parallelism: ParallelismMap,
    /// Smoothing factor of the restart-latency moving average
    /// (§IV-C1c: "the smoothing factor is a parameter defined in the
    /// simulation context").
    pub ema_alpha: f64,
    /// Production-supervision knobs: retry/backoff, poison quarantine,
    /// hang watchdog (see the [`crate::dv`] module doc). Defaulted so
    /// configurations written before supervision existed still load.
    #[serde(default)]
    pub supervisor: SupervisorCfg,
}

impl ContextCfg {
    /// A context with sensible defaults: DCL policy, prefetching on,
    /// `s_max = 8`, EMA smoothing 0.5.
    pub fn new(name: impl Into<String>, steps: StepMath, output_bytes: u64, cache_capacity: u64) -> Self {
        ContextCfg {
            name: name.into(),
            steps,
            output_bytes,
            cache_capacity,
            policy: "dcl".to_string(),
            smax: 8,
            prefetch: true,
            prefetch_ramp: false,
            parallelism: ParallelismMap::unconstrained(1, 4),
            ema_alpha: 0.5,
            supervisor: SupervisorCfg::default(),
        }
    }

    /// Cache capacity expressed in output steps.
    pub fn cache_capacity_steps(&self) -> u64 {
        (self.cache_capacity / self.output_bytes.max(1)).max(1)
    }

    /// Builder: replacement policy.
    pub fn with_policy(mut self, policy: &str) -> Self {
        self.policy = policy.to_string();
        self
    }

    /// Builder: `s_max`.
    pub fn with_smax(mut self, smax: u32) -> Self {
        self.smax = smax.max(1);
        self
    }

    /// Builder: prefetching on/off.
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Builder: conservative doubling ramp for prefetch parallelism.
    pub fn with_prefetch_ramp(mut self, on: bool) -> Self {
        self.prefetch_ramp = on;
        self
    }

    /// Builder: production-supervision knobs.
    pub fn with_supervisor(mut self, supervisor: SupervisorCfg) -> Self {
        self.supervisor = supervisor;
        self
    }
}

/// Production-supervision knobs of one context: how the DV reacts when
/// a re-simulation fails, stalls, or produces corrupt output (see the
/// retry/poison state machine in the [`crate::dv`] module doc).
///
/// Defaults are sized for real deployments — wall-clock floors in the
/// tens of seconds — so millisecond-scale test productions never trip
/// the watchdog by accident; the fault-injection tests shrink them
/// explicitly.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SupervisorCfg {
    /// Launch attempts per restart interval before it is poisoned.
    pub attempt_budget: u32,
    /// Backoff before retry attempt `n` is `backoff_base · 2^(n-1)`,
    /// capped at [`backoff_cap`](Self::backoff_cap), with deterministic
    /// ±25 % jitter.
    pub backoff_base: Dur,
    /// Upper bound of the exponential backoff ladder.
    pub backoff_cap: Dur,
    /// How long a poisoned interval short-circuits acquires before the
    /// quarantine expires and the attempt budget resets.
    pub quarantine: Dur,
    /// The hang deadline is the current `alpha_sim` (not yet started)
    /// or `tau_sim` (producing) estimate scaled by this factor ...
    pub hang_multiplier: f64,
    /// ... clamped to no less than this floor ...
    pub hang_floor: Dur,
    /// ... and no more than this ceiling.
    pub hang_ceiling: Dur,
}

impl Default for SupervisorCfg {
    fn default() -> SupervisorCfg {
        SupervisorCfg {
            attempt_budget: 3,
            backoff_base: Dur::from_millis(100),
            backoff_cap: Dur::from_secs(10),
            quarantine: Dur::from_secs(30),
            hang_multiplier: 8.0,
            hang_floor: Dur::from_secs(30),
            hang_ceiling: Dur::from_mins(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn math() -> StepMath {
        // Fig. 5 configuration: Δd = 5 min, Δr = 4 h of 1-min timesteps
        // scaled: use dd=5, dr=240 timesteps, B = 48.
        StepMath::new(5, 240, 5 * 1152)
    }

    #[test]
    fn counts() {
        let m = math();
        assert_eq!(m.outputs_per_interval(), 48);
        assert_eq!(m.n_outputs(), 1152);
        assert_eq!(m.n_restarts(), 24);
        assert_eq!(m.n_intervals(), 24);
    }

    #[test]
    fn restart_mapping_matches_paper_formula() {
        let m = StepMath::new(4, 8, 64); // the paper's Fig. 3: Δd=4, Δr=8
        // d_1 covers t in (0,4]: restart R = ⌊1·4/8⌋ = 0.
        assert_eq!(m.restart_before(1), 0);
        // d_2 at t=8: R = 1 (restart exactly there).
        assert_eq!(m.restart_before(2), 1);
        assert_eq!(m.restart_after(1), 1);
        assert_eq!(m.restart_after(3), 2);
    }

    #[test]
    fn miss_costs_cycle_within_interval() {
        let m = math(); // B = 48
        assert_eq!(m.miss_cost(1), 1);
        assert_eq!(m.miss_cost(47), 47);
        assert_eq!(m.miss_cost(48), 0, "boundary steps are free");
        assert_eq!(m.miss_cost(49), 1);
        assert_eq!(m.miss_cost(96), 0);
    }

    #[test]
    fn resim_range_covers_interval() {
        let m = math();
        assert_eq!(m.resim_range(1), 1..=48);
        assert_eq!(m.resim_range(47), 1..=48);
        assert_eq!(m.resim_range(48), 48..=48, "boundary: dump only");
        assert_eq!(m.resim_range(49), 49..=96);
        assert_eq!(m.resim_restart(49), 1);
        assert_eq!(m.resim_restart(48), 1);
    }

    #[test]
    fn resim_range_clamps_at_timeline_end() {
        let m = StepMath::new(1, 10, 25); // B=10, N=25
        assert_eq!(m.resim_range(23), 21..=25);
        assert_eq!(m.interval_keys(2), 21..=25);
    }

    #[test]
    fn interval_of_is_consistent_with_interval_keys() {
        let m = math();
        for key in 1..=m.n_outputs() {
            let j = m.interval_of(key);
            let range = m.interval_keys(j);
            assert!(
                range.contains(&key),
                "key {key} not in its interval {j} ({range:?})"
            );
        }
    }

    #[test]
    fn key_validity() {
        let m = math();
        assert!(!m.valid_key(0));
        assert!(m.valid_key(1));
        assert!(m.valid_key(1152));
        assert!(!m.valid_key(1153));
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn non_divisible_cadence_rejected() {
        StepMath::new(4, 10, 100);
    }

    #[test]
    fn config_hash_separates_cadences() {
        let a = StepMath::new(1, 4, 64).config_hash();
        assert_eq!(a, StepMath::new(1, 4, 64).config_hash(), "deterministic");
        assert_ne!(a, StepMath::new(1, 4, 68).config_hash());
        assert_ne!(a, StepMath::new(1, 8, 64).config_hash());
        assert_ne!(a, StepMath::new(2, 4, 64).config_hash());
    }

    #[test]
    fn context_builders() {
        let cfg = ContextCfg::new("cosmo", math(), 100, 1000)
            .with_policy("lru")
            .with_smax(0)
            .with_prefetch(false);
        assert_eq!(cfg.policy, "lru");
        assert_eq!(cfg.smax, 1, "smax clamped to ≥ 1");
        assert!(!cfg.prefetch);
        assert_eq!(cfg.cache_capacity_steps(), 10);
    }
}
