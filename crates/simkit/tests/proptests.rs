//! Property tests for the DES engine: ordering, determinism, statistics.

use proptest::prelude::*;
use simkit::{derive_seed, median_ci95, percentile, Engine, SeedSeq, SimTime, Tally};

proptest! {
    /// Events always execute in non-decreasing time order, whatever the
    /// scheduling order was.
    #[test]
    fn events_execute_in_time_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut en: Engine<Vec<u64>> = Engine::new();
        let mut fired: Vec<u64> = Vec::new();
        for &t in &times {
            en.schedule_at(SimTime::from_nanos(t), move |en, log: &mut Vec<u64>| {
                log.push(en.now().as_nanos());
            });
        }
        en.run(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        prop_assert!(fired.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }

    /// Cancelling a subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut en: Engine<Vec<usize>> = Engine::new();
        let mut fired: Vec<usize> = Vec::new();
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            ids.push(en.schedule_at(SimTime::from_nanos(t), move |_, log: &mut Vec<usize>| {
                log.push(i);
            }));
        }
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                en.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        en.run(&mut fired);
        fired.sort_unstable();
        prop_assert_eq!(fired, expected);
    }

    /// The same seed yields the same derived streams; different seeds
    /// yield different streams.
    #[test]
    fn seed_derivation_is_stable(root in any::<u64>(), stream in any::<u64>()) {
        prop_assert_eq!(derive_seed(root, stream), derive_seed(root, stream));
        let seq = SeedSeq::new(root);
        prop_assert_eq!(seq.seed(stream), derive_seed(root, stream));
    }

    /// Tally mean/min/max bracket every observation.
    #[test]
    fn tally_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut t = Tally::new();
        for &x in &xs {
            t.add(x);
        }
        prop_assert!(t.min() <= t.mean() + 1e-9);
        prop_assert!(t.mean() <= t.max() + 1e-9);
        prop_assert_eq!(t.count(), xs.len() as u64);
        prop_assert!(t.variance() >= 0.0);
    }

    /// Percentiles are monotone in q and bounded by the sample range.
    #[test]
    fn percentile_monotone(mut xs in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q1 = percentile(&xs, 0.25);
        let q2 = percentile(&xs, 0.5);
        let q3 = percentile(&xs, 0.75);
        prop_assert!(xs[0] <= q1 && q1 <= q2 && q2 <= q3 && q3 <= xs[xs.len()-1]);
    }

    /// The median CI contains the median.
    #[test]
    fn median_ci_contains_median(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let (m, lo, hi) = median_ci95(&xs);
        prop_assert!(lo <= m + 1e-9);
        prop_assert!(m <= hi + 1e-9);
    }
}

/// Determinism end-to-end: an engine run that uses derived RNG streams in
/// its handlers produces an identical log when re-run with the same root
/// seed.
#[test]
fn engine_runs_are_reproducible() {
    fn run(seed: u64) -> Vec<(u64, u64)> {
        use rand::Rng;
        let seq = SeedSeq::new(seed);
        let mut en: Engine<Vec<(u64, u64)>> = Engine::new();
        let mut log = Vec::new();
        for stream in 0..20u64 {
            let mut rng = seq.rng(stream);
            let at = SimTime::from_nanos(rng.gen_range(0u64..1_000));
            en.schedule_at(at, move |en, log: &mut Vec<(u64, u64)>| {
                log.push((stream, en.now().as_nanos()));
            });
        }
        en.run(&mut log);
        log
    }
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
