//! Experiment statistics: online tallies, percentiles, and the
//! nonparametric median confidence interval used throughout the paper's
//! evaluation ("we repeat each experiment 100 times ... and report the
//! median and the 95% CI of the measured counts", §III-D).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Online summary accumulator (Welford's algorithm): numerically stable
/// mean/variance in one pass, no sample storage.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another tally into this one (parallel reduction).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty tally).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Linear-interpolation percentile of a **sorted** slice, `q` in `[0, 1]`.
///
/// # Panics
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median with a distribution-free 95% confidence interval from order
/// statistics: ranks `n/2 ± 1.96·√n/2` (clamped), the standard binomial
/// approximation. For tiny samples the interval degenerates to the range.
///
/// Returns `(median, ci_lo, ci_hi)`.
pub fn median_ci95(samples: &[f64]) -> (f64, f64, f64) {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = s.len();
    let med = percentile(&s, 0.5);
    let half = 1.959964 * (n as f64).sqrt() / 2.0;
    let lo = ((n as f64 / 2.0 - half).floor().max(0.0)) as usize;
    let hi = (((n as f64 / 2.0 + half).ceil()) as usize).min(n - 1);
    (med, s[lo], s[hi])
}

/// Full summary of a finished sample, ready for table output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub median: f64,
    /// Lower bound of the 95% CI of the median.
    pub ci_lo: f64,
    /// Upper bound of the 95% CI of the median.
    pub ci_hi: f64,
}

impl Summary {
    /// Summarizes a sample. Panics on an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        let mut tally = Tally::new();
        for &x in samples {
            tally.add(x);
        }
        let (median, ci_lo, ci_hi) = median_ci95(samples);
        Summary {
            n: samples.len(),
            mean: tally.mean(),
            sd: tally.std_dev(),
            min: tally.min(),
            max: tally.max(),
            median,
            ci_lo,
            ci_hi,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} median={:.2} [{:.2}, {:.2}] mean={:.2}±{:.2} range=[{:.2}, {:.2}]",
            self.n, self.median, self.ci_lo, self.ci_hi, self.mean, self.sd, self.min, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_matches_naive_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut t = Tally::new();
        for &x in &xs {
            t.add(x);
        }
        assert_eq!(t.count(), 8);
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // naive unbiased variance = 32/7
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = Tally::new();
        let mut right = Tally::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Tally::new();
        a.add(1.0);
        a.add(3.0);
        let before = a.clone();
        a.merge(&Tally::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut e = Tally::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert!((percentile(&s, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn median_of_odd_sample() {
        let (m, lo, hi) = median_ci95(&[3.0, 1.0, 2.0]);
        assert_eq!(m, 2.0);
        assert!(lo <= m && m <= hi);
    }

    #[test]
    fn median_ci_narrows_with_n() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, lo_s, hi_s) = median_ci95(&small);
        let (_, lo_l, hi_l) = median_ci95(&large);
        assert!(hi_l - lo_l <= hi_s - lo_s);
    }

    #[test]
    fn summary_display_is_stable() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("median=2.00"));
    }

    #[test]
    fn unsorted_input_to_median_is_fine() {
        let (m, _, _) = median_ci95(&[9.0, 1.0, 5.0, 3.0, 7.0]);
        assert_eq!(m, 5.0);
    }
}
