//! Scan-pattern generators: forward, backward, strided, random, and the
//! concatenated multi-trace workload of Fig. 5.

use crate::{Pattern, Trace};
use rand::Rng;
use simkit::SimRng;

/// Forward scan of `len` steps starting at `start` (clamped so the scan
/// fits inside `0..timeline_steps`).
pub fn forward_scan(timeline_steps: u64, start: u64, len: u64) -> Vec<u64> {
    assert!(timeline_steps > 0, "empty timeline");
    let len = len.min(timeline_steps);
    let start = start.min(timeline_steps - len);
    (start..start + len).collect()
}

/// Backward scan of `len` steps ending at... starting from a high step
/// and walking down, clamped to fit.
pub fn backward_scan(timeline_steps: u64, start_high: u64, len: u64) -> Vec<u64> {
    assert!(timeline_steps > 0, "empty timeline");
    let len = len.min(timeline_steps);
    let start_high = start_high.clamp(len - 1, timeline_steps - 1);
    (0..len).map(|i| start_high - i).collect()
}

/// k-strided forward (`stride > 0`) or backward (`stride < 0`) scan of
/// `len` accesses from `start`, truncated at the timeline boundary.
pub fn strided_scan(timeline_steps: u64, start: u64, len: u64, stride: i64) -> Vec<u64> {
    assert!(stride != 0, "stride must be non-zero");
    let mut out = Vec::with_capacity(len as usize);
    let mut cur = start as i128;
    for _ in 0..len {
        if cur < 0 || cur >= timeline_steps as i128 {
            break;
        }
        out.push(cur as u64);
        cur += stride as i128;
    }
    out
}

/// `len` uniformly random accesses over the timeline.
pub fn random_accesses(rng: &mut SimRng, timeline_steps: u64, len: u64) -> Vec<u64> {
    assert!(timeline_steps > 0, "empty timeline");
    (0..len).map(|_| rng.gen_range(0..timeline_steps)).collect()
}

/// The Fig. 5 workload: `n_traces` single-analysis traces of the given
/// pattern, each starting at a random point of the timeline and
/// accessing a random number of steps in `len_range`, concatenated into
/// one stream (§III-D: 50 traces of 100–400 accesses each).
///
/// For [`Pattern::Ecmwf`] use [`crate::ecmwf::EcmwfSpec`] instead; this
/// function panics on it.
pub fn fig5_trace(
    rng: &mut SimRng,
    pattern: Pattern,
    timeline_steps: u64,
    n_traces: u32,
    len_range: (u64, u64),
) -> Trace {
    assert!(
        pattern != Pattern::Ecmwf,
        "ECMWF traces come from EcmwfSpec, not fig5_trace"
    );
    assert!(len_range.0 >= 1 && len_range.0 <= len_range.1);
    let mut steps = Vec::new();
    for _ in 0..n_traces {
        let len = rng.gen_range(len_range.0..=len_range.1).min(timeline_steps);
        let start = rng.gen_range(0..timeline_steps);
        let part = match pattern {
            Pattern::Forward => forward_scan(timeline_steps, start, len),
            Pattern::Backward => backward_scan(timeline_steps, start, len),
            Pattern::Random => random_accesses(rng, timeline_steps, len),
            Pattern::Ecmwf => unreachable!(),
        };
        steps.extend(part);
    }
    Trace::single(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SeedSeq;

    #[test]
    fn forward_scan_is_consecutive() {
        assert_eq!(forward_scan(100, 10, 5), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn forward_scan_clamps_to_fit() {
        assert_eq!(forward_scan(10, 8, 5), vec![5, 6, 7, 8, 9]);
        assert_eq!(forward_scan(3, 0, 10), vec![0, 1, 2]);
    }

    #[test]
    fn backward_scan_descends() {
        assert_eq!(backward_scan(100, 14, 5), vec![14, 13, 12, 11, 10]);
    }

    #[test]
    fn backward_scan_clamps_to_fit() {
        // start too low for the length: raised so the scan fits.
        assert_eq!(backward_scan(100, 2, 5), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn strided_scans() {
        assert_eq!(strided_scan(100, 0, 4, 3), vec![0, 3, 6, 9]);
        assert_eq!(strided_scan(100, 9, 4, -3), vec![9, 6, 3, 0]);
        // truncation at boundary
        assert_eq!(strided_scan(10, 8, 5, 3), vec![8]);
        assert_eq!(strided_scan(10, 1, 5, -2), vec![1]);
    }

    #[test]
    #[should_panic(expected = "stride must be non-zero")]
    fn zero_stride_panics() {
        strided_scan(10, 0, 3, 0);
    }

    #[test]
    fn random_accesses_in_range() {
        let mut rng = SeedSeq::new(1).rng(0);
        let xs = random_accesses(&mut rng, 50, 500);
        assert_eq!(xs.len(), 500);
        assert!(xs.iter().all(|&x| x < 50));
        // Not all identical (probability ~0 with a working RNG).
        assert!(xs.iter().any(|&x| x != xs[0]));
    }

    #[test]
    fn fig5_trace_shape() {
        let mut rng = SeedSeq::new(2).rng(0);
        let t = fig5_trace(&mut rng, Pattern::Forward, 1152, 50, (100, 400));
        assert!(t.len() >= 50 * 100 && t.len() <= 50 * 400);
        assert!(t.accesses.iter().all(|a| a.step < 1152));
    }

    #[test]
    fn fig5_trace_is_seed_deterministic() {
        let a = fig5_trace(&mut SeedSeq::new(3).rng(0), Pattern::Backward, 1152, 10, (100, 400));
        let b = fig5_trace(&mut SeedSeq::new(3).rng(0), Pattern::Backward, 1152, 10, (100, 400));
        assert_eq!(a, b);
    }

    #[test]
    fn fig5_backward_runs_descend() {
        let mut rng = SeedSeq::new(4).rng(0);
        let t = fig5_trace(&mut rng, Pattern::Backward, 1152, 5, (50, 60));
        // Within each sub-trace the steps descend by one.
        let steps: Vec<u64> = t.accesses.iter().map(|a| a.step).collect();
        let mut descents = 0;
        for w in steps.windows(2) {
            if w[0] > 0 && w[1] == w[0] - 1 {
                descents += 1;
            }
        }
        assert!(descents as f64 > steps.len() as f64 * 0.9);
    }

    #[test]
    #[should_panic(expected = "ECMWF")]
    fn fig5_rejects_ecmwf() {
        let mut rng = SeedSeq::new(5).rng(0);
        fig5_trace(&mut rng, Pattern::Ecmwf, 100, 1, (1, 2));
    }
}
