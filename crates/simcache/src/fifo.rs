//! First-In-First-Out: not part of the paper's Fig. 5 line-up, kept as a
//! recency-oblivious baseline for tests and ablation benches.

use crate::order::KeyedList;
use crate::{PinFn, Policy};

/// FIFO eviction: insertion order only, hits do not reorder.
#[derive(Clone, Debug, Default)]
pub struct Fifo {
    order: KeyedList,
}

impl Fifo {
    /// An empty FIFO policy.
    pub fn new() -> Self {
        Fifo {
            order: KeyedList::new(),
        }
    }
}

impl Policy for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn contains(&self, key: u64) -> bool {
        self.order.contains(key)
    }

    fn len(&self) -> usize {
        self.order.len()
    }

    fn on_hit(&mut self, key: u64) {
        debug_assert!(self.order.contains(key), "FIFO hit on non-resident key");
    }

    fn on_insert(&mut self, key: u64, _cost: u64) {
        self.order.push_front(key);
    }

    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
        let victim = self.order.iter_back_to_front().find(|&k| !pinned(k))?;
        self.order.remove(victim);
        Some(victim)
    }

    fn on_remove(&mut self, key: u64) {
        self.order.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_do_not_save_the_oldest() {
        let mut p = Fifo::new();
        for k in [1, 2, 3] {
            p.on_insert(k, 0);
        }
        p.on_hit(1);
        p.on_hit(1);
        assert_eq!(p.evict(&|_| false), Some(1));
    }

    #[test]
    fn insertion_order_is_eviction_order() {
        let mut p = Fifo::new();
        for k in [10, 20, 30] {
            p.on_insert(k, 0);
        }
        assert_eq!(p.evict(&|_| false), Some(10));
        assert_eq!(p.evict(&|_| false), Some(20));
        assert_eq!(p.evict(&|_| false), Some(30));
        assert_eq!(p.evict(&|_| false), None);
    }
}
