//! Synchronous workload replay: the re-simulation counter behind Fig. 5
//! and `V(γ_Δt)` in the SimFS cost model (§V).
//!
//! Replay abstracts away time: each access either hits the cache or
//! triggers an immediate re-simulation of the enclosing restart interval
//! (§II-A), materializing every produced step. What Fig. 5 reports is
//! exactly what this accumulates — the number of simulated output steps
//! (bars) and of simulation restarts (points) per policy and access
//! pattern.

use crate::model::ContextCfg;
use simcache::{policy_by_name, CacheSim};

/// Counters accumulated by [`replay`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Accesses served from the storage area.
    pub hits: u64,
    /// Accesses that required a re-simulation.
    pub misses: u64,
    /// Simulations restarted (Fig. 5's points).
    pub restarts: u64,
    /// Output steps produced by re-simulations (Fig. 5's bars; the cost
    /// model's `V(γ)`).
    pub simulated_steps: u64,
    /// Steps evicted from the storage area.
    pub evictions: u64,
}

impl ReplayStats {
    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Replays `accesses` against a fresh storage area configured by `cfg`;
/// invalid keys are ignored (traces may exceed a clamped timeline).
pub fn replay(cfg: &ContextCfg, accesses: impl IntoIterator<Item = u64>) -> ReplayStats {
    let capacity_entries = cfg.cache_capacity_steps().max(2) as usize;
    let policy = policy_by_name(&cfg.policy, capacity_entries)
        .unwrap_or_else(|| panic!("unknown replacement policy {:?}", cfg.policy));
    let mut cache = CacheSim::new(policy, cfg.cache_capacity);
    let mut stats = ReplayStats::default();
    let steps = cfg.steps;

    for key in accesses {
        if !steps.valid_key(key) {
            continue;
        }
        if cache.access(key) {
            stats.hits += 1;
            continue;
        }
        stats.misses += 1;
        stats.restarts += 1;
        // Re-simulate the enclosing restart interval; every produced
        // step is written to the storage area (already-resident steps
        // are refreshed on disk but not re-inserted).
        let range = steps.resim_range(key);
        for k in range {
            stats.simulated_steps += 1;
            if !cache.contains(k) {
                let evicted = cache.insert(k, cfg.output_bytes, steps.miss_cost(k));
                stats.evictions += evicted.len() as u64;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StepMath;

    /// B = 4 outputs/interval, N = 48 outputs, cache of `cache_steps`.
    fn cfg(policy: &str, cache_steps: u64) -> ContextCfg {
        ContextCfg::new("replay", StepMath::new(1, 4, 48), 10, cache_steps * 10)
            .with_policy(policy)
    }

    #[test]
    fn forward_scan_simulates_each_interval_once() {
        // Cache big enough to hold everything: a forward scan misses
        // once per interval and hits the rest.
        let stats = replay(&cfg("lru", 48), 1..=48u64);
        assert_eq!(stats.restarts, 12, "48 steps / B=4 intervals");
        assert_eq!(stats.simulated_steps, 48);
        assert_eq!(stats.misses, 12);
        assert_eq!(stats.hits, 36);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn repeated_scan_with_full_cache_is_free() {
        let trace: Vec<u64> = (1..=48).chain(1..=48).collect();
        let stats = replay(&cfg("lru", 48), trace);
        assert_eq!(stats.restarts, 12, "second pass entirely cached");
        assert_eq!(stats.hits, 36 + 48);
    }

    #[test]
    fn tiny_cache_thrashes_on_repeat() {
        let trace: Vec<u64> = (1..=48).chain(1..=48).collect();
        let stats = replay(&cfg("lru", 4), trace);
        assert!(stats.restarts >= 20, "LRU thrashes: {stats:?}");
        assert!(stats.evictions > 0);
    }

    #[test]
    fn backward_scan_pays_boundary_dumps_extra() {
        let fwd = replay(&cfg("lru", 48), 1..=48u64);
        let bwd = replay(&cfg("lru", 48), (1..=48u64).rev());
        // Forward covers each boundary step inside its interval
        // simulation. Backward touches every boundary *first* (it is the
        // highest key of its interval), paying a 1-step restart dump,
        // then a second restart for the interval body — the §II-A model:
        // a restart exactly at d_i serves d_i alone.
        assert_eq!(fwd.simulated_steps, 48);
        assert_eq!(fwd.restarts, 12);
        assert_eq!(bwd.simulated_steps, 48 + 12, "12 extra boundary dumps");
        assert_eq!(bwd.restarts, 24, "dump + body restart per interval");
    }

    #[test]
    fn boundary_keys_cost_single_steps() {
        // Accessing only restart boundaries: each is a 1-step dump.
        let stats = replay(&cfg("lru", 48), [4u64, 8, 12, 16]);
        assert_eq!(stats.restarts, 4);
        assert_eq!(stats.simulated_steps, 4);
    }

    #[test]
    fn invalid_keys_are_skipped() {
        let stats = replay(&cfg("lru", 48), [0u64, 49, 1000]);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn all_paper_policies_replay() {
        for policy in simcache::PAPER_POLICIES {
            let trace: Vec<u64> = (1..=48).chain((1..=48).rev()).collect();
            let stats = replay(&cfg(policy, 12), trace);
            assert!(stats.restarts > 0, "{policy}");
            assert!(
                stats.simulated_steps >= stats.restarts,
                "{policy}: steps {} < restarts {}",
                stats.simulated_steps,
                stats.restarts
            );
        }
    }

    #[test]
    fn cost_aware_policy_beats_lru_on_mixed_cost_random_workload() {
        // The Fig. 5 headline: DCL minimizes restarts/steps on random
        // patterns. Use a deterministic pseudo-random trace with reuse.
        let mut x: u64 = 12345;
        let mut trace = Vec::new();
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Skewed reuse: half the accesses in the first interval span.
            let key = if x.is_multiple_of(2) {
                1 + (x >> 33) % 12
            } else {
                1 + (x >> 33) % 48
            };
            trace.push(key);
        }
        let lru = replay(&cfg("lru", 8), trace.clone());
        let dcl = replay(&cfg("dcl", 8), trace);
        assert!(
            dcl.simulated_steps <= lru.simulated_steps.saturating_mul(11) / 10,
            "DCL should not be much worse than LRU: {} vs {}",
            dcl.simulated_steps,
            lru.simulated_steps
        );
    }
}
