//! Case execution: configuration, the per-case verdict, and the runner
//! loop driving a test's cases.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Harness configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Maximum consecutive discarded cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case is invalid (failed `prop_assume!` or a filter); draw a
    /// fresh one.
    Reject(String),
    /// A property was violated.
    Fail(String),
}

impl TestCaseError {
    /// A failure verdict.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection verdict.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Outcome of one executed case, as the `proptest!` expansion reports
/// it.
pub enum CaseResult {
    /// Property held.
    Pass,
    /// Case discarded (assumption/filter); retried without counting.
    Discard(String),
    /// Property violated.
    Fail {
        /// The assertion message.
        message: String,
        /// Debug renderings of the generated inputs.
        inputs: Vec<String>,
    },
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Runs `config.cases` cases of `case`, panicking (as `#[test]` expects)
/// on the first failure with the generated inputs attached.
///
/// Seeding is deterministic per test name so failures reproduce across
/// runs; set `PROPTEST_SEED` to explore a different sequence.
pub fn run_cases(config: &Config, name: &str, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => 0x005E_ED0F_5EED,
    };
    let mut discards: u32 = 0;
    let mut executed: u32 = 0;
    let mut draw: u64 = 0;
    while executed < config.cases {
        let seed = fnv1a(name.as_bytes()) ^ base.wrapping_add(draw.wrapping_mul(0x9E37_79B9));
        draw += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            CaseResult::Pass => executed += 1,
            CaseResult::Discard(_) => {
                discards += 1;
                assert!(
                    discards <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases ({discards}); \
                     loosen the assumptions or filters"
                );
            }
            CaseResult::Fail { message, inputs } => {
                panic!(
                    "proptest '{name}' case #{executed} failed: {message}\n\
                     inputs:\n  {}\n(no shrinking in the vendored proptest; \
                     seed base {base:#x}, draw {draw})",
                    inputs.join("\n  ")
                );
            }
        }
    }
}
