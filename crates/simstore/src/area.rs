//! Storage areas: the per-context directories managed by the DV (§III-A).
//!
//! "We associate each simulation context with a storage area (i.e., a
//! file system directory). When a new re-simulation from a given context
//! is launched, DVLib intercepts the create calls from the simulator and
//! redirects them to the associated storage area."
//!
//! The area enforces bare-filename access (no path traversal — the DV
//! hands out filenames, not paths), publishes files atomically, and
//! answers the size queries the eviction machinery needs.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// A bounded directory of output/restart step files.
#[derive(Clone, Debug)]
pub struct StorageArea {
    root: PathBuf,
    max_bytes: u64,
}

impl StorageArea {
    /// Opens (creating if needed) a storage area rooted at `root` with an
    /// advisory byte budget. The budget is enforced by the DV's cache
    /// manager, not by the filesystem layer.
    pub fn create(root: impl Into<PathBuf>, max_bytes: u64) -> io::Result<StorageArea> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(StorageArea { root, max_bytes })
    }

    /// The directory backing this area.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Advisory byte budget for this area.
    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    /// Resolves a bare filename inside the area.
    ///
    /// # Errors
    /// Rejects names containing path separators or `..` — the DV never
    /// produces such names, so their appearance signals a protocol-level
    /// problem.
    pub fn path_for(&self, name: &str) -> io::Result<PathBuf> {
        if name.is_empty()
            || name.contains('/')
            || name.contains('\\')
            || name == "."
            || name == ".."
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid storage-area filename {name:?}"),
            ));
        }
        Ok(self.root.join(name))
    }

    /// Atomically publishes `bytes` as `name` (write temp + rename);
    /// returns the byte size.
    pub fn publish(&self, name: &str, bytes: &[u8]) -> io::Result<u64> {
        let path = self.path_for(name)?;
        let tmp = path.with_extension("tmp-publish");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(bytes.len() as u64)
    }

    /// Reads a published file.
    pub fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path_for(name)?)
    }

    /// Does `name` exist in the area?
    pub fn exists(&self, name: &str) -> bool {
        self.path_for(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Size in bytes of `name`, if it exists.
    pub fn size_of(&self, name: &str) -> Option<u64> {
        let path = self.path_for(name).ok()?;
        fs::metadata(path).ok().map(|m| m.len())
    }

    /// Deletes `name`; returns whether it existed.
    pub fn delete(&self, name: &str) -> io::Result<bool> {
        let path = self.path_for(name)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Total bytes of regular files in the area.
    pub fn used_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            if meta.is_file() {
                total += meta.len();
            }
        }
        Ok(total)
    }

    /// Sorted list of file names in the area.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.metadata()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_area() -> StorageArea {
        let dir = std::env::temp_dir().join(format!(
            "simstore-area-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        StorageArea::create(dir, 1 << 20).unwrap()
    }

    #[test]
    fn publish_read_delete_cycle() {
        let area = temp_area();
        assert!(!area.exists("out-1.sdf"));
        let n = area.publish("out-1.sdf", b"hello").unwrap();
        assert_eq!(n, 5);
        assert!(area.exists("out-1.sdf"));
        assert_eq!(area.read("out-1.sdf").unwrap(), b"hello");
        assert_eq!(area.size_of("out-1.sdf"), Some(5));
        assert!(area.delete("out-1.sdf").unwrap());
        assert!(!area.delete("out-1.sdf").unwrap());
        fs::remove_dir_all(area.root()).unwrap();
    }

    #[test]
    fn traversal_names_rejected() {
        let area = temp_area();
        for bad in ["../evil", "a/b", "", ".", "..", "x\\y"] {
            assert!(area.path_for(bad).is_err(), "accepted {bad:?}");
        }
        fs::remove_dir_all(area.root()).unwrap();
    }

    #[test]
    fn accounting_and_listing() {
        let area = temp_area();
        area.publish("b.sdf", &[0u8; 100]).unwrap();
        area.publish("a.sdf", &[0u8; 50]).unwrap();
        assert_eq!(area.used_bytes().unwrap(), 150);
        assert_eq!(area.list().unwrap(), vec!["a.sdf", "b.sdf"]);
        fs::remove_dir_all(area.root()).unwrap();
    }

    #[test]
    fn publish_overwrites_atomically() {
        let area = temp_area();
        area.publish("f", b"old").unwrap();
        area.publish("f", b"newer").unwrap();
        assert_eq!(area.read("f").unwrap(), b"newer");
        // No temp litter.
        assert_eq!(area.list().unwrap(), vec!["f"]);
        fs::remove_dir_all(area.root()).unwrap();
    }

    #[test]
    fn create_is_idempotent() {
        let area = temp_area();
        let again = StorageArea::create(area.root(), 123).unwrap();
        assert_eq!(again.max_bytes(), 123);
        fs::remove_dir_all(area.root()).unwrap();
    }
}
