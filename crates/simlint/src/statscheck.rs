//! Stats completeness enforcement: every `DvStats` field must be
//! rolled up by `DvStats::accumulate` and emitted by the
//! `bench_daemon` JSON reporter.
//!
//! Both sinks are checked by name. `accumulate` must reference each
//! field as an identifier (the exhaustive destructure guarantees this
//! and is itself pinned: a `..` rest pattern in the body is flagged).
//! `bench_daemon.rs` may reference a field as code *or* inside a
//! string literal — the JSON keys live in the format string — but
//! comments do not count.

use crate::lexer::{self, Tok, Token};
use crate::Finding;

/// Collects the field names of `pub struct <name> { pub f: ty, ... }`.
fn struct_fields(toks: &[Token], name: &str) -> Option<(Vec<(String, u32)>, usize)> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if lexer::is_ident(&toks[i].tok, "struct") && lexer::is_ident(&toks[i + 1].tok, name) {
            let mut j = i + 2;
            while j < toks.len() && toks[j].tok != Tok::Punct('{') {
                j += 1;
            }
            let end = lexer::skip_balanced(toks, j) - 1;
            let mut fields = Vec::new();
            let mut k = j + 1;
            let mut depth = 0usize;
            while k < end {
                match &toks[k].tok {
                    Tok::Punct('<') | Tok::Punct('(') => depth += 1,
                    Tok::Punct('>') | Tok::Punct(')') => depth = depth.saturating_sub(1),
                    Tok::Ident(f)
                        if depth == 0
                            && matches!(
                                toks.get(k + 1).map(|t| &t.tok),
                                Some(Tok::Punct(':'))
                            )
                            && matches!(
                                toks.get(k.wrapping_sub(1)).map(|t| &t.tok),
                                Some(Tok::Ident(p)) if p == "pub"
                            ) =>
                    {
                        fields.push((f.clone(), toks[k].line));
                    }
                    _ => {}
                }
                k += 1;
            }
            return Some((fields, toks[i].line as usize));
        }
        i += 1;
    }
    None
}

/// Body token range of `fn <name>` anywhere in the stream.
fn any_fn_body(toks: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i + 1 < toks.len() {
        if lexer::is_ident(&toks[i].tok, "fn") && lexer::is_ident(&toks[i + 1].tok, name) {
            let mut j = i + 2;
            while j < toks.len() {
                match toks[j].tok {
                    Tok::Punct('(') => j = lexer::skip_balanced(toks, j),
                    Tok::Punct('{') => return Some((j + 1, lexer::skip_balanced(toks, j) - 1)),
                    _ => j += 1,
                }
            }
            return None;
        }
        i += 1;
    }
    None
}

/// True if `word` appears in `text` bounded by non-identifier chars.
fn word_in(text: &str, word: &str) -> bool {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let post_ok = end == bytes.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Runs the stats checks over dv.rs (struct + accumulate) and
/// bench_daemon.rs (JSON emitter).
pub fn check(dv_label: &str, dv_src: &str, bench_label: &str, bench_src: &str) -> Vec<Finding> {
    let (dv_toks, _) = lexer::lex(dv_src);
    let (bench_toks, _) = lexer::lex(bench_src);
    let mut findings = Vec::new();

    let Some((fields, struct_line)) = struct_fields(&dv_toks, "DvStats") else {
        findings.push(Finding::new(
            "stats",
            dv_label,
            1,
            "no `struct DvStats` found".to_string(),
        ));
        return findings;
    };
    if fields.is_empty() {
        findings.push(Finding::new(
            "stats",
            dv_label,
            struct_line,
            "struct DvStats parsed with zero pub fields".to_string(),
        ));
        return findings;
    }

    match any_fn_body(&dv_toks, "accumulate") {
        None => findings.push(Finding::new(
            "stats",
            dv_label,
            struct_line,
            "no fn accumulate found for DvStats".to_string(),
        )),
        Some(body) => {
            // A `..` rest pattern would let fields silently skip the
            // roll-up; the destructure must stay exhaustive.
            for w in dv_toks[body.0..body.1].windows(2) {
                if w[0].tok == Tok::Punct('.') && w[1].tok == Tok::Punct('.') {
                    findings.push(Finding::new(
                        "stats",
                        dv_label,
                        w[0].line as usize,
                        "accumulate() contains `..` — the DvStats destructure must be exhaustive so new fields cannot be silently dropped".to_string(),
                    ));
                    break;
                }
            }
            for (f, line) in &fields {
                if !dv_toks[body.0..body.1]
                    .iter()
                    .any(|t| lexer::is_ident(&t.tok, f))
                {
                    findings.push(Finding::new(
                        "stats",
                        dv_label,
                        *line as usize,
                        format!("DvStats field `{f}` is not rolled up in accumulate()"),
                    ));
                }
            }
        }
    }

    for (f, line) in &fields {
        let present = bench_toks.iter().any(|t| match &t.tok {
            Tok::Ident(s) => s == f,
            Tok::Str(s) => word_in(s, f),
            _ => false,
        });
        if !present {
            findings.push(Finding::new(
                "stats",
                bench_label,
                *line as usize,
                format!("DvStats field `{f}` (dv.rs:{line}) never reaches the bench_daemon JSON emitter"),
            ));
        }
    }
    findings
}
