//! End-to-end virtual-time experiments as benchmarks: one scaled-down
//! run per timing figure, plus DV event-handling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simbatch::QueueModel;
use simfs_core::dv::{DataVirtualizer, DvAction, DvEvent};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::vharness::VirtualExperiment;
use simkit::{Dur, SimTime};
use std::hint::black_box;

/// A DV with keys `1..=8` materialized (hit-path steady state).
fn hit_path_dv() -> DataVirtualizer {
    let ctx = ContextCfg::new("bench", StepMath::new(1, 8, 10_000), 100, u64::MAX / 4)
        .with_prefetch(false);
    let mut dv = DataVirtualizer::new(ctx);
    // Materialize 1..=8 once.
    let actions = dv.handle(SimTime::ZERO, DvEvent::Acquire { client: 1, key: 1 });
    for a in actions {
        if let DvAction::Launch { sim, keys, .. } = a {
            dv.handle(SimTime::ZERO, DvEvent::SimStarted { sim });
            for k in keys {
                dv.handle(SimTime::ZERO, DvEvent::FileProduced { sim, key: k, size: 100 });
            }
            dv.handle(SimTime::ZERO, DvEvent::SimFinished { sim });
        }
    }
    dv.handle(SimTime::ZERO, DvEvent::Release { client: 1, key: 1 });
    dv
}

fn bench_dv_event_handling(c: &mut Criterion) {
    // The allocating wrapper: one fresh `Vec<DvAction>` per event.
    c.bench_function("dv_acquire_hit_path", |b| {
        let mut dv = hit_path_dv();
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_nanos(t);
            let key = 1 + (t % 8);
            black_box(dv.handle(now, DvEvent::Acquire { client: 1, key }));
            dv.handle(now, DvEvent::Release { client: 1, key });
        })
    });
    // The scratch-buffer API the daemon actually uses: zero per-event
    // allocations on the hit path.
    c.bench_function("dv_acquire_hit_path_into", |b| {
        let mut dv = hit_path_dv();
        let mut actions = Vec::new();
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_nanos(t);
            let key = 1 + (t % 8);
            actions.clear();
            dv.handle_into(now, DvEvent::Acquire { client: 1, key }, &mut actions);
            black_box(&actions);
            actions.clear();
            dv.handle_into(now, DvEvent::Release { client: 1, key }, &mut actions);
        })
    });
}

/// Waiter-heavy mix: eight clients pile onto each missing key, then the
/// production resolves all of them at once — the §IV-C bookkeeping and
/// notification fan-out dominate.
fn bench_dv_waiter_heavy(c: &mut Criterion) {
    c.bench_function("dv_waiter_heavy_mix", |b| {
        // Cache bounded to a 1024-step window: keys march forward every
        // iteration, so an unbounded cache would grow DV state across
        // criterion's millions of iterations and drift the measurement.
        let ctx = ContextCfg::new("bench", StepMath::new(1, 4, u64::MAX / 8), 100, 1024 * 100)
            .with_policy("lru")
            .with_prefetch(false)
            .with_smax(4);
        let mut dv = DataVirtualizer::new(ctx);
        let mut actions = Vec::new();
        let mut t = 0u64;
        let mut key = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_nanos(t);
            // Eight clients blocked on the same missing key: one launch,
            // seven queued waiters.
            let mut sim = 0;
            for client in 1..=8u64 {
                actions.clear();
                dv.handle_into(now, DvEvent::Acquire { client, key }, &mut actions);
                for a in &actions {
                    if let DvAction::Launch { sim: s, .. } = a {
                        sim = *s;
                    }
                }
            }
            // The production notifies all eight.
            actions.clear();
            dv.handle_into(now, DvEvent::SimStarted { sim }, &mut actions);
            for k in dv_launch_range(key) {
                actions.clear();
                dv.handle_into(
                    now,
                    DvEvent::FileProduced { sim, key: k, size: 100 },
                    &mut actions,
                );
                black_box(&actions);
            }
            actions.clear();
            dv.handle_into(now, DvEvent::SimFinished { sim }, &mut actions);
            for client in 1..=8u64 {
                actions.clear();
                dv.handle_into(now, DvEvent::Release { client, key }, &mut actions);
            }
            // March forward so every iteration is a fresh miss.
            key += 4;
        })
    });
}

/// The B=4 re-simulation interval around `key` (keys are 1-based and
/// interval-aligned in this bench).
fn dv_launch_range(key: u64) -> std::ops::RangeInclusive<u64> {
    key..=key + 3
}

/// Eviction-heavy mix: a cache of 8 steps flooded by a sequential scan
/// with immediate production — every interval evicts the previous one.
fn bench_dv_eviction_heavy(c: &mut Criterion) {
    c.bench_function("dv_eviction_heavy_mix", |b| {
        let ctx = ContextCfg::new("bench", StepMath::new(1, 4, u64::MAX / 8), 100, 8 * 100)
            .with_policy("lru")
            .with_prefetch(false)
            .with_smax(4);
        let mut dv = DataVirtualizer::new(ctx);
        let mut actions = Vec::new();
        let mut t = 0u64;
        let mut key = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_nanos(t);
            actions.clear();
            dv.handle_into(now, DvEvent::Acquire { client: 1, key }, &mut actions);
            let mut sim = 0;
            for a in &actions {
                if let DvAction::Launch { sim: s, .. } = a {
                    sim = *s;
                }
            }
            actions.clear();
            dv.handle_into(now, DvEvent::SimStarted { sim }, &mut actions);
            for k in dv_launch_range(key) {
                actions.clear();
                dv.handle_into(
                    now,
                    DvEvent::FileProduced { sim, key: k, size: 100 },
                    &mut actions,
                );
                black_box(&actions);
            }
            actions.clear();
            dv.handle_into(now, DvEvent::SimFinished { sim }, &mut actions);
            actions.clear();
            dv.handle_into(now, DvEvent::Release { client: 1, key }, &mut actions);
            key += 4;
        })
    });
}

fn bench_virtual_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_experiment");
    group.sample_size(20);
    for (name, dd, dr, tau_ms, alpha_ms) in [
        ("fig16_cosmo", 5u64, 60u64, 300u64, 1300u64),
        ("fig18_flash", 1, 20, 1400, 700),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            let steps = StepMath::new(dd, dr, dd * 1000);
            let cfg = ContextCfg::new("bench", steps, 1, u64::MAX / 4).with_smax(8);
            let exp = VirtualExperiment {
                cfg,
                alpha_sim: Dur::from_millis(alpha_ms),
                tau_sim: Dur::from_millis(tau_ms),
                queue: QueueModel::None,
                nodes_per_sim: 4,
                seed: 3,
            };
            let accesses: Vec<u64> = (1..=72).collect();
            b.iter(|| black_box(exp.run_analysis(&accesses, Dur::from_millis(50))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dv_event_handling,
    bench_dv_waiter_heavy,
    bench_dv_eviction_heavy,
    bench_virtual_experiments
);
criterion_main!(benches);
