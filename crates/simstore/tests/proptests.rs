//! Property tests: SDF roundtrips for arbitrary datasets, checksum
//! stability, corruption detection.

use proptest::prelude::*;
use simstore::{crc32, fnv1a64, Data, Dataset, Fnv1a};

fn arb_data() -> impl Strategy<Value = (Vec<u64>, Data)> {
    // Shapes with ≤ 3 dims and ≤ 64 total elements, matching payload.
    let dims = prop::collection::vec(1u64..5, 0..3);
    dims.prop_flat_map(|dims| {
        let n: u64 = dims.iter().product();
        let n = n as usize;
        let data = prop_oneof![
            prop::collection::vec(any::<f64>().prop_filter("finite", |x| x.is_finite()), n..=n)
                .prop_map(Data::F64),
            prop::collection::vec(any::<f32>().prop_filter("finite", |x| x.is_finite()), n..=n)
                .prop_map(Data::F32),
            prop::collection::vec(any::<i64>(), n..=n).prop_map(Data::I64),
            prop::collection::vec(any::<u8>(), n..=n).prop_map(Data::U8),
        ];
        (Just(dims), data)
    })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        any::<u64>(),
        -1e12f64..1e12,
        prop::collection::btree_map("[a-z]{1,8}", "[ -~]{0,16}", 0..5),
        prop::collection::vec(arb_data(), 0..4),
    )
        .prop_map(|(step, time, attrs, vars)| {
            let mut ds = Dataset::new(step, time);
            for (k, v) in attrs {
                ds.set_attr(k, v);
            }
            for (i, (dims, data)) in vars.into_iter().enumerate() {
                ds.add_var(format!("var{i}"), dims, data).unwrap();
            }
            ds
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sdf_roundtrip(ds in arb_dataset()) {
        let encoded = ds.encode();
        let decoded = Dataset::decode(&encoded).unwrap();
        prop_assert_eq!(&ds, &decoded);
        // Re-encoding the decoded dataset is byte-identical (canonical).
        prop_assert_eq!(encoded, decoded.encode());
    }

    #[test]
    fn sdf_digest_is_deterministic(ds in arb_dataset()) {
        prop_assert_eq!(ds.digest(), ds.clone().digest());
    }

    #[test]
    fn single_bitflip_always_detected(ds in arb_dataset(), flip in any::<prop::sample::Index>()) {
        let encoded = ds.encode().to_vec();
        let mut bad = encoded.clone();
        let pos = flip.index(bad.len());
        bad[pos] ^= 0x40;
        // Either the checksum catches it, or (if the flip hit the footer
        // itself) the mismatch is still reported.
        prop_assert!(Dataset::decode(&bad).is_err());
    }

    #[test]
    fn fnv_streaming_matches_oneshot(chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..8)) {
        let mut h = Fnv1a::new();
        let mut all = Vec::new();
        for c in &chunks {
            h.update(c);
            all.extend_from_slice(c);
        }
        prop_assert_eq!(h.finish(), fnv1a64(&all));
    }

    #[test]
    fn checksums_differ_on_prefix_extension(data in prop::collection::vec(any::<u8>(), 1..64)) {
        let shorter = &data[..data.len() - 1];
        // Not cryptographic, but these should essentially never collide
        // on a one-byte extension.
        prop_assert!(fnv1a64(shorter) != fnv1a64(&data) || crc32(shorter) != crc32(&data));
    }
}
