//! Property tests: generator bounds, interleaving preservation, CSV
//! roundtrips, Zipf normalization.

use proptest::prelude::*;
use simkit::SeedSeq;
use simtrace::ecmwf::ZipfSampler;
use simtrace::{
    backward_scan, fig5_trace, forward_scan, interleave_with_overlap, strided_scan, EcmwfSpec,
    Pattern, Trace,
};

proptest! {
    /// Scans stay inside the timeline and have the requested length
    /// (when it fits).
    #[test]
    fn scans_are_bounded(timeline in 1u64..10_000, start in 0u64..10_000, len in 1u64..500) {
        let f = forward_scan(timeline, start, len);
        prop_assert_eq!(f.len() as u64, len.min(timeline));
        prop_assert!(f.iter().all(|&k| k < timeline));
        prop_assert!(f.windows(2).all(|w| w[1] == w[0] + 1));

        let b = backward_scan(timeline, start, len);
        prop_assert_eq!(b.len() as u64, len.min(timeline));
        prop_assert!(b.iter().all(|&k| k < timeline));
        prop_assert!(b.windows(2).all(|w| w[1] + 1 == w[0]));
    }

    /// Strided scans respect the stride exactly until truncation.
    #[test]
    fn strided_scan_steps_by_stride(
        timeline in 10u64..10_000,
        start in 0u64..10_000,
        len in 1u64..200,
        stride in (-20i64..20).prop_filter("non-zero", |s| *s != 0),
    ) {
        let start = start % timeline;
        let s = strided_scan(timeline, start, len, stride);
        prop_assert!(s.len() as u64 <= len);
        prop_assert!(s.iter().all(|&k| k < timeline));
        for w in s.windows(2) {
            prop_assert_eq!(w[1] as i64 - w[0] as i64, stride);
        }
        if !s.is_empty() {
            prop_assert_eq!(s[0], start);
        }
    }

    /// Interleaving preserves each analysis' accesses and order for any
    /// overlap.
    #[test]
    fn interleave_preserves_streams(
        lens in prop::collection::vec(0usize..30, 1..6),
        overlap in 0.0f64..=1.0,
    ) {
        let analyses: Vec<Vec<u64>> = lens
            .iter()
            .enumerate()
            .map(|(j, &len)| (0..len as u64).map(|i| j as u64 * 1000 + i).collect())
            .collect();
        let trace = interleave_with_overlap(&analyses, overlap);
        prop_assert_eq!(trace.len(), lens.iter().sum::<usize>());
        for (j, expected) in analyses.iter().enumerate() {
            let got: Vec<u64> = trace
                .accesses
                .iter()
                .filter(|a| a.analysis == j as u32)
                .map(|a| a.step)
                .collect();
            prop_assert_eq!(&got, expected, "analysis {} reordered", j);
        }
    }

    /// Fig. 5 traces: all keys in range, deterministic per seed.
    #[test]
    fn fig5_traces_bounded_and_deterministic(
        seed in any::<u64>(),
        timeline in 50u64..2000,
        n_traces in 1u32..10,
    ) {
        for pattern in [Pattern::Forward, Pattern::Backward, Pattern::Random] {
            let a = fig5_trace(&mut SeedSeq::new(seed).rng(0), pattern, timeline, n_traces, (10, 40));
            let b = fig5_trace(&mut SeedSeq::new(seed).rng(0), pattern, timeline, n_traces, (10, 40));
            prop_assert_eq!(&a, &b);
            prop_assert!(a.accesses.iter().all(|x| x.step < timeline));
        }
    }

    /// ECMWF trace: exact access count, all steps < n_files.
    #[test]
    fn ecmwf_trace_contract(seed in any::<u64>(), n in 100u64..5000) {
        let spec = EcmwfSpec::scaled(n);
        let t = spec.generate(&mut SeedSeq::new(seed).rng(0));
        prop_assert_eq!(t.len() as u64, n);
        prop_assert!(t.accesses.iter().all(|a| a.step < spec.n_files));
    }

    /// Zipf sampler: all ranks reachable-in-range, deterministic per
    /// seed stream.
    #[test]
    fn zipf_sampler_in_range(n in 1u64..500, theta in 0.0f64..2.0, seed in any::<u64>()) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = SeedSeq::new(seed).rng(0);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// CSV roundtrips for arbitrary traces.
    #[test]
    fn csv_roundtrip(pairs in prop::collection::vec((0u32..8, 0u64..100_000), 0..100)) {
        let trace = Trace {
            accesses: pairs
                .into_iter()
                .map(|(analysis, step)| simtrace::TraceAccess { analysis, step })
                .collect(),
        };
        prop_assert_eq!(Trace::from_csv(&trace.to_csv()).unwrap(), trace);
    }
}
