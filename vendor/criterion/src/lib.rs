//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! Supports the API the workspace's benches use — `bench_function`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a warmup followed by timed
//! batches; results print one line per benchmark
//! (`<name>  time: <t> ns/iter (± <spread>)`) and are also appended as
//! JSON lines to `target/vendored-criterion.jsonl` for scripting.
//! No statistical regression analysis, plots, or saved baselines — see
//! `vendor/README.md` for the vendoring rationale.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many samples each benchmark takes.
const DEFAULT_SAMPLES: usize = 12;

/// Top-level harness handle.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            samples: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(name, self.samples, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id), self.samples, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// A function-plus-parameter id.
    pub fn new(function: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { repr: s.to_string() }
    }
}

/// Declared per-iteration work for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Runs the measured closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration over all samples.
    samples_ns: Vec<f64>,
    samples: usize,
}

impl Bencher {
    /// Measures `f`: warmup, then `samples` timed batches.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warmup and batch-size calibration: grow the batch until it
        // takes ~5 ms so Instant overhead vanishes.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 30 {
                break;
            }
            batch = (batch * 4).min(1 << 30);
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

fn run_one(name: &str, samples: usize, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        samples,
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let mut xs = bencher.samples_ns;
    xs.sort_by(|a, b| a.total_cmp(b));
    let median = xs[xs.len() / 2];
    let spread = xs[xs.len() - 1] - xs[0];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => format!(", {:.1} MiB/s", b as f64 / median * 1e9 / (1 << 20) as f64),
        Throughput::Elements(e) => format!(", {:.0} elem/s", e as f64 / median * 1e9),
    });
    println!(
        "{name:<50} time: {median:>12.1} ns/iter (± {spread:.1}{})",
        rate.unwrap_or_default()
    );
    record_jsonl(name, median, xs[0], xs[xs.len() - 1]);
}

/// Appends a JSON line so scripts can diff runs without parsing stdout.
fn record_jsonl(name: &str, median_ns: f64, min_ns: f64, max_ns: f64) {
    use std::io::Write;
    let path = std::path::Path::new("target");
    if !path.exists() {
        return;
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path.join("vendored-criterion.jsonl"))
    {
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(
            file,
            "{{\"bench\":\"{escaped}\",\"median_ns\":{median_ns:.1},\"min_ns\":{min_ns:.1},\"max_ns\":{max_ns:.1}}}"
        );
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
