//! Checksums for file integrity and `SIMFS_Bitrep` (§III-C).
//!
//! Two classic algorithms, implemented here because external hashing
//! crates are out of the dependency budget:
//!
//! * **FNV-1a 64-bit** — the default file digest: fast, streaming,
//!   adequate for accidental-corruption detection (not adversarial).
//! * **CRC-32 (IEEE)** — table-driven, provided because archival tooling
//!   conventionally reports CRCs and the simulation driver may choose it.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One-shot FNV-1a 64-bit digest.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(data);
    h.finish()
}

/// Streaming FNV-1a 64-bit hasher.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.state;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// One-shot CRC-32 (IEEE) digest.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_known_vectors() {
        // Published CRC-32 (IEEE) test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"simulation output step 42";
        let mut h = Fnv1a::new();
        h.update(&data[..7]);
        h.update(&data[7..]);
        assert_eq!(h.finish(), fnv1a64(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(fnv1a64(b"step-000001"), fnv1a64(b"step-000002"));
        assert_ne!(crc32(b"step-000001"), crc32(b"step-000002"));
    }
}
