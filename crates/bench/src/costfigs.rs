//! Cost-model figures: Fig. 1 (availability sweep), Fig. 12 (Δr ×
//! cache), Fig. 13 (overlap), Fig. 14 (number of analyses), Fig. 15
//! (heatmap, cost-vs-space, time-vs-space).
//!
//! The shared machinery prices a workload of `z` forward-in-time
//! analyses with a given execution overlap (§V-A): the interleaved
//! access stream is replayed through the DV's cache (DCL) to measure
//! `V(γ)` — the number of re-simulated output steps — which feeds
//! `C_SimFS`; `C_in-situ` prices each analysis' private simulation; and
//! `C_on-disk` is workload-independent.

use crate::output::{fmt, RunOpts, Table};
use rand::Rng;
use simcost::{cost_in_situ, cost_on_disk, cost_simfs, resim_compute_hours, Rates, Scenario, AZURE};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::replay::replay;
use simkit::{SeedSeq, SimRng};
use simtrace::{forward_scan, interleave_with_overlap};

/// One priced workload configuration.
#[derive(Clone, Debug)]
pub struct CostCase {
    /// Restart interval in hours of simulated time.
    pub dr_hours: f64,
    /// Cache fraction of total output volume.
    pub cache_fraction: f64,
    /// Availability period in months.
    pub months: f64,
    /// Number of analyses over the period.
    pub n_analyses: u32,
    /// Execution overlap (0–1).
    pub overlap: f64,
}

/// Priced outcome of one case.
#[derive(Clone, Debug)]
pub struct CostResult {
    /// The case.
    pub case: CostCase,
    /// Total on-disk cost ($).
    pub on_disk: f64,
    /// Total in-situ cost ($).
    pub in_situ: f64,
    /// Total SimFS cost ($).
    pub simfs: f64,
    /// Re-simulated output steps `V(γ)`.
    pub resim_steps: u64,
    /// Re-simulation compute hours (Fig. 15c).
    pub resim_hours: f64,
}

/// Generates the workload: `z` forward scans with random starts and
/// 100–400 accesses, interleaved at the given overlap. Returns
/// `(access stream, (start, len) pairs for in-situ pricing)`.
fn workload(
    rng: &mut SimRng,
    n_outputs: u64,
    z: u32,
    overlap: f64,
) -> (Vec<u64>, Vec<(u64, u64)>) {
    let mut analyses = Vec::with_capacity(z as usize);
    let mut spans = Vec::with_capacity(z as usize);
    for _ in 0..z {
        let len = rng.gen_range(100u64..=400).min(n_outputs);
        let start = rng.gen_range(0..n_outputs.saturating_sub(len).max(1));
        // Keys are 1-based.
        let scan: Vec<u64> = forward_scan(n_outputs, start, len)
            .into_iter()
            .map(|k| k + 1)
            .collect();
        spans.push((scan[0] - 1, scan.len() as u64));
        analyses.push(scan);
    }
    let trace = interleave_with_overlap(&analyses, overlap);
    (
        trace.accesses.iter().map(|a| a.step).collect(),
        spans,
    )
}

/// A measured workload: the expensive part of pricing a case — the
/// cache replay producing `V(γ)` — which is independent of the
/// availability period and the price point. Measure once, price many.
#[derive(Clone, Debug)]
pub struct WorkloadMeasure {
    sc: Scenario,
    cache_fraction: f64,
    /// Mean re-simulated steps over the repetitions.
    pub resim_steps: u64,
    /// Per-repetition `(start, len)` spans for in-situ pricing.
    spans: Vec<Vec<(u64, u64)>>,
}

/// Replays the case's workload through the DV cache (`opts.reps`
/// seeds); pricing happens separately in [`WorkloadMeasure::price`].
pub fn measure_case(case: &CostCase, opts: &RunOpts) -> WorkloadMeasure {
    let sc = Scenario::cosmo_paper(case.dr_hours);
    let n_outputs = sc.n_outputs();
    let steps = StepMath::new(sc.dd, sc.dr, sc.n_timesteps);
    // Cache capacity in model bytes: 1 unit per GiB.
    let unit = 1_000u64;
    let ctx = ContextCfg::new(
        "cost",
        steps,
        sc.output_gib as u64 * unit,
        (sc.total_output_gib() * case.cache_fraction) as u64 * unit,
    )
    .with_policy("dcl")
    .with_prefetch(false);

    let seq = SeedSeq::new(opts.seed);
    let mut v_total = 0u64;
    let mut spans_all = Vec::with_capacity(opts.reps as usize);
    for rep in 0..opts.reps {
        let mut rng = seq.child(rep as u64).rng(1);
        let (accesses, spans) = workload(&mut rng, n_outputs, case.n_analyses, case.overlap);
        let stats = replay(&ctx, accesses);
        v_total += stats.simulated_steps;
        spans_all.push(spans);
    }
    WorkloadMeasure {
        sc,
        cache_fraction: case.cache_fraction,
        resim_steps: v_total / opts.reps as u64,
        spans: spans_all,
    }
}

impl WorkloadMeasure {
    /// Prices the measured workload at a rate point and availability
    /// period.
    pub fn price(&self, case: &CostCase, rates: &Rates) -> CostResult {
        debug_assert_eq!(self.cache_fraction, case.cache_fraction);
        let in_situ = self
            .spans
            .iter()
            .map(|s| cost_in_situ(&self.sc, rates, s).total())
            .sum::<f64>()
            / self.spans.len() as f64;
        CostResult {
            case: case.clone(),
            on_disk: cost_on_disk(&self.sc, rates, case.months).total(),
            in_situ,
            simfs: cost_simfs(
                &self.sc,
                rates,
                case.months,
                case.cache_fraction,
                self.resim_steps,
            )
            .total(),
            resim_steps: self.resim_steps,
            resim_hours: resim_compute_hours(&self.sc, self.resim_steps),
        }
    }
}

/// Prices one case at the given rates (measure + price in one call; use
/// [`measure_case`] + [`WorkloadMeasure::price`] to amortize the replay
/// across price points or periods).
pub fn price_case(case: &CostCase, rates: &Rates, opts: &RunOpts) -> CostResult {
    measure_case(case, opts).price(case, rates)
}

/// The availability periods of Figs. 1/12, in months.
pub const PERIODS: [(f64, &str); 6] = [
    (6.0, "6m"),
    (12.0, "1y"),
    (24.0, "2y"),
    (36.0, "3y"),
    (48.0, "4y"),
    (60.0, "5y"),
];

/// Fig. 1: cost vs availability period (Δr = 8 h, cache 25%, 100
/// analyses, 50% overlap, Azure rates).
pub fn fig1(opts: &RunOpts) -> (Table, Vec<CostResult>) {
    let mut t = Table::new(
        "Fig. 1 — aggregated analysis cost vs availability period (k$)",
        &["period", "on_disk", "in_situ", "simfs"],
    );
    let mut results = Vec::new();
    let base_case = CostCase {
        dr_hours: 8.0,
        cache_fraction: 0.25,
        months: 0.0,
        n_analyses: 100,
        overlap: 0.5,
    };
    let measure = measure_case(&base_case, opts);
    for (months, label) in PERIODS {
        let case = CostCase { months, ..base_case.clone() };
        let r = measure.price(&case, &AZURE);
        t.row(vec![
            label.to_string(),
            fmt(r.on_disk / 1000.0),
            fmt(r.in_situ / 1000.0),
            fmt(r.simfs / 1000.0),
        ]);
        results.push(r);
    }
    (t, results)
}

/// Fig. 12: the Fig. 1 sweep × Δr ∈ {4, 8, 16} h × cache {25, 50}%.
pub fn fig12(opts: &RunOpts) -> (Table, Vec<CostResult>) {
    let mut t = Table::new(
        "Fig. 12 — cost vs availability period, Δr and cache sweeps (k$)",
        &["dr_h", "cache", "period", "on_disk", "in_situ", "simfs"],
    );
    let mut results = Vec::new();
    for dr_hours in [4.0, 8.0, 16.0] {
        for cache_fraction in [0.25, 0.50] {
            let base_case = CostCase {
                dr_hours,
                cache_fraction,
                months: 0.0,
                n_analyses: 100,
                overlap: 0.5,
            };
            let measure = measure_case(&base_case, opts);
            for (months, label) in PERIODS {
                let case = CostCase { months, ..base_case.clone() };
                let r = measure.price(&case, &AZURE);
                t.row(vec![
                    format!("{dr_hours}"),
                    format!("{}%", (cache_fraction * 100.0) as u32),
                    label.to_string(),
                    fmt(r.on_disk / 1000.0),
                    fmt(r.in_situ / 1000.0),
                    fmt(r.simfs / 1000.0),
                ]);
                results.push(r);
            }
        }
    }
    (t, results)
}

/// Fig. 13: cost vs analyses overlap (Δt = 2 y).
pub fn fig13(opts: &RunOpts) -> (Table, Vec<CostResult>) {
    let mut t = Table::new(
        "Fig. 13 — cost vs analyses execution overlap (Δt = 2y, k$)",
        &["dr_h", "cache", "overlap", "on_disk", "in_situ", "simfs"],
    );
    let mut results = Vec::new();
    for dr_hours in [4.0, 8.0, 16.0] {
        for cache_fraction in [0.25, 0.50] {
            for overlap in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let case = CostCase {
                    dr_hours,
                    cache_fraction,
                    months: 24.0,
                    n_analyses: 100,
                    overlap,
                };
                let r = price_case(&case, &AZURE, opts);
                t.row(vec![
                    format!("{dr_hours}"),
                    format!("{}%", (cache_fraction * 100.0) as u32),
                    format!("{}", (overlap * 100.0) as u32),
                    fmt(r.on_disk / 1000.0),
                    fmt(r.in_situ / 1000.0),
                    fmt(r.simfs / 1000.0),
                ]);
                results.push(r);
            }
        }
    }
    (t, results)
}

/// Fig. 14: cost vs number of analyses (Δt = 2 y, overlap 50%).
pub fn fig14(opts: &RunOpts) -> (Table, Vec<CostResult>) {
    let mut t = Table::new(
        "Fig. 14 — cost vs number of analyses (Δt = 2y, k$)",
        &["dr_h", "cache", "analyses", "on_disk", "in_situ", "simfs"],
    );
    let mut results = Vec::new();
    for dr_hours in [4.0, 8.0, 16.0] {
        for cache_fraction in [0.25, 0.50] {
            for z in [5u32, 10, 20, 40, 80, 125] {
                let case = CostCase {
                    dr_hours,
                    cache_fraction,
                    months: 24.0,
                    n_analyses: z,
                    overlap: 0.5,
                };
                let r = price_case(&case, &AZURE, opts);
                t.row(vec![
                    format!("{dr_hours}"),
                    format!("{}%", (cache_fraction * 100.0) as u32),
                    z.to_string(),
                    fmt(r.on_disk / 1000.0),
                    fmt(r.in_situ / 1000.0),
                    fmt(r.simfs / 1000.0),
                ]);
                results.push(r);
            }
        }
    }
    (t, results)
}

/// Fig. 15a: the cost-effectiveness heatmap (ratio of the cheaper
/// conventional solution to SimFS over the price plane), Δt = 3 y,
/// 100 analyses, 50% overlap, cache 25%.
pub fn fig15a(opts: &RunOpts, resolution: usize) -> Table {
    let sc = Scenario::cosmo_paper(8.0);
    let case = CostCase {
        dr_hours: 8.0,
        cache_fraction: 0.25,
        months: 36.0,
        n_analyses: 100,
        overlap: 0.5,
    };
    // Measure V and the in-situ spans once at Azure rates; only prices
    // vary across the plane.
    let base = price_case(&case, &AZURE, opts);
    let seq = SeedSeq::new(opts.seed);
    let mut rng = seq.child(0).rng(1);
    let (_, spans) = workload(&mut rng, sc.n_outputs(), case.n_analyses, case.overlap);

    let points = simcost::cost_ratio_heatmap(
        &sc,
        case.months,
        case.cache_fraction,
        &spans,
        base.resim_steps,
        (0.02, 0.35),
        (0.3, 3.2),
        resolution,
    );
    let mut t = Table::new(
        "Fig. 15a — min(on-disk, in-situ) / SimFS cost ratio",
        &["storage_cost", "compute_cost", "ratio"],
    );
    for p in points {
        t.row(vec![fmt(p.storage_cost), fmt(p.compute_cost), fmt(p.ratio)]);
    }
    t
}

/// Fig. 15b/c: SimFS cost and re-simulation time vs restart-file space
/// (Δr ∈ {4, 8, 16, 32} h), cache {25, 50}%, Δt = 3 y.
pub fn fig15bc(opts: &RunOpts) -> (Table, Vec<CostResult>) {
    let mut t = Table::new(
        "Fig. 15b/c — cost and re-simulation time vs restart space (Δt = 3y)",
        &[
            "dr_h",
            "restart_space_tib",
            "cache",
            "cost_k$",
            "resim_hours",
            "on_disk_k$",
        ],
    );
    let mut results = Vec::new();
    for dr_hours in [4.0, 8.0, 16.0, 32.0] {
        let sc = Scenario::cosmo_paper(dr_hours);
        for cache_fraction in [0.25, 0.50] {
            let case = CostCase {
                dr_hours,
                cache_fraction,
                months: 36.0,
                n_analyses: 100,
                overlap: 0.5,
            };
            let r = price_case(&case, &AZURE, opts);
            let on_disk = cost_on_disk(&sc, &AZURE, case.months).total();
            t.row(vec![
                format!("{dr_hours}"),
                fmt(sc.total_restart_gib() / 1024.0),
                format!("{}%", (cache_fraction * 100.0) as u32),
                fmt(r.simfs / 1000.0),
                fmt(r.resim_hours),
                fmt(on_disk / 1000.0),
            ]);
            results.push(r);
        }
    }
    (t, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes_hold() {
        let opts = RunOpts {
            reps: 2,
            ..RunOpts::default()
        };
        let (_, results) = fig1(&opts);
        // On-disk grows with the period; in-situ is flat; SimFS sits
        // between the on-disk endpoints.
        let on_disk: Vec<f64> = results.iter().map(|r| r.on_disk).collect();
        assert!(on_disk.windows(2).all(|w| w[0] < w[1]));
        let in_situ: Vec<f64> = results.iter().map(|r| r.in_situ).collect();
        let spread = in_situ.iter().cloned().fold(f64::MIN, f64::max)
            - in_situ.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < in_situ[0] * 0.25, "in-situ should be ~flat");
        // The headline: at 5 years SimFS undercuts on-disk.
        let last = results.last().unwrap();
        assert!(
            last.simfs < last.on_disk,
            "SimFS {} !< on-disk {}",
            last.simfs,
            last.on_disk
        );
        // And at 6 months on-disk is cheaper than SimFS can be (short
        // periods amortize storage well).
        let first = &results[0];
        assert!(first.on_disk < first.in_situ);
    }

    #[test]
    fn fig13_overlap_increases_simfs_cost() {
        // Shape check at reduced scale (the binaries run the full
        // z = 100 sweep): fewer analyses, Δr = 8 h, 1 repetition.
        let opts = RunOpts {
            reps: 1,
            ..RunOpts::default()
        };
        let base = CostCase {
            dr_hours: 8.0,
            cache_fraction: 0.25,
            months: 24.0,
            n_analyses: 40,
            overlap: 0.0,
        };
        let low = price_case(&base, &AZURE, &opts);
        let high = price_case(
            &CostCase {
                overlap: 1.0,
                ..base
            },
            &AZURE,
            &opts,
        );
        assert!(
            high.resim_steps >= low.resim_steps,
            "interleaving reduces temporal locality: {} vs {}",
            high.resim_steps,
            low.resim_steps
        );
    }

    #[test]
    fn fig14_in_situ_scales_with_analyses() {
        let opts = RunOpts {
            reps: 1,
            ..RunOpts::default()
        };
        let mk = |z: u32| CostCase {
            dr_hours: 8.0,
            cache_fraction: 0.25,
            months: 24.0,
            n_analyses: z,
            overlap: 0.5,
        };
        let small = price_case(&mk(2), &AZURE, &opts);
        let large = price_case(&mk(125), &AZURE, &opts);
        assert!(large.in_situ > small.in_situ * 10.0);
        // Few analyses: in-situ beats SimFS. The paper puts the
        // crossover below ~20 analyses; with the vendored RNG's workload
        // stream it lands between 3 and 5, so probe well below it.
        assert!(small.in_situ < small.simfs);
        // Many analyses: SimFS wins against in-situ.
        assert!(large.simfs < large.in_situ);
    }
}
