//! Micro-benchmarks of the replacement policies: the DV consults the
//! policy on every access, so per-operation cost matters at archive
//! scale (the ECMWF trace replays 660k accesses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcache::{policy_by_name, CacheSim, PAPER_POLICIES};
use std::hint::black_box;

/// Zipf-ish skewed access stream with deterministic generation.
fn workload(n: usize, key_space: u64) -> Vec<u64> {
    let mut x: u64 = 0x9E3779B97F4A7C15;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Square the uniform draw to skew toward low keys.
            let u = (x >> 33) as f64 / (1u64 << 31) as f64;
            ((u * u) * key_space as f64) as u64
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let accesses = workload(10_000, 4096);
    let mut group = c.benchmark_group("policy_access");
    for policy in PAPER_POLICIES.iter().chain(["FIFO"].iter()) {
        group.bench_with_input(BenchmarkId::from_parameter(policy), policy, |b, name| {
            b.iter(|| {
                let mut cache =
                    CacheSim::new(policy_by_name(name, 1024).unwrap(), 1024 * 100);
                for &key in &accesses {
                    if !cache.access(key) {
                        cache.insert(key, 100, key % 48);
                    }
                }
                black_box(cache.stats().hits)
            })
        });
    }
    group.finish();
}

fn bench_eviction_pressure(c: &mut Criterion) {
    // Tiny cache, long scan: every insert evicts (worst case for the
    // cost-aware scan in BCL/DCL).
    let mut group = c.benchmark_group("policy_eviction_pressure");
    for policy in ["LRU", "BCL", "DCL"] {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, name| {
            b.iter(|| {
                let mut cache = CacheSim::new(policy_by_name(name, 64).unwrap(), 64 * 100);
                for key in 0..5_000u64 {
                    cache.insert(key, 100, key % 48);
                }
                black_box(cache.stats().evictions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_eviction_pressure);
criterion_main!(benches);
