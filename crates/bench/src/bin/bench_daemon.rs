//! End-to-end daemon throughput: N concurrent analysis clients hammer a
//! loopback daemon with hit-path `acquire`/`release` pairs — the Fig. 4
//! control-message pattern that bounds how many concurrent analyses one
//! context can serve. Every pair is one full request/response round
//! trip through the wire codec, the sharded writer map and the DV lock,
//! so the number directly tracks the lock-split + write-coalescing work
//! in `server.rs`.
//!
//! `cargo run --release -p simfs-bench --bin bench_daemon -- \
//!     [--clients 1,2,4,8,16,32] [--secs 2] [--out BENCH_daemon.json]`
//!
//! Writes a JSON summary (round-trips/sec per client count) to seed the
//! perf trajectory.

use simbatch::ParallelismMap;
use simfs_core::client::SimfsClient;
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{DvServer, ServerConfig, ThreadSimLauncher};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const N_KEYS: u64 = 64;

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

fn start_daemon(dir: &std::path::Path) -> (DvServer, StorageArea) {
    let _ = std::fs::remove_dir_all(dir);
    let storage = StorageArea::create(dir, u64::MAX).unwrap();
    let size = step_bytes(1).len() as u64;
    let ctx = ContextCfg::new(
        "bench-ctx",
        StepMath::new(1, 4, N_KEYS),
        size,
        u64::MAX / 4,
    )
    .with_prefetch(false)
    .with_smax(8);
    let launcher = Arc::new(ThreadSimLauncher::new(
        step_bytes,
        |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
        Duration::from_millis(1),
        Duration::from_micros(200),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: Arc::new(
                PatternDriver::new("out-", ".sdf", 6)
                    .with_parallelism(ParallelismMap::unconstrained(1, 2)),
            ),
            storage: storage.clone(),
            launcher,
            checksums: HashMap::new(),
        },
        "127.0.0.1:0",
    )
    .unwrap();
    (server, storage)
}

/// One throughput point: `clients` threads, each looping hit-path
/// `acquire([key])` + `release(key)` for `secs`. Returns total round
/// trips completed and the measured window (barrier release to stop
/// flag — connect/handshake/teardown excluded).
fn run_point(addr: std::net::SocketAddr, clients: usize, secs: f64) -> (u64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || -> u64 {
            let mut client = SimfsClient::connect(addr, "bench-ctx").unwrap();
            // Spread clients over the key space so writer shards and
            // cache entries are all exercised.
            let mut key = 1 + (c as u64 * 17) % N_KEYS;
            let mut ops = 0u64;
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let status = client.acquire(&[key]).unwrap();
                assert!(status.ok(), "hit-path acquire failed: {status:?}");
                client.release(key).unwrap();
                ops += 1;
                key = 1 + key % N_KEYS;
            }
            let _ = client.finalize();
            ops
        }));
    }
    start.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    (handles.into_iter().map(|h| h.join().unwrap()).sum(), elapsed)
}

fn main() {
    let mut clients: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    let mut secs = 2.0f64;
    let mut out = String::from("BENCH_daemon.json");
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let val = args.next().unwrap_or_default();
        match flag.as_str() {
            "--clients" => {
                clients = val
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --clients"))
                    .collect();
            }
            "--secs" => secs = val.parse().expect("bad --secs"),
            "--out" => out = val,
            other => panic!("unknown flag {other}"),
        }
    }

    let dir = std::env::temp_dir().join(format!("simfs-bench-daemon-{}", std::process::id()));
    let (server, _storage) = start_daemon(&dir);
    let addr = server.addr();

    // Materialize the whole timeline once so the measured loop is pure
    // hit-path control traffic (no re-simulations in the timings).
    {
        let mut warm = SimfsClient::connect(addr, "bench-ctx").unwrap();
        let keys: Vec<u64> = (1..=N_KEYS).collect();
        let status = warm.acquire(&keys).unwrap();
        assert!(status.ok(), "warmup failed: {status:?}");
        for k in 1..=N_KEYS {
            warm.release(k).unwrap();
        }
        warm.finalize().unwrap();
    }

    let mut lines = Vec::new();
    println!("{:>8} {:>12} {:>14}", "clients", "round_trips", "rtps");
    for &n in &clients {
        let (ops, elapsed) = run_point(addr, n, secs);
        let rtps = ops as f64 / elapsed;
        println!("{n:>8} {ops:>12} {rtps:>14.0}");
        lines.push(format!(
            "    {{\"clients\": {n}, \"secs\": {elapsed:.3}, \"round_trips\": {ops}, \"rtps\": {rtps:.1}}}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"daemon_acquire_release_roundtrips\",\n  \"keys\": {N_KEYS},\n  \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).unwrap();
    println!("wrote {out}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
