//! SDF: a self-describing binary array container (the netCDF stand-in).
//!
//! The Data Virtualizer treats output steps as opaque files; analyses and
//! simulators need a structured container for n-dimensional variables.
//! The paper interposes on netCDF/HDF5/ADIOS (Table I); we provide an
//! equivalent self-describing format with the interception-relevant
//! property set: open/create/read/close boundaries, named variables,
//! attributes, and a content checksum for `SIMFS_Bitrep`.
//!
//! ## Layout (all little-endian)
//!
//! ```text
//! magic    [u8;4]  = "SDF1"
//! version  u32     = 1
//! step     u64     output-step index
//! simtime  f64     simulated physical time
//! n_attrs  u32     then n_attrs × (string key, string value)
//! n_vars   u32     then n_vars × variable
//! variable: string name, u8 dtype, u8 ndims, ndims × u64 dims, payload
//! footer   u64     FNV-1a of every preceding byte
//! string:  u32 length + UTF-8 bytes
//! ```
//!
//! Attributes are stored in key order (`BTreeMap`), making the encoding
//! canonical: equal datasets encode to equal bytes, which is what makes
//! bitwise-reproducibility checks meaningful.

use crate::checksum::fnv1a64;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SDF1";
const VERSION: u32 = 1;

/// Element type of an SDF variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DType {
    /// 64-bit IEEE float.
    F64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// Raw bytes.
    U8,
}

impl DType {
    fn tag(self) -> u8 {
        match self {
            DType::F64 => 0,
            DType::F32 => 1,
            DType::I64 => 2,
            DType::U8 => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SdfError> {
        Ok(match tag {
            0 => DType::F64,
            1 => DType::F32,
            2 => DType::I64,
            3 => DType::U8,
            _ => return Err(SdfError::Corrupt(format!("unknown dtype tag {tag}"))),
        })
    }

    /// Size of one element in bytes.
    pub fn elem_size(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::F32 => 4,
            DType::U8 => 1,
        }
    }
}

/// Variable payload.
#[derive(Clone, Debug, PartialEq)]
pub enum Data {
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Raw bytes.
    U8(Vec<u8>),
}

impl Data {
    /// The element type of this payload.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F64(_) => DType::F64,
            Data::F32(_) => DType::F32,
            Data::I64(_) => DType::I64,
            Data::U8(_) => DType::U8,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Data::F64(v) => v.len(),
            Data::F32(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::U8(v) => v.len(),
        }
    }

    /// True if the payload has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow as `f64` slice, if that is the payload type.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// A named n-dimensional variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Variable {
    /// Variable name, unique within a dataset.
    pub name: String,
    /// Dimension sizes; the product must equal `data.len()`.
    pub dims: Vec<u64>,
    /// Payload.
    pub data: Data,
}

/// Errors raised by SDF encoding/decoding and file I/O.
#[derive(Debug)]
pub enum SdfError {
    /// Byte stream is not a valid SDF container.
    Corrupt(String),
    /// Footer checksum mismatch: the file was damaged or truncated.
    ChecksumMismatch {
        /// Digest recorded in the footer.
        stored: u64,
        /// Digest of the actual content.
        computed: u64,
    },
    /// Dimensions do not match payload length.
    ShapeMismatch {
        /// Product of the declared dimensions.
        expected: u64,
        /// Actual number of elements supplied.
        actual: u64,
    },
    /// Duplicate variable name within one dataset.
    DuplicateVariable(String),
    /// Underlying file I/O failure.
    Io(io::Error),
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::Corrupt(msg) => write!(f, "corrupt SDF container: {msg}"),
            SdfError::ChecksumMismatch { stored, computed } => write!(
                f,
                "SDF checksum mismatch: footer {stored:#018x}, content {computed:#018x}"
            ),
            SdfError::ShapeMismatch { expected, actual } => write!(
                f,
                "variable shape mismatch: dims imply {expected} elements, got {actual}"
            ),
            SdfError::DuplicateVariable(name) => {
                write!(f, "duplicate variable name {name:?}")
            }
            SdfError::Io(e) => write!(f, "SDF I/O error: {e}"),
        }
    }
}

impl std::error::Error for SdfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SdfError {
    fn from(e: io::Error) -> Self {
        SdfError::Io(e)
    }
}

/// An in-memory SDF dataset: one output (or restart) step.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Dataset {
    /// Output-step index within the simulation timeline.
    pub step_index: u64,
    /// Simulated physical time of this step.
    pub sim_time: f64,
    attrs: BTreeMap<String, String>,
    vars: Vec<Variable>,
}

impl Dataset {
    /// Creates an empty dataset for the given step.
    pub fn new(step_index: u64, sim_time: f64) -> Self {
        Dataset {
            step_index,
            sim_time,
            attrs: BTreeMap::new(),
            vars: Vec::new(),
        }
    }

    /// Sets a string attribute (canonical ordering is maintained).
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.insert(key.into(), value.into());
    }

    /// Reads an attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// Iterates attributes in canonical (key) order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Adds a variable after validating its shape.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        dims: Vec<u64>,
        data: Data,
    ) -> Result<(), SdfError> {
        let name = name.into();
        if self.vars.iter().any(|v| v.name == name) {
            return Err(SdfError::DuplicateVariable(name));
        }
        let expected: u64 = dims.iter().product();
        let actual = data.len() as u64;
        if expected != actual {
            return Err(SdfError::ShapeMismatch { expected, actual });
        }
        self.vars.push(Variable { name, dims, data });
        Ok(())
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<&Variable> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// All variables in insertion order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Encodes to the canonical byte representation (with footer digest).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size_hint());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(self.step_index);
        buf.put_f64_le(self.sim_time);
        buf.put_u32_le(self.attrs.len() as u32);
        for (k, v) in &self.attrs {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }
        buf.put_u32_le(self.vars.len() as u32);
        for var in &self.vars {
            put_string(&mut buf, &var.name);
            buf.put_u8(var.data.dtype().tag());
            buf.put_u8(var.dims.len() as u8);
            for &d in &var.dims {
                buf.put_u64_le(d);
            }
            match &var.data {
                Data::F64(v) => {
                    for &x in v {
                        buf.put_f64_le(x);
                    }
                }
                Data::F32(v) => {
                    for &x in v {
                        buf.put_f32_le(x);
                    }
                }
                Data::I64(v) => {
                    for &x in v {
                        buf.put_i64_le(x);
                    }
                }
                Data::U8(v) => buf.put_slice(v),
            }
        }
        let digest = fnv1a64(&buf);
        buf.put_u64_le(digest);
        buf.freeze()
    }

    fn encoded_size_hint(&self) -> usize {
        let var_bytes: usize = self
            .vars
            .iter()
            .map(|v| v.name.len() + 16 + v.dims.len() * 8 + v.data.len() * v.data.dtype().elem_size())
            .sum();
        64 + self
            .attrs
            .iter()
            .map(|(k, v)| k.len() + v.len() + 8)
            .sum::<usize>()
            + var_bytes
    }

    /// Decodes from bytes, verifying magic, version, shapes, and footer
    /// checksum.
    pub fn decode(bytes: &[u8]) -> Result<Dataset, SdfError> {
        if bytes.len() < MAGIC.len() + 4 + 8 + 8 + 4 + 4 + 8 {
            return Err(SdfError::Corrupt("container too short".into()));
        }
        let (content, footer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(footer.try_into().expect("8-byte footer"));
        let computed = fnv1a64(content);
        if stored != computed {
            return Err(SdfError::ChecksumMismatch { stored, computed });
        }

        let mut buf = content;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SdfError::Corrupt(format!("bad magic {magic:?}")));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(SdfError::Corrupt(format!("unsupported version {version}")));
        }
        let step_index = buf.get_u64_le();
        let sim_time = buf.get_f64_le();

        let n_attrs = buf.get_u32_le();
        let mut attrs = BTreeMap::new();
        for _ in 0..n_attrs {
            let k = get_string(&mut buf)?;
            let v = get_string(&mut buf)?;
            attrs.insert(k, v);
        }

        let n_vars = buf.get_u32_le();
        let mut vars = Vec::with_capacity(n_vars as usize);
        for _ in 0..n_vars {
            let name = get_string(&mut buf)?;
            if buf.remaining() < 2 {
                return Err(SdfError::Corrupt("truncated variable header".into()));
            }
            let dtype = DType::from_tag(buf.get_u8())?;
            let ndims = buf.get_u8() as usize;
            if buf.remaining() < ndims * 8 {
                return Err(SdfError::Corrupt("truncated dims".into()));
            }
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                dims.push(buf.get_u64_le());
            }
            let n_elems = dims.iter().product::<u64>() as usize;
            let payload_bytes = n_elems
                .checked_mul(dtype.elem_size())
                .ok_or_else(|| SdfError::Corrupt("element count overflow".into()))?;
            if buf.remaining() < payload_bytes {
                return Err(SdfError::Corrupt("truncated payload".into()));
            }
            let data = match dtype {
                DType::F64 => Data::F64((0..n_elems).map(|_| buf.get_f64_le()).collect()),
                DType::F32 => Data::F32((0..n_elems).map(|_| buf.get_f32_le()).collect()),
                DType::I64 => Data::I64((0..n_elems).map(|_| buf.get_i64_le()).collect()),
                DType::U8 => {
                    let mut v = vec![0u8; n_elems];
                    buf.copy_to_slice(&mut v);
                    Data::U8(v)
                }
            };
            vars.push(Variable { name, dims, data });
        }
        if buf.has_remaining() {
            return Err(SdfError::Corrupt(format!(
                "{} trailing bytes",
                buf.remaining()
            )));
        }
        Ok(Dataset {
            step_index,
            sim_time,
            attrs,
            vars,
        })
    }

    /// Writes the dataset to `path` atomically (temp file + rename), so
    /// a concurrently opening reader never sees a partial step.
    pub fn write_to(&self, path: &Path) -> Result<u64, SdfError> {
        let bytes = self.encode();
        let tmp = tmp_sibling(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Reads and validates a dataset from `path`.
    pub fn read_from(path: &Path) -> Result<Dataset, SdfError> {
        let bytes = fs::read(path)?;
        Dataset::decode(&bytes)
    }

    /// The content digest (footer value) of the canonical encoding —
    /// what `SIMFS_Bitrep` compares.
    pub fn digest(&self) -> u64 {
        let encoded = self.encode();
        let (_, footer) = encoded.split_at(encoded.len() - 8);
        u64::from_le_bytes(footer.try_into().expect("8-byte footer"))
    }
}

/// Is this byte buffer an SDF container at all? (Magic check only —
/// used to decide whether [`verify`] applies to a produced file.)
pub fn looks_like_sdf(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC
}

/// Structural verification of an encoded SDF container: footer
/// checksum, magic, version, shapes, truncation. Exactly the checks
/// [`Dataset::decode`] performs, discarding the decoded dataset — the
/// daemon's output-integrity gate calls this on every produced file
/// before declaring it resident.
pub fn verify(bytes: &[u8]) -> Result<(), SdfError> {
    Dataset::decode(bytes).map(|_| ())
}

fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| ".sdf".into());
    name.push(".tmp");
    path.with_file_name(name)
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, SdfError> {
    if buf.remaining() < 4 {
        return Err(SdfError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SdfError::Corrupt("truncated string body".into()));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| SdfError::Corrupt("invalid UTF-8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new(42, 12.5);
        ds.set_attr("model", "heat2d");
        ds.set_attr("dx", "0.01");
        ds.add_var("temperature", vec![2, 3], Data::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
            .unwrap();
        ds.add_var("flags", vec![4], Data::U8(vec![1, 0, 1, 1])).unwrap();
        ds
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let decoded = Dataset::decode(&ds.encode()).unwrap();
        assert_eq!(ds, decoded);
        assert_eq!(decoded.attr("model"), Some("heat2d"));
        assert_eq!(decoded.var("temperature").unwrap().dims, vec![2, 3]);
    }

    #[test]
    fn encoding_is_canonical() {
        // Attribute insertion order must not matter.
        let mut a = Dataset::new(1, 0.0);
        a.set_attr("x", "1");
        a.set_attr("y", "2");
        let mut b = Dataset::new(1, 0.0);
        b.set_attr("y", "2");
        b.set_attr("x", "1");
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_changes_with_content() {
        let a = sample();
        let mut b = sample();
        b.sim_time += 1e-9;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn corruption_is_detected() {
        let encoded = sample().encode();
        let mut bad = encoded.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        match Dataset::decode(&bad) {
            Err(SdfError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let encoded = sample().encode();
        let truncated = &encoded[..encoded.len() - 20];
        assert!(Dataset::decode(truncated).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] = b'X';
        // fix checksum so magic check is what fails
        let n = bytes.len();
        let digest = crate::checksum::fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&digest.to_le_bytes());
        match Dataset::decode(&bytes) {
            Err(SdfError::Corrupt(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected corrupt magic, got {other:?}"),
        }
    }

    #[test]
    fn shape_validation() {
        let mut ds = Dataset::new(0, 0.0);
        let err = ds
            .add_var("bad", vec![2, 2], Data::F64(vec![1.0, 2.0, 3.0]))
            .unwrap_err();
        match err {
            SdfError::ShapeMismatch { expected, actual } => {
                assert_eq!((expected, actual), (4, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut ds = Dataset::new(0, 0.0);
        ds.add_var("v", vec![1], Data::I64(vec![1])).unwrap();
        assert!(matches!(
            ds.add_var("v", vec![1], Data::I64(vec![2])),
            Err(SdfError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn file_roundtrip_is_atomic_and_valid() {
        let dir = std::env::temp_dir().join(format!("sdf-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("step-000042.sdf");
        let ds = sample();
        let written = ds.write_to(&path).unwrap();
        assert_eq!(written, ds.encode().len() as u64);
        let back = Dataset::read_from(&path).unwrap();
        assert_eq!(ds, back);
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new(0, 0.0);
        assert_eq!(Dataset::decode(&ds.encode()).unwrap(), ds);
    }

    #[test]
    fn all_dtypes_roundtrip() {
        let mut ds = Dataset::new(7, 1.0);
        ds.add_var("f64", vec![2], Data::F64(vec![1.5, -2.5])).unwrap();
        ds.add_var("f32", vec![2], Data::F32(vec![0.5, 9.0])).unwrap();
        ds.add_var("i64", vec![3], Data::I64(vec![-1, 0, i64::MAX])).unwrap();
        ds.add_var("u8", vec![2], Data::U8(vec![0, 255])).unwrap();
        let back = Dataset::decode(&ds.encode()).unwrap();
        assert_eq!(ds, back);
        assert_eq!(back.var("f32").unwrap().data.dtype(), DType::F32);
    }
}
