//! Sampling helpers: `select` and `Index`.

use crate::strategy::{Reject, Strategy};
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Uniform choice from a fixed list.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> Result<T, Reject> {
        let i = rng.gen_range(0..self.options.len());
        Ok(self.options[i].clone())
    }
}

/// A length-agnostic index: generated once, projected onto any
/// collection length with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index { raw }
    }

    /// Projects onto `0..len`.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.raw % len as u64) as usize
    }
}
