//! Fig. 5: cache replacement schemes × access patterns.
//!
//! Paper setup (§III-D): a 4-day simulation producing an output step
//! every 5 minutes (1152 steps) and a restart file every 4 hours
//! (48 steps per interval); the SimFS cache holds 25% of the data
//! volume. Workloads: concatenations of 50 traces per pattern (forward,
//! backward, random; 100–400 accesses each, random start) plus the
//! ECMWF-like archival trace. Each experiment repeats with fresh traces;
//! the paper reports the median and 95% CI of (a) simulated output
//! steps and (b) simulation restarts.

use crate::output::{fmt, RunOpts, Table};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::replay::replay;
use simkit::{median_ci95, SeedSeq};
use simtrace::{fig5_trace, EcmwfSpec, Pattern};

/// The Fig. 5 experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig5Config {
    /// Output steps on the timeline (paper: 1152 = 4 days @ 5 min).
    pub timeline_steps: u64,
    /// Output steps per restart interval (paper: 48 = 4 h @ 5 min).
    pub outputs_per_restart: u64,
    /// Cache size as a fraction of the data volume (paper: 0.25).
    pub cache_fraction: f64,
    /// Traces per repetition (paper: 50).
    pub n_traces: u32,
    /// Accesses per trace (paper: 100–400).
    pub len_range: (u64, u64),
    /// ECMWF trace accesses (paper: 659,989; scaled down by default).
    pub ecmwf_accesses: u64,
}

impl Fig5Config {
    /// The paper's configuration, with the ECMWF trace optionally
    /// scaled (the full 660k-access replay is `--full` territory).
    pub fn paper(full: bool) -> Fig5Config {
        Fig5Config {
            timeline_steps: 1152,
            outputs_per_restart: 48,
            cache_fraction: 0.25,
            n_traces: 50,
            len_range: (100, 400),
            ecmwf_accesses: if full { 659_989 } else { 60_000 },
        }
    }

    fn context(&self, policy: &str) -> ContextCfg {
        let steps = StepMath::new(1, self.outputs_per_restart, self.timeline_steps);
        let bytes_per_step = 1_000u64;
        let cache = (self.timeline_steps as f64 * self.cache_fraction) as u64 * bytes_per_step;
        ContextCfg::new("fig5", steps, bytes_per_step, cache)
            .with_policy(policy)
            .with_prefetch(false)
    }
}

/// One measured cell of Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig5Cell {
    /// Access pattern (figure tile).
    pub pattern: Pattern,
    /// Replacement scheme (x-axis).
    pub policy: &'static str,
    /// Median simulated output steps (bar).
    pub steps_median: f64,
    /// 95% CI of the median (bar whiskers).
    pub steps_ci: (f64, f64),
    /// Median number of restarts (point).
    pub restarts_median: f64,
    /// 95% CI of the restarts median.
    pub restarts_ci: (f64, f64),
}

/// Runs the full Fig. 5 grid; `opts.reps` repetitions per cell.
pub fn run(cfg: &Fig5Config, opts: &RunOpts) -> Vec<Fig5Cell> {
    let seq = SeedSeq::new(opts.seed);
    let mut cells = Vec::new();
    for pattern in Pattern::ALL {
        for policy in simcache::PAPER_POLICIES {
            let mut steps_samples = Vec::with_capacity(opts.reps as usize);
            let mut restart_samples = Vec::with_capacity(opts.reps as usize);
            for rep in 0..opts.reps {
                let mut rng = seq.child(rep as u64).rng(pattern as u64 * 31 + 7);
                let trace = match pattern {
                    Pattern::Ecmwf => EcmwfSpec {
                        n_accesses: cfg.ecmwf_accesses,
                        ..EcmwfSpec::default()
                    }
                    .generate(&mut rng),
                    p => fig5_trace(&mut rng, p, cfg.timeline_steps, cfg.n_traces, cfg.len_range),
                };
                // ECMWF file ids are 0-based; keys are 1-based.
                let accesses = trace.accesses.iter().map(|a| a.step + 1);
                let ctx = cfg.context(policy);
                let stats = replay(&ctx, accesses);
                steps_samples.push(stats.simulated_steps as f64);
                restart_samples.push(stats.restarts as f64);
            }
            let (steps_median, s_lo, s_hi) = median_ci95(&steps_samples);
            let (restarts_median, r_lo, r_hi) = median_ci95(&restart_samples);
            cells.push(Fig5Cell {
                pattern,
                policy,
                steps_median,
                steps_ci: (s_lo, s_hi),
                restarts_median,
                restarts_ci: (r_lo, r_hi),
            });
        }
    }
    cells
}

/// Renders the cells as the figure's table.
pub fn table(cells: &[Fig5Cell]) -> Table {
    let mut t = Table::new(
        "Fig. 5 — replacement schemes vs access patterns (median over reps)",
        &[
            "pattern",
            "policy",
            "steps_x100",
            "steps_ci_lo",
            "steps_ci_hi",
            "restarts",
            "restarts_ci_lo",
            "restarts_ci_hi",
        ],
    );
    for c in cells {
        t.row(vec![
            c.pattern.label().to_string(),
            c.policy.to_string(),
            fmt(c.steps_median / 100.0),
            fmt(c.steps_ci.0 / 100.0),
            fmt(c.steps_ci.1 / 100.0),
            fmt(c.restarts_median),
            fmt(c.restarts_ci.0),
            fmt(c.restarts_ci.1),
        ]);
    }
    t
}

/// Finds a cell by pattern + policy.
pub fn cell<'c>(cells: &'c [Fig5Cell], pattern: Pattern, policy: &str) -> &'c Fig5Cell {
    cells
        .iter()
        .find(|c| c.pattern == pattern && c.policy == policy)
        .expect("cell exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Fig5Config, RunOpts) {
        let cfg = Fig5Config {
            timeline_steps: 288,
            outputs_per_restart: 24,
            cache_fraction: 0.25,
            n_traces: 10,
            len_range: (30, 80),
            ecmwf_accesses: 4_000,
        };
        (cfg, RunOpts::quick())
    }

    #[test]
    fn grid_is_complete() {
        let (cfg, opts) = tiny();
        let cells = run(&cfg, &opts);
        assert_eq!(cells.len(), 4 * 5, "4 patterns x 5 policies");
        for c in &cells {
            assert!(c.steps_median > 0.0, "{c:?}");
            assert!(c.restarts_median > 0.0);
            assert!(c.steps_ci.0 <= c.steps_median && c.steps_median <= c.steps_ci.1);
        }
    }

    #[test]
    fn forward_scans_are_cheap_for_all_policies() {
        // Scan patterns: "Except for LIRS, we notice no important
        // differences among the caching schemes for scan-like access
        // patterns" (§III-D) — so the spread is checked without LIRS.
        let (cfg, opts) = tiny();
        let cells = run(&cfg, &opts);
        let fwd: Vec<f64> = ["ARC", "BCL", "DCL", "LRU"]
            .iter()
            .map(|p| cell(&cells, Pattern::Forward, p).steps_median)
            .collect();
        let spread = fwd.iter().cloned().fold(f64::MIN, f64::max)
            / fwd.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.7, "forward spread too wide: {fwd:?}");
    }

    #[test]
    fn table_has_all_rows() {
        let (cfg, opts) = tiny();
        let cells = run(&cfg, &opts);
        let t = table(&cells);
        assert_eq!(t.rows().len(), 20);
    }
}
