//! simlint — repo-specific static analysis for the SimFS daemon.
//!
//! Four checks, all driven by in-repo registries so the rules and the
//! code cannot drift apart silently:
//!
//! * **Lock hierarchy + Effects-outbox** ([`lockcheck`]): seeded from
//!   `crates/core/LOCKS.md`. Inside a scope holding a documented lock,
//!   no equal-or-higher lock may be acquired, and no blocking-denylist
//!   call may appear while a `blocking: no` lock is held. The registry
//!   is also cross-checked against the runtime constants in
//!   `simkit::lockrank` ([`registry::check_lockrank_consistency`]).
//! * **Wire tags** ([`wirecheck`]): `wire::tag` constants must be
//!   unique per family, referenced in both `encode_into` and `decode`,
//!   and exercised by name in `tests/wire_fuzz.rs`.
//! * **Stats completeness** ([`statscheck`]): every `DvStats` field
//!   reaches `accumulate()` and the `bench_daemon` JSON emitter.
//! * **Unsafe hygiene** ([`unsafecheck`]): every `unsafe` carries a
//!   `// SAFETY:` justification.
//!
//! No dependencies: the lexer in [`lexer`] is hand-rolled, because
//! this crate must build in the vendored-offline environment and run
//! as a cheap CI gate (`cargo run -p simlint`).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod lockcheck;
pub mod registry;
pub mod statscheck;
pub mod unsafecheck;
pub mod wirecheck;

/// One diagnostic. `file` is repo-relative; `line` is 1-based.
#[derive(Clone, Debug)]
pub struct Finding {
    pub check: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(check: &'static str, file: &str, line: usize, message: String) -> Self {
        Finding {
            check,
            file: file.to_string(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.check, self.message
        )
    }
}

/// Result of a full run: the findings plus how many files were
/// scanned (so "clean" output can show the lint actually looked).
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Walks up from `start` to the workspace root, identified by the
/// lock registry's presence.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates/core/LOCKS.md").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn read(root: &Path, rel: &str, findings: &mut Vec<Finding>) -> Option<String> {
    match std::fs::read_to_string(root.join(rel)) {
        Ok(s) => Some(s),
        Err(e) => {
            findings.push(Finding::new("io", rel, 1, format!("cannot read: {e}")));
            None
        }
    }
}

/// Recursively collects `.rs` files under `dir`, repo-relative.
fn rs_files_under(root: &Path, rel: &str, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(root.join(rel)) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child = format!("{rel}/{name}");
        let path = entry.path();
        if path.is_dir() {
            rs_files_under(root, &child, out);
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
}

/// Runs every check against the repo at `root`.
pub fn run_all(root: &Path) -> Report {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;

    // Registry + lockrank.rs consistency.
    let reg_label = "crates/core/LOCKS.md";
    let Some(reg_src) = read(root, reg_label, &mut findings) else {
        return Report {
            findings,
            files_scanned,
        };
    };
    let (reg, reg_findings) = registry::parse(&reg_src, reg_label);
    findings.extend(reg_findings);
    let lockrank_label = "crates/simkit/src/lockrank.rs";
    if let Some(src) = read(root, lockrank_label, &mut findings) {
        findings.extend(registry::check_lockrank_consistency(&reg, &src, reg_label));
        files_scanned += 1;
    }

    // Lock order + blocking denylist over every registered file.
    let mut lock_files: Vec<&str> = reg
        .rows
        .iter()
        .flat_map(|r| r.files.iter().map(String::as_str))
        .collect();
    lock_files.sort_unstable();
    lock_files.dedup();
    for file in lock_files {
        if let Some(src) = read(root, file, &mut findings) {
            findings.extend(lockcheck::check_source(file, &src, &reg));
            files_scanned += 1;
        }
    }

    // Wire tags.
    let wire_label = "crates/core/src/wire.rs";
    let fuzz_label = "crates/core/tests/wire_fuzz.rs";
    if let (Some(wire_src), Some(fuzz_src)) = (
        read(root, wire_label, &mut findings),
        read(root, fuzz_label, &mut findings),
    ) {
        findings.extend(wirecheck::check(wire_label, &wire_src, fuzz_label, &fuzz_src));
        files_scanned += 2;
    }

    // Stats completeness.
    let dv_label = "crates/core/src/dv.rs";
    let bench_label = "crates/bench/src/bin/bench_daemon.rs";
    if let (Some(dv_src), Some(bench_src)) = (
        read(root, dv_label, &mut findings),
        read(root, bench_label, &mut findings),
    ) {
        findings.extend(statscheck::check(dv_label, &dv_src, bench_label, &bench_src));
        files_scanned += 2;
    }

    // Unsafe hygiene over every crate source tree (fixtures and tests
    // live outside src/ and are exempt by construction).
    let mut unsafe_files = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                let krate = entry.file_name();
                rs_files_under(root, &format!("crates/{}/src", krate.to_string_lossy()), &mut unsafe_files);
            }
        }
    }
    unsafe_files.sort_unstable();
    for file in &unsafe_files {
        if let Ok(src) = std::fs::read_to_string(root.join(file)) {
            findings.extend(unsafecheck::check_source(file, &src));
            files_scanned += 1;
        }
    }

    Report {
        findings,
        files_scanned,
    }
}
