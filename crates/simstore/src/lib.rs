//! # simstore — storage substrate for SimFS
//!
//! The paper's deployment writes simulation output through netCDF/HDF5
//! onto Lustre. This crate is the equivalent substrate built from
//! scratch:
//!
//! * [`sdf`] — the **S**elf-**D**escribing **F**ormat, a compact binary
//!   array container playing the role of netCDF: named n-dimensional
//!   variables, string attributes, a step index and simulated time, and
//!   an integrity checksum. Encoding is canonical (attributes are
//!   ordered), so bitwise-identical simulation states produce
//!   bitwise-identical files — the property `SIMFS_Bitrep` verifies.
//! * [`checksum`] — FNV-1a (64-bit) and CRC-32 implemented in-crate; the
//!   driver's checksum function for bit-reproducibility checks (§III-C).
//! * [`area`] — storage areas: the per-context directories the DV
//!   redirects simulator output into (§III-A), with atomic
//!   write-then-rename publication so analyses never observe partially
//!   written output steps.
//! * [`walog`] — the write-ahead pin/lease log: fixed-size checksummed
//!   records, torn-tail-tolerant replay and checkpoint compaction, the
//!   durability substrate that lets a crashed DV daemon re-establish
//!   its authority over the storage area on restart.

pub mod area;
pub mod checksum;
pub mod checksum_db;
pub mod sdf;
pub mod walog;

pub use area::StorageArea;
pub use checksum::{crc32, fnv1a64, Fnv1a};
pub use sdf::{Data, Dataset, DType, SdfError, Variable};
pub use walog::{WalRecord, WalState, WriteAheadLog};
