//! # simbatch — batch-system substrate for SimFS
//!
//! The paper runs re-simulations through a batch system (SLURM on Piz
//! Daint); the DV interacts with it in three ways that this crate
//! models:
//!
//! * **Parallelism levels** (§III-B): the DV requests "more parallelism"
//!   as an abstract integer level; the simulation driver maps levels to
//!   node counts while enforcing simulator-imposed allocation shapes
//!   ("square or power of two number of processes") — [`parallelism`].
//! * **Queueing delays** (§IV-C1): job start latency is part of the
//!   restart latency `alpha_sim` and can dominate it; [`queue`] provides
//!   the delay distributions used to reproduce Figs. 17/19 where the
//!   restart latency is swept up to 600 s.
//! * **Node accounting** ([`cluster`]): a virtual cluster with a FIFO
//!   backfill-free queue — jobs wait until their node request fits,
//!   which is how `s_max` parallel re-simulations contend for resources
//!   in the strong-scalability experiments (Figs. 16/18).
//!
//! For the real daemon, [`launcher`] spawns simulator processes with
//! `std::process` and tracks their lifecycle.

pub mod cluster;
pub mod launcher;
pub mod parallelism;
pub mod queue;

pub use cluster::{Cluster, ClusterEvent, JobId};
pub use launcher::{JobHandle, JobLauncher, ProcessLauncher, SpawnSpec};
pub use parallelism::{AllocShape, ParallelismMap};
pub use queue::QueueModel;
