//! Performance estimators (§IV-A, §IV-C1c).
//!
//! The prefetch agents need running estimates of three quantities:
//!
//! * `alpha_sim` — restart latency (queueing + restart-file read +
//!   model init). §IV-C1c: "SimFS keeps track of the restart latencies
//!   using an exponential moving average, so to consider only the most
//!   recent observation (the smoothing factor is a parameter defined in
//!   the simulation context)."
//! * `tau_sim` — inter-production time of output steps.
//! * `tau_cli` — inter-access time of a (k-strided) analysis.
//!
//! All three are [`Ema`]s over durations, seeded optionally with a prior
//! so prefetch math works before the first observation.

use simkit::{Dur, SimTime};

/// Exponential moving average over durations.
///
/// `alpha` close to 1 tracks the latest observation aggressively (the
/// paper's intent: "consider only the most recent observation"); close
/// to 0 smooths heavily.
#[derive(Clone, Copy, Debug)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>, // seconds
}

impl Ema {
    /// An empty estimator.
    ///
    /// # Panics
    /// Panics unless `0 < alpha ≤ 1`.
    pub fn new(alpha: f64) -> Ema {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EMA smoothing factor out of (0, 1]: {alpha}"
        );
        Ema { alpha, value: None }
    }

    /// An estimator pre-seeded with a prior estimate.
    pub fn with_prior(alpha: f64, prior: Dur) -> Ema {
        let mut e = Ema::new(alpha);
        e.value = Some(prior.as_secs_f64());
        e
    }

    /// Feeds an observation.
    pub fn observe(&mut self, sample: Dur) {
        let x = sample.as_secs_f64();
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current estimate, if any observation (or prior) exists.
    pub fn estimate(&self) -> Option<Dur> {
        self.value.map(Dur::from_secs_f64)
    }

    /// Current estimate or the given default.
    pub fn estimate_or(&self, default: Dur) -> Dur {
        self.estimate().unwrap_or(default)
    }

    /// Has this estimator seen anything?
    pub fn is_seeded(&self) -> bool {
        self.value.is_some()
    }
}

/// Tracks inter-event times from absolute timestamps (e.g. per-client
/// access times for `tau_cli`, per-simulation production times for
/// `tau_sim`).
#[derive(Clone, Copy, Debug)]
pub struct IntervalTracker {
    last: Option<SimTime>,
    ema: Ema,
}

impl IntervalTracker {
    /// A tracker with the given EMA smoothing.
    pub fn new(alpha: f64) -> IntervalTracker {
        IntervalTracker {
            last: None,
            ema: Ema::new(alpha),
        }
    }

    /// A tracker with a prior estimate of the interval.
    pub fn with_prior(alpha: f64, prior: Dur) -> IntervalTracker {
        IntervalTracker {
            last: None,
            ema: Ema::with_prior(alpha, prior),
        }
    }

    /// Records an event at `now`; updates the interval estimate if a
    /// previous event exists.
    pub fn mark(&mut self, now: SimTime) {
        if let Some(prev) = self.last {
            self.ema.observe(now.saturating_since(prev));
        }
        self.last = Some(now);
    }

    /// Forgets the last event (after a trajectory change, the next gap
    /// is not a valid interval observation) but keeps the estimate.
    pub fn reset_phase(&mut self) {
        self.last = None;
    }

    /// Current interval estimate.
    pub fn estimate(&self) -> Option<Dur> {
        self.ema.estimate()
    }

    /// Current estimate or default.
    pub fn estimate_or(&self, default: Dur) -> Dur {
        self.ema.estimate_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_adopted() {
        let mut e = Ema::new(0.3);
        assert!(e.estimate().is_none());
        e.observe(Dur::from_secs(10));
        assert_eq!(e.estimate(), Some(Dur::from_secs(10)));
    }

    #[test]
    fn ema_converges_toward_new_level() {
        let mut e = Ema::new(0.5);
        e.observe(Dur::from_secs(100));
        for _ in 0..20 {
            e.observe(Dur::from_secs(10));
        }
        let est = e.estimate().unwrap().as_secs_f64();
        assert!((est - 10.0).abs() < 0.1, "est {est}");
    }

    #[test]
    fn alpha_one_tracks_last_sample_exactly() {
        let mut e = Ema::new(1.0);
        e.observe(Dur::from_secs(5));
        e.observe(Dur::from_secs(42));
        assert_eq!(e.estimate(), Some(Dur::from_secs(42)));
    }

    #[test]
    fn prior_seeds_estimate() {
        let e = Ema::with_prior(0.5, Dur::from_secs(13));
        assert!(e.is_seeded());
        assert_eq!(e.estimate(), Some(Dur::from_secs(13)));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn zero_alpha_rejected() {
        Ema::new(0.0);
    }

    #[test]
    fn interval_tracker_measures_gaps() {
        let mut t = IntervalTracker::new(1.0);
        t.mark(SimTime::from_secs(10));
        assert!(t.estimate().is_none(), "one event is not an interval");
        t.mark(SimTime::from_secs(13));
        assert_eq!(t.estimate(), Some(Dur::from_secs(3)));
        t.mark(SimTime::from_secs(20));
        assert_eq!(t.estimate(), Some(Dur::from_secs(7)));
    }

    #[test]
    fn phase_reset_skips_one_gap() {
        let mut t = IntervalTracker::new(1.0);
        t.mark(SimTime::from_secs(0));
        t.mark(SimTime::from_secs(1));
        t.reset_phase();
        // A huge gap (trajectory jump) that must not pollute the
        // estimate:
        t.mark(SimTime::from_secs(1000));
        assert_eq!(t.estimate(), Some(Dur::from_secs(1)));
        t.mark(SimTime::from_secs(1002));
        assert_eq!(t.estimate(), Some(Dur::from_secs(2)));
    }
}
