//! Fig. 1: aggregated analysis cost vs data availability period.
//!
//! `cargo run -p simfs-bench --bin fig01_cost_availability [--full]`

use simfs_bench::{costfigs, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let (table, _) = costfigs::fig1(&opts);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig01_cost_availability")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
