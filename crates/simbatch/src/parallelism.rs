//! Parallelism levels and allocation-shape constraints (§III-B).
//!
//! "By using the parallelism level parameter, that is an integer from 0
//! to max parallelism level, SimFS can increase the simulation
//! parallelism without having to directly enforce these constraints,
//! which are instead enforced by the simulator-specific implementation."
//!
//! A [`ParallelismMap`] owns that translation: level 0 is the simulator's
//! default allocation; each level doubles the request; the result is
//! rounded **up** to the nearest count satisfying the simulator's
//! [`AllocShape`].

use serde::{Deserialize, Serialize};

/// Allocation-shape constraint a simulator imposes on its node counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocShape {
    /// Any positive node count.
    Any,
    /// Node count must be a power of two (e.g. FFT-based codes).
    PowerOfTwo,
    /// Node count must be a perfect square (2-D domain decompositions).
    Square,
    /// Node count must be a multiple of `n` (e.g. full racks).
    MultipleOf(u32),
}

impl AllocShape {
    /// Smallest count `>= want` satisfying the shape.
    pub fn round_up(self, want: u32) -> u32 {
        let want = want.max(1);
        match self {
            AllocShape::Any => want,
            AllocShape::PowerOfTwo => want.next_power_of_two(),
            AllocShape::Square => {
                let mut r = (want as f64).sqrt().floor() as u32;
                while r * r < want {
                    r += 1;
                }
                r * r
            }
            AllocShape::MultipleOf(n) => {
                let n = n.max(1);
                want.div_ceil(n) * n
            }
        }
    }

    /// Does `count` satisfy the shape?
    pub fn allows(self, count: u32) -> bool {
        count > 0 && self.round_up(count) == count
    }
}

/// Maps abstract parallelism levels to concrete node counts.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ParallelismMap {
    /// Node count at level 0 (the context's default `P`).
    pub base_nodes: u32,
    /// Highest level the simulator supports (§III-B "max parallelism
    /// level").
    pub max_level: u32,
    /// Shape constraint enforced on every allocation.
    pub shape: AllocShape,
}

impl ParallelismMap {
    /// A map with no shape constraint.
    pub fn unconstrained(base_nodes: u32, max_level: u32) -> Self {
        ParallelismMap {
            base_nodes,
            max_level,
            shape: AllocShape::Any,
        }
    }

    /// Node count for `level`, clamped to `max_level` and rounded up to
    /// the allocation shape. Level 0 still gets shape-rounded so the
    /// default allocation is always valid.
    pub fn nodes_for_level(&self, level: u32) -> u32 {
        let level = level.min(self.max_level);
        let want = self.base_nodes.saturating_mul(1u32 << level.min(31));
        self.shape.round_up(want)
    }

    /// True if raising the level above `level` changes the allocation
    /// (used by the prefetcher to stop escalating, §IV-B1b).
    pub fn can_escalate(&self, level: u32) -> bool {
        level < self.max_level && self.nodes_for_level(level + 1) > self.nodes_for_level(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_shape_is_identity() {
        assert_eq!(AllocShape::Any.round_up(7), 7);
        assert!(AllocShape::Any.allows(7));
        assert_eq!(AllocShape::Any.round_up(0), 1, "zero is bumped to one");
    }

    #[test]
    fn power_of_two_rounds_up() {
        assert_eq!(AllocShape::PowerOfTwo.round_up(5), 8);
        assert_eq!(AllocShape::PowerOfTwo.round_up(8), 8);
        assert!(!AllocShape::PowerOfTwo.allows(6));
        assert!(AllocShape::PowerOfTwo.allows(16));
    }

    #[test]
    fn square_rounds_up() {
        assert_eq!(AllocShape::Square.round_up(10), 16);
        assert_eq!(AllocShape::Square.round_up(16), 16);
        assert_eq!(AllocShape::Square.round_up(17), 25);
        assert!(AllocShape::Square.allows(100));
        assert!(!AllocShape::Square.allows(99));
    }

    #[test]
    fn multiple_of_rounds_up() {
        assert_eq!(AllocShape::MultipleOf(12).round_up(13), 24);
        assert_eq!(AllocShape::MultipleOf(12).round_up(12), 12);
        assert_eq!(AllocShape::MultipleOf(0).round_up(5), 5, "degenerate n=0 treated as 1");
    }

    #[test]
    fn levels_double_and_clamp() {
        let m = ParallelismMap::unconstrained(100, 3);
        assert_eq!(m.nodes_for_level(0), 100);
        assert_eq!(m.nodes_for_level(1), 200);
        assert_eq!(m.nodes_for_level(3), 800);
        assert_eq!(m.nodes_for_level(9), 800, "clamped to max level");
    }

    #[test]
    fn shaped_levels_stay_valid() {
        let m = ParallelismMap {
            base_nodes: 3,
            max_level: 4,
            shape: AllocShape::Square,
        };
        for level in 0..=4 {
            let n = m.nodes_for_level(level);
            assert!(m.shape.allows(n), "level {level} gave invalid {n}");
        }
        assert_eq!(m.nodes_for_level(0), 4, "3 rounded up to 2x2");
    }

    #[test]
    fn escalation_stops_at_max_level() {
        let m = ParallelismMap::unconstrained(10, 2);
        assert!(m.can_escalate(0));
        assert!(m.can_escalate(1));
        assert!(!m.can_escalate(2));
        assert!(!m.can_escalate(99));
    }
}
