//! Fig. 12: cost vs availability period for Δr ∈ {4, 8, 16} h and cache
//! sizes {25, 50}%.
//!
//! `cargo run -p simfs-bench --bin fig12_cost_dr_sweep [--full]`

use simfs_bench::{costfigs, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let (table, _) = costfigs::fig12(&opts);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig12_cost_dr_sweep")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
