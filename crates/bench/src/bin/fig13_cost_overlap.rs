//! Fig. 13: cost vs analyses execution overlap (Δt = 2 y).
//!
//! `cargo run -p simfs-bench --bin fig13_cost_overlap [--full]`

use simfs_bench::{costfigs, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let (table, _) = costfigs::fig13(&opts);
    table.print();
    let path = table
        .write_csv(&opts.out_dir, "fig13_cost_overlap")
        .expect("write CSV");
    println!("\nCSV: {}", path.display());
}
