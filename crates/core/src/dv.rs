//! The Data Virtualizer (§III): a deterministic, I/O-free state machine.
//!
//! All SimFS decisions — miss handling, launch/kill of re-simulations,
//! caching, reference counting, prefetching — are expressed as
//! `handle(now, event) -> actions`. Two front-ends drive it:
//!
//! * the virtual-time harness ([`crate::vharness`]) delivers events from
//!   a DES engine and interprets actions as scheduled productions
//!   (Figs. 16–19);
//! * the TCP daemon ([`crate::server`]) delivers events from sockets and
//!   interprets actions as process launches and file deletions (Fig. 4).
//!
//! The sequence of Fig. 4 maps onto this module as follows: an analysis
//! `open` becomes [`DvEvent::Acquire`] (1–2); a missing file produces a
//! [`DvAction::Launch`] (3); the simulator's `close` notifications come
//! back as [`DvEvent::FileProduced`] (4–5); waiting analyses get
//! [`DvAction::NotifyReady`] (6).
//!
//! # Production supervision: the retry/poison state machine
//!
//! A re-simulation can fail transiently (OOM, scheduler hiccup), fail
//! persistently (broken restart file), stall without exiting, or write
//! corrupt output. The DV supervises all four per *restart interval*
//! (the launch granularity), with knobs in
//! [`SupervisorCfg`](crate::model::SupervisorCfg):
//!
//! * **Retry with backoff.** A failed *demand* production — the launch
//!   reason is [`LaunchReason::Miss`], or a claimed key has live
//!   waiters — does not fail its waiters. The uncovered range is
//!   re-enqueued on the launch queue with a `not_before` deadline of
//!   capped exponential backoff plus deterministic jitter, and drains
//!   through the same `s_max` gate as any other launch once the
//!   deadline passes ([`tick`](DataVirtualizer::tick) or any queue
//!   drain). Speculative prefetch failures are never retried: the sim
//!   is dropped and counted, exactly like a §IV-C kill frees its slot.
//! * **Poison quarantine.** Each interval carries an attempt budget.
//!   Exhausting it quarantines the interval for a cooldown window:
//!   waiters get an immediate typed [`DvAction::NotifyFailed`] (code
//!   [`FailCode::Poisoned`], or the terminal cause), subsequent
//!   acquires short-circuit without launching, and queued launches
//!   into the interval are purged — a circuit breaker against retry
//!   storms. The quarantine expires by time, or instantly when a
//!   foreign production lands a key of the interval (overlapping
//!   prefetch blocks can cover a poisoned interval). Expiry resets the
//!   attempt budget. Cache *hits* inside a quarantined interval still
//!   serve — poison gates production, not residency.
//! * **Hang watchdog.** Every sim records `last_progress` (launch,
//!   `SimStarted`, each production). [`tick`](DataVirtualizer::tick)
//!   compares it against a deadline derived from the live
//!   `alpha_sim`/`tau_sim` estimates (scaled and clamped by the
//!   supervisor knobs) and emits [`DvAction::Kill`] plus an internal
//!   failure for stalled sims, so the retry machinery above takes
//!   over. [`next_due`](DataVirtualizer::next_due) tells a reactor
//!   front-end when the earliest backoff/watchdog/quarantine timer
//!   fires.
//! * **Interaction with pollution kills.** The §IV-C kill path and the
//!   queued-prefetch purge are unchanged: killed prefetches were never
//!   demand work, so they hit the "drop, never retry" branch. Retried
//!   launches re-enter the queue as `Miss` work and are therefore
//!   immune to the prefetch purge.

use crate::model::{ContextCfg, StepMath};
use crate::perfmodel::{Ema, IntervalTracker};
use crate::prefetch::{AccessRecord, Direction, PrefetchAgent, PrefetchInputs};
use simcache::{policy_by_name, u64_map, CacheSim, U64Map};
use simkit::lockrank;
use simkit::{Dur, SimTime};
use std::collections::VecDeque;
use std::ops::RangeInclusive;

/// Identifies an analysis client session.
pub type ClientId = u64;
/// Identifies a (re-)simulation.
pub type SimId = u64;

/// Why a simulation was launched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchReason {
    /// Serving a miss: a client is blocked on one of its keys.
    Miss,
    /// Speculative launch by a prefetch agent (§IV-B).
    Prefetch,
}

/// Machine-readable classification of a failed acquire, carried on
/// [`DvAction::NotifyFailed`] and over the wire on `Response::Failed`.
/// Stable: new causes must extend the enum, not repurpose a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailCode {
    /// A transient production failure; retrying may succeed (surfaced
    /// only when the supervisor cannot retry, e.g. a producer finished
    /// in violation of its range contract and re-launch is impossible).
    Retriable,
    /// The key's restart interval exhausted its attempt budget and is
    /// quarantined for the supervisor's cooldown window.
    Poisoned,
    /// The producer stalled and was killed by the hang watchdog; the
    /// interval poisoned on that terminal attempt.
    HangKilled,
    /// The producer's output failed the integrity gate; the interval
    /// poisoned on that terminal attempt.
    CorruptOutput,
    /// Anything else: invalid keys, misrouted cluster keys, protocol
    /// errors — the legacy free-text failures.
    Other,
}

impl FailCode {
    /// Stable wire value.
    pub const fn as_u8(self) -> u8 {
        match self {
            FailCode::Retriable => 1,
            FailCode::Poisoned => 2,
            FailCode::HangKilled => 3,
            FailCode::CorruptOutput => 4,
            FailCode::Other => 0,
        }
    }

    /// Decodes a wire value; unknown values degrade to
    /// [`FailCode::Other`] (a newer daemon must not crash an older
    /// client).
    pub const fn from_u8(b: u8) -> FailCode {
        match b {
            1 => FailCode::Retriable,
            2 => FailCode::Poisoned,
            3 => FailCode::HangKilled,
            4 => FailCode::CorruptOutput,
            _ => FailCode::Other,
        }
    }

    /// Short stable label (log/JSON friendly).
    pub const fn as_str(self) -> &'static str {
        match self {
            FailCode::Retriable => "retriable",
            FailCode::Poisoned => "poisoned",
            FailCode::HangKilled => "hang-killed",
            FailCode::CorruptOutput => "corrupt-output",
            FailCode::Other => "other",
        }
    }
}

/// Input events (all front-ends translate into these).
#[derive(Clone, Debug)]
pub enum DvEvent {
    /// A client requests an output step (open/`SIMFS_Acquire`).
    Acquire {
        /// Requesting client.
        client: ClientId,
        /// Output-step key.
        key: u64,
    },
    /// A client is done with a step (close/`SIMFS_Release`).
    Release {
        /// Releasing client.
        client: ClientId,
        /// Output-step key.
        key: u64,
    },
    /// A launched simulation got its resources and finished restart
    /// initialization (it will now produce steps).
    SimStarted {
        /// The simulation.
        sim: SimId,
    },
    /// A simulation published one output step (intercepted `close`).
    FileProduced {
        /// Producing simulation.
        sim: SimId,
        /// Produced key.
        key: u64,
        /// File size in bytes.
        size: u64,
    },
    /// A simulation completed its assigned range.
    SimFinished {
        /// The simulation.
        sim: SimId,
    },
    /// A simulation failed (crash, bad restart, scheduler error).
    SimFailed {
        /// The simulation.
        sim: SimId,
    },
    /// The front-end's integrity gate rejected a produced file (torn
    /// sdf, checksum mismatch): the bytes were already deleted; the DV
    /// kills the producer and treats the attempt as a failure. Routed
    /// by key, like the [`DvEvent::FileProduced`] it replaces.
    OutputCorrupt {
        /// Producing simulation.
        sim: SimId,
        /// The rejected key.
        key: u64,
    },
    /// A client disconnected: release its pins, kill its prefetches.
    ClientGone {
        /// The departed client.
        client: ClientId,
    },
}

/// Output actions for the driving front-end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DvAction {
    /// Unblock a client waiting on `key`.
    NotifyReady {
        /// Waiting client.
        client: ClientId,
        /// Ready key.
        key: u64,
    },
    /// Tell a client its request cannot be served.
    NotifyFailed {
        /// Waiting client.
        client: ClientId,
        /// Failed key.
        key: u64,
        /// Machine-readable classification (stable across releases).
        code: FailCode,
        /// Human-readable reason (surfaced in `SIMFS_Status`).
        reason: String,
    },
    /// Start a re-simulation producing `keys` at `level` parallelism.
    Launch {
        /// New simulation id.
        sim: SimId,
        /// Keys the simulation will produce, in order.
        keys: RangeInclusive<u64>,
        /// Parallelism level (driver maps to nodes).
        level: u32,
        /// Why it was launched.
        reason: LaunchReason,
    },
    /// Abort a running/queued simulation (prefetch no longer useful).
    Kill {
        /// Simulation to kill.
        sim: SimId,
    },
    /// Delete an evicted output step from the storage area.
    Evict {
        /// Evicted key.
        key: u64,
    },
}

/// Lifetime counters (Fig. 5 reports `simulated_steps` as bars and
/// `restarts` as points).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DvStats {
    /// Cache hits on acquire.
    pub hits: u64,
    /// Cache misses on acquire.
    pub misses: u64,
    /// Simulations launched (the paper's "restarts").
    pub restarts: u64,
    /// Of which prefetch launches.
    pub prefetch_launches: u64,
    /// Output steps scheduled for production across all launches.
    pub scheduled_steps: u64,
    /// Output steps actually produced (`FileProduced` events).
    pub produced_steps: u64,
    /// Cache evictions.
    pub evictions: u64,
    /// Simulations killed (§IV-C).
    pub kills: u64,
    /// Pollution resets of all prefetch agents (§IV-C).
    pub pollution_resets: u64,
    /// Simulations that failed.
    pub failures: u64,
    /// Hit acquires served on the daemon's lock-free fast path (never
    /// took a DV lock). Zero outside the daemon: the DV state machine
    /// itself only ever sees slow-path events.
    pub acquired_fast: u64,
    /// Acquires that went through a DV shard lock (misses, hits in
    /// prefetching contexts, and fast-path fallbacks).
    pub acquired_slow: u64,
    /// Fast-path attempts that raced an eviction and fell back to the
    /// locked path (the epoch/generation check fired).
    pub hit_fallbacks: u64,
    /// Nanoseconds daemon threads spent *waiting* for DV shard locks.
    pub lock_wait_ns: u64,
    /// Nanoseconds daemon threads spent *holding* DV shard locks.
    pub lock_hold_ns: u64,
    /// Number of timed DV-lock acquisitions behind the two counters
    /// above.
    pub lock_transitions: u64,
    /// Transient accept-loop failures (EMFILE/ECONNABORTED) that were
    /// retried with backoff instead of killing the listener. Counted
    /// daemon-wide and mirrored into every context's snapshot.
    pub accept_retries: u64,
    /// Access records replayed into the prefetch agents out-of-band
    /// (digest drains). Each record is counted once, by the shard that
    /// owns its key.
    pub digest_replayed: u64,
    /// Access records lost to digest-ring overflow before they reached
    /// the agents (the lossiness half of the observation contract;
    /// counted at the recording side and mirrored into snapshots).
    pub digest_dropped: u64,
    /// Replayed accesses of keys a prefetch agent had planned that were
    /// materialized when observed — the numerator of the prefetch hit
    /// rate. Approximate by design: replay happens after the fact, so a
    /// pollution miss whose key was re-produced before the drain can
    /// sneak in.
    pub prefetch_hits: u64,
    /// Write-ahead-log records appended (daemon-wide, mirrored into
    /// snapshots like `accept_retries`). Zero when durability is off.
    pub wal_appends: u64,
    /// Write-ahead-log records replayed at the last recovery startup.
    pub wal_replayed: u64,
    /// Pins re-established from the WAL after a restart
    /// ([`DataVirtualizer::restore_pin`]).
    pub pins_recovered: u64,
    /// Recovered client leases that expired before the client
    /// re-asserted (their pins were released via `ClientGone`).
    pub leases_expired: u64,
    /// Clients that reconnected after a dropped connection (hellos
    /// carrying a prior-epoch claim).
    pub client_reconnects: u64,
    /// Takeover acquires accepted on behalf of a dead cluster member
    /// (degraded-mode serving; daemon-wide, mirrored into snapshots).
    pub takeover_acquires: u64,
    /// Foreign intervals whose residency was rebuilt from the storage
    /// area to serve takeover acquires.
    pub takeover_intervals_primed: u64,
    /// Takeover pin counts drained by `HandBack` after the dead member
    /// restarted.
    pub takeover_pins_handed_back: u64,
    /// Demand launches re-enqueued with backoff after a production
    /// failure (the supervision tier's retries; never prefetches).
    pub sim_retries: u64,
    /// Simulations killed by the hang watchdog (stalled past the
    /// alpha/tau-derived deadline). Disjoint from `kills`, which counts
    /// §IV-C prefetch kills.
    pub sims_hung_killed: u64,
    /// Restart intervals quarantined after exhausting their attempt
    /// budget.
    pub intervals_poisoned: u64,
    /// Produced files rejected (and deleted) by the integrity gate.
    pub corrupt_outputs: u64,
    /// Blocking effect jobs reactor shard threads handed to the effect
    /// tier's helper pool instead of executing inline (daemon-side,
    /// mirrored into snapshots; zero in inline compatibility mode).
    pub effects_offloaded: u64,
    /// Submissions that found their per-shard effect queue full and
    /// parked until a helper freed space (backpressure events, not
    /// drops).
    pub helper_queue_full: u64,
    /// WAL `fdatasync` calls (group fsync folds many appends into one;
    /// compare against `wal_appends` for the batching factor).
    pub wal_syncs: u64,
    /// Helper-side nanoseconds executing job-control effect jobs
    /// (launch/kill commits).
    pub effect_spawn_ns: u64,
    /// Job-control effect jobs executed.
    pub effect_spawn_ops: u64,
    /// Helper-side nanoseconds executing WAL-only effect jobs (durable
    /// outboxes, fast-pin windows, departures).
    pub effect_wal_ns: u64,
    /// WAL-only effect jobs executed.
    pub effect_wal_ops: u64,
    /// Helper-side nanoseconds executing eviction effect jobs.
    pub effect_evict_ns: u64,
    /// Eviction effect jobs executed.
    pub effect_evict_ops: u64,
    /// Helper-side nanoseconds executing storage-read effect jobs
    /// (simulator output verification, Bitrep re-reads).
    pub effect_read_ns: u64,
    /// Storage-read effect jobs executed.
    pub effect_read_ops: u64,
}

impl DvStats {
    /// Adds `other`'s counters into `self` (shard/context roll-ups).
    pub fn accumulate(&mut self, other: &DvStats) {
        let DvStats {
            hits,
            misses,
            restarts,
            prefetch_launches,
            scheduled_steps,
            produced_steps,
            evictions,
            kills,
            pollution_resets,
            failures,
            acquired_fast,
            acquired_slow,
            hit_fallbacks,
            lock_wait_ns,
            lock_hold_ns,
            lock_transitions,
            accept_retries,
            digest_replayed,
            digest_dropped,
            prefetch_hits,
            wal_appends,
            wal_replayed,
            pins_recovered,
            leases_expired,
            client_reconnects,
            takeover_acquires,
            takeover_intervals_primed,
            takeover_pins_handed_back,
            sim_retries,
            sims_hung_killed,
            intervals_poisoned,
            corrupt_outputs,
            effects_offloaded,
            helper_queue_full,
            wal_syncs,
            effect_spawn_ns,
            effect_spawn_ops,
            effect_wal_ns,
            effect_wal_ops,
            effect_evict_ns,
            effect_evict_ops,
            effect_read_ns,
            effect_read_ops,
        } = other;
        self.hits += hits;
        self.misses += misses;
        self.restarts += restarts;
        self.prefetch_launches += prefetch_launches;
        self.scheduled_steps += scheduled_steps;
        self.produced_steps += produced_steps;
        self.evictions += evictions;
        self.kills += kills;
        self.pollution_resets += pollution_resets;
        self.failures += failures;
        self.acquired_fast += acquired_fast;
        self.acquired_slow += acquired_slow;
        self.hit_fallbacks += hit_fallbacks;
        self.lock_wait_ns += lock_wait_ns;
        self.lock_hold_ns += lock_hold_ns;
        self.lock_transitions += lock_transitions;
        self.accept_retries += accept_retries;
        self.digest_replayed += digest_replayed;
        self.digest_dropped += digest_dropped;
        self.prefetch_hits += prefetch_hits;
        self.wal_appends += wal_appends;
        self.wal_replayed += wal_replayed;
        self.pins_recovered += pins_recovered;
        self.leases_expired += leases_expired;
        self.client_reconnects += client_reconnects;
        self.takeover_acquires += takeover_acquires;
        self.takeover_intervals_primed += takeover_intervals_primed;
        self.takeover_pins_handed_back += takeover_pins_handed_back;
        self.sim_retries += sim_retries;
        self.sims_hung_killed += sims_hung_killed;
        self.intervals_poisoned += intervals_poisoned;
        self.corrupt_outputs += corrupt_outputs;
        self.effects_offloaded += effects_offloaded;
        self.helper_queue_full += helper_queue_full;
        self.wal_syncs += wal_syncs;
        self.effect_spawn_ns += effect_spawn_ns;
        self.effect_spawn_ops += effect_spawn_ops;
        self.effect_wal_ns += effect_wal_ns;
        self.effect_wal_ops += effect_wal_ops;
        self.effect_evict_ns += effect_evict_ns;
        self.effect_evict_ops += effect_evict_ops;
        self.effect_read_ns += effect_read_ns;
        self.effect_read_ops += effect_read_ops;
    }
}

struct ClientState {
    agent: PrefetchAgent,
    /// Pin counts per key held by this client.
    pins: U64Map<u32>,
    /// When the client's last request became ready: the start of its
    /// consumption phase. The gap to its next acquire is the `tau_cli`
    /// sample (§IV-A) — consumption time, not blocked-wait time.
    last_ready: Option<SimTime>,
    /// Epoch of the last digest record replayed for this client and
    /// whether it was a ready point: the digest-mode source of
    /// `tau_cli` samples (a gap is a consumption sample only when it
    /// starts at a ready point — gaps after blocked misses would
    /// otherwise fold the production wait into the estimate).
    last_digest_epoch: Option<(u64, bool)>,
    /// Set by a pollution reset: the client's next replayed digest
    /// window (usually) predates the reset, so it must not re-confirm
    /// the very trajectory the reset just discarded (the inline path
    /// gets this for free by observing only post-reset accesses).
    /// Deliberately coarse: a client whose log happened to be empty at
    /// reset time loses one fully post-reset window too — record
    /// epochs are per-recorder clocks, so the reset boundary cannot be
    /// compared against them; the cost is one drain window of delayed
    /// re-confirmation, bounded and loss-shaped like the rest of the
    /// digest contract.
    discard_digest_window: bool,
}

struct SimState {
    keys: RangeInclusive<u64>,
    next_key: u64,
    reason: LaunchReason,
    /// Client whose access pattern caused this launch.
    client: Option<ClientId>,
    launched_at: SimTime,
    started: bool,
    production: IntervalTracker,
    /// Number of keys this sim is the pending producer of that have a
    /// non-empty waiter list. Maintained incrementally so the §IV-C
    /// kill check ("no one waits on anything this sim will produce")
    /// is O(1) instead of a sims×keys scan.
    waited_keys: u32,
    /// Last sign of life (launch, start, each production): the hang
    /// watchdog's progress marker.
    last_progress: SimTime,
}

struct QueuedLaunch {
    keys: RangeInclusive<u64>,
    level: u32,
    reason: LaunchReason,
    client: Option<ClientId>,
    /// Earliest time this entry may launch (retry backoff); `ZERO` for
    /// ordinary launches.
    not_before: SimTime,
}

/// Retry/quarantine bookkeeping of one restart interval (keyed by the
/// interval index). Cleared by a successful production in the interval
/// or by quarantine expiry — both reset the attempt budget.
struct RetryState {
    /// Failed demand attempts so far.
    attempts: u32,
    /// Classification of the most recent failure: colours the code the
    /// poison verdict surfaces.
    last_cause: FailCode,
    /// `Some(expiry)` once poisoned: acquires short-circuit and
    /// launches are refused until then.
    quarantined_until: Option<SimTime>,
}

/// The Data Virtualizer for one simulation context.
pub struct DataVirtualizer {
    cfg: ContextCfg,
    cache: CacheSim,
    clients: U64Map<ClientState>,
    sims: U64Map<SimState>,
    /// key -> simulation that will produce it.
    pending: U64Map<SimId>,
    /// key -> clients blocked on it.
    waiting: U64Map<Vec<ClientId>>,
    /// client -> its live prefetch simulations (the §IV-C kill-path
    /// index; avoids scanning every sim on direction changes).
    prefetches_by_client: U64Map<Vec<SimId>>,
    /// Launches deferred because `s_max` simulations are active (or,
    /// for retries, because their backoff deadline is in the future).
    launch_queue: VecDeque<QueuedLaunch>,
    /// interval index -> retry/quarantine state (the supervision tier).
    retry: U64Map<RetryState>,
    /// Reusable victim list for the kill path (no per-event allocs).
    kill_scratch: Vec<SimId>,
    next_sim: SimId,
    /// Distance between consecutive sim ids (1 unsharded; the shard
    /// count under [`ShardedDv`], so `(sim - 1) % stride` recovers the
    /// owning shard).
    sim_stride: SimId,
    /// Agent observation arrives out-of-band through
    /// [`ingest_digest`](Self::ingest_digest) instead of inside
    /// `on_acquire` (the daemon's digest-decoupled mode): acquires stop
    /// feeding the agents and sampling `tau_cli`, so replayed records
    /// are the single source of observation.
    digest_observation: bool,
    /// A §IV-C pollution reset fired in this DV since the flag was last
    /// taken. In a sharded deployment every shard holds its own replica
    /// of each client's agents, so the front-end must fan the reset out
    /// ([`take_pollution_signal`](Self::take_pollution_signal) /
    /// [`apply_pollution_reset`](Self::apply_pollution_reset)) — a
    /// reset confined to one shard would leave the sibling replicas
    /// planning from the very trajectory that polluted the cache.
    pollution_signal: bool,
    alpha_sim: Ema,
    tau_sim: Ema,
    stats: DvStats,
}

impl DataVirtualizer {
    /// Creates a DV for the given context.
    ///
    /// # Panics
    /// Panics if the context names an unknown replacement policy.
    pub fn new(cfg: ContextCfg) -> DataVirtualizer {
        let capacity_entries = cfg.cache_capacity_steps().max(2) as usize;
        let policy = policy_by_name(&cfg.policy, capacity_entries)
            .unwrap_or_else(|| panic!("unknown replacement policy {:?}", cfg.policy));
        let cache = CacheSim::new(policy, cfg.cache_capacity);
        DataVirtualizer {
            alpha_sim: Ema::new(cfg.ema_alpha),
            tau_sim: Ema::new(cfg.ema_alpha),
            cfg,
            cache,
            clients: u64_map(),
            sims: u64_map(),
            pending: u64_map(),
            waiting: u64_map(),
            prefetches_by_client: u64_map(),
            launch_queue: VecDeque::new(),
            retry: u64_map(),
            kill_scratch: Vec::new(),
            next_sim: 1,
            sim_stride: 1,
            digest_observation: false,
            pollution_signal: false,
            stats: DvStats::default(),
        }
    }

    /// Builder: allocate sim ids `first, first + stride, ...` instead
    /// of `1, 2, ...` — the id-space partitioning that lets a sharded
    /// deployment recover a sim's owning shard as `(sim - 1) % stride`.
    ///
    /// # Panics
    /// Panics if `first == 0` or `stride == 0` (sim id 0 is reserved;
    /// a zero stride would reuse ids).
    pub fn with_sim_ids(mut self, first: SimId, stride: SimId) -> DataVirtualizer {
        assert!(first > 0, "sim ids start at 1");
        assert!(stride > 0, "sim id stride must be positive");
        self.next_sim = first;
        self.sim_stride = stride;
        self
    }

    /// Attaches a concurrent [`simcache::HitIndex`] replica to the
    /// cache: residents are published to it and evictions honour its
    /// fast pins (the daemon's lock-free hit path).
    pub fn attach_index(&mut self, index: std::sync::Arc<simcache::HitIndex>) {
        self.cache.attach_index(index);
    }

    /// Switches agent observation to digest mode: `on_acquire` stops
    /// feeding the prefetch agents (and sampling `tau_cli`); the whole
    /// access stream reaches them through
    /// [`ingest_digest`](Self::ingest_digest) instead. Launch
    /// bookkeeping that does not depend on stream order — miss-coverage
    /// frontiers, pollution resets — stays on the acquire path.
    pub fn set_digest_observation(&mut self, on: bool) {
        self.digest_observation = on;
    }

    /// Replays a drained access digest into the prefetch agents — the
    /// out-of-band observation half of the digest contract (records
    /// come from fast-path hits that never took a DV lock, from
    /// slow-path acquires, or forwarded from a clustered client's full
    /// pre-routing stream).
    ///
    /// `owns_key` narrows *planning* and accounting to the keys this DV
    /// instance owns: every record updates agent pattern state (agents
    /// must see the full sequence to detect direction and cadence), but
    /// plan blocks are split at ownership boundaries and only owned
    /// runs launch, and each record is counted once cluster-wide (by
    /// its owner). Pass `|_| true` when unsharded.
    ///
    /// `window_dropped` is the loss count of *this* window (from
    /// [`AccessLog::drain_into`](crate::prefetch::AccessLog::drain_into)):
    /// when records were lost, each client's first gap in the window
    /// spans the dropped stretch and is not sampled — one overflow must
    /// not feed a many-fold-inflated consumption sample into `tau_cli`
    /// (loss degrades, never corrupts).
    ///
    /// Invalid keys are skipped — `on_acquire` fails them before its
    /// agents ever see them, and replay mirrors that.
    pub fn ingest_digest(
        &mut self,
        now: SimTime,
        records: &[AccessRecord],
        window_dropped: u64,
        owns_key: &dyn Fn(u64) -> bool,
        actions: &mut Vec<DvAction>,
    ) {
        if !self.cfg.prefetch {
            return;
        }
        // Clients whose pre-reset window is being discarded *in this
        // drain* (a pollution reset must not be undone by replaying the
        // history that led to it), and clients already seen in this
        // window (their first gap after a loss is unsampleable).
        // Transitions touch a handful of clients, so linear scans beat
        // sets.
        let mut discarding: Vec<u64> = Vec::new();
        let mut seen: Vec<u64> = Vec::new();
        for r in records {
            if !self.cfg.steps.valid_key(r.key) {
                continue;
            }
            let inputs = self.prefetch_inputs();
            let owned = owns_key(r.key);
            let materialized = self.cache.peek(r.key);
            let state = self.client_mut(r.client);
            if state.discard_digest_window {
                state.discard_digest_window = false;
                discarding.push(r.client);
            }
            let suppressed = discarding.contains(&r.client);
            let first_of_window = if seen.contains(&r.client) {
                false
            } else {
                seen.push(r.client);
                true
            };
            // A gap is a consumption sample only when it starts at a
            // ready point and no records were lost inside it; epoch
            // bookkeeping continues through suppressed records so
            // post-window gaps stay truthful.
            if let Some((prev, prev_ready)) =
                state.last_digest_epoch.replace((r.epoch, r.ready))
            {
                let gap = r.epoch.saturating_sub(prev);
                let lossy_gap = window_dropped > 0 && first_of_window;
                if prev_ready && gap > 0 && !suppressed && !lossy_gap {
                    state.agent.observe_tau_cli(Dur::from_nanos(gap));
                }
            }
            if suppressed {
                if owned {
                    self.stats.digest_replayed += 1;
                }
                continue;
            }
            let was_planned = state.agent.was_prefetched(r.key);
            let outcome = state.agent.on_access(r.key, &inputs);
            if owned {
                self.stats.digest_replayed += 1;
                if was_planned && materialized {
                    self.stats.prefetch_hits += 1;
                }
            }
            self.apply_agent_outcome_owned(r.client, outcome, owns_key, actions, now);
        }
    }

    /// Folds recorder-side digest losses into this DV's counters (the
    /// drains themselves happen in the daemon, outside any shard).
    pub fn note_digest_dropped(&mut self, n: u64) {
        self.stats.digest_dropped += n;
    }

    /// Did a pollution reset fire since the last call? The daemon
    /// checks this after every acquire transition and fans the reset
    /// out to the context's sibling shards.
    pub fn take_pollution_signal(&mut self) -> bool {
        std::mem::take(&mut self.pollution_signal)
    }

    /// Applies a pollution reset another shard of this context
    /// detected: every agent replica here resets (and, in digest mode,
    /// discards its next stale window), without counting a second
    /// `pollution_resets` — the detecting shard already did.
    /// Idempotent, so the fan-out may include the detecting shard.
    pub fn apply_pollution_reset(&mut self) {
        for c in self.clients.values_mut() {
            c.agent.reset();
            c.discard_digest_window = self.digest_observation;
        }
    }

    /// Pre-seeds the performance estimators (e.g. from the simulation
    /// context configuration) so prefetching works before the first
    /// observed restart.
    pub fn seed_estimates(&mut self, alpha: Dur, tau_sim: Dur) {
        self.alpha_sim = Ema::with_prior(self.cfg.ema_alpha, alpha);
        self.tau_sim = Ema::with_prior(self.cfg.ema_alpha, tau_sim);
    }

    /// The context configuration.
    pub fn cfg(&self) -> &ContextCfg {
        &self.cfg
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DvStats {
        &self.stats
    }

    /// Cache-level statistics.
    pub fn cache_stats(&self) -> &simcache::CacheStats {
        self.cache.stats()
    }

    /// Is `key` currently materialized?
    pub fn is_cached(&self, key: u64) -> bool {
        self.cache.peek(key)
    }

    /// Number of active (launched, unfinished) simulations.
    pub fn active_sims(&self) -> usize {
        self.sims.len()
    }

    /// Number of launches waiting for an `s_max` slot.
    pub fn queued_launches(&self) -> usize {
        self.launch_queue.len()
    }

    /// Number of keys with a registered pending producer (leak probe
    /// for the supervision tests).
    pub fn pending_keys(&self) -> usize {
        self.pending.len()
    }

    /// Number of keys with a non-empty waiter list (leak probe for the
    /// supervision tests).
    pub fn waiting_keys(&self) -> usize {
        self.waiting.len()
    }

    /// Number of intervals currently inside a quarantine window.
    pub fn quarantined_intervals(&self, now: SimTime) -> usize {
        self.retry
            .values()
            .filter(|r| r.quarantined_until.is_some_and(|u| now < u))
            .count()
    }

    /// Runs the supervision timers: kills sims stalled past their
    /// hang deadline (handing them to the retry machinery), expires
    /// quarantines, and drains launch-queue entries whose backoff
    /// deadline has passed. Front-ends call this from their periodic
    /// tick (the daemon's reaper, the harness's scheduled wake-ups);
    /// [`next_due`](Self::next_due) says when the next call matters.
    pub fn tick(&mut self, now: SimTime, actions: &mut Vec<DvAction>) {
        lockrank::assert_none_held_below(lockrank::DV_SHARD.level, "DataVirtualizer::tick");
        let mut stalled = std::mem::take(&mut self.kill_scratch);
        stalled.clear();
        for (&sim, s) in self.sims.iter() {
            if now >= self.sim_deadline(s) {
                stalled.push(sim);
            }
        }
        for &sim in &stalled {
            self.stats.sims_hung_killed += 1;
            actions.push(DvAction::Kill { sim });
            self.fail_sim(sim, FailCode::HangKilled, now, actions);
        }
        stalled.clear();
        self.kill_scratch = stalled;
        // Expired quarantines reset their interval's budget even
        // without an acquire to observe it — prefetches into the
        // interval are gated on this map.
        self.retry
            .retain(|_, r| r.quarantined_until.is_none_or(|u| now < u));
        self.drain_launch_queue(actions, now);
    }

    /// Earliest supervision deadline (backoff expiry, hang deadline,
    /// quarantine expiry), if any: when the front-end should call
    /// [`tick`](Self::tick) again absent other events. A deadline that
    /// has already lapsed (time advanced between ticks) reports as due
    /// `now` — never `None`, which would let an event-less front-end
    /// park forever over ready work. Queue entries with no backoff
    /// stamp are excluded: they are slot-blocked, and the SimFinished
    /// that frees the slot drains them without a timer.
    pub fn next_due(&self, now: SimTime) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            let t = t.max(now);
            due = Some(due.map_or(t, |d| d.min(t)));
        };
        for q in &self.launch_queue {
            if q.not_before != SimTime::ZERO {
                consider(q.not_before);
            }
        }
        for s in self.sims.values() {
            consider(self.sim_deadline(s));
        }
        for r in self.retry.values() {
            if let Some(u) = r.quarantined_until {
                consider(u);
            }
        }
        due
    }

    /// The instant after which `s` counts as hung: last progress plus
    /// the relevant estimate (restart latency before the first sign of
    /// life, inter-production time after) scaled and clamped by the
    /// supervisor knobs.
    fn sim_deadline(&self, s: &SimState) -> SimTime {
        let sup = &self.cfg.supervisor;
        let est = if s.started {
            self.tau_sim.estimate_or(Dur::from_secs(1))
        } else {
            self.alpha_sim.estimate_or(Dur::from_secs(1))
        };
        let window = est
            .mul_f64(sup.hang_multiplier.max(1.0))
            .max(sup.hang_floor)
            .min(sup.hang_ceiling);
        s.last_progress.saturating_add(window)
    }

    /// Current restart-latency estimate.
    pub fn alpha_estimate(&self) -> Option<Dur> {
        self.alpha_sim.estimate()
    }

    /// Current inter-production estimate.
    pub fn tau_estimate(&self) -> Option<Dur> {
        self.tau_sim.estimate()
    }

    /// Estimated wait until `key` becomes available (the
    /// `SIMFS_Status` estimate of §III-C), `None` if nothing is
    /// producing it.
    pub fn estimate_wait(&self, key: u64) -> Option<Dur> {
        let sim_id = self.pending.get(&key)?;
        let sim = &self.sims[sim_id];
        let tau = self.tau_sim.estimate_or(Dur::from_secs(1));
        let remaining_steps = key.saturating_sub(sim.next_key) + 1;
        let production = tau.saturating_mul(remaining_steps);
        if sim.started {
            Some(production)
        } else {
            Some(self.alpha_sim.estimate_or(Dur::ZERO) + production)
        }
    }

    /// Registers an output step that already exists on disk (daemon
    /// startup over a populated storage area). Returns the keys evicted
    /// if the priming overflows the budget — the caller should delete
    /// those files.
    pub fn prime(&mut self, key: u64, size: u64) -> Vec<u64> {
        if !self.cfg.steps.valid_key(key) || self.cache.contains(key) {
            return Vec::new();
        }
        let cost = self.cfg.steps.miss_cost(key);
        self.cache.insert(key, size, cost)
    }

    /// Re-establishes one pin count recorded in the write-ahead log
    /// after a restart: pins `key` for `client` iff it is materialized
    /// (recovery re-primes the cache from the storage area first).
    /// Never launches — a pin on unmaterialized data cannot be proven
    /// still wanted; the client's re-assertion (or a fresh acquire)
    /// re-establishes intent. Returns whether the pin was restored and
    /// counts `pins_recovered` when it was.
    pub fn restore_pin(&mut self, client: ClientId, key: u64) -> bool {
        if !self.cfg.steps.valid_key(key) || !self.cache.peek(key) {
            return false;
        }
        self.cache.pin(key);
        *self.client_mut(client).pins.entry(key).or_insert(0) += 1;
        self.stats.pins_recovered += 1;
        true
    }

    /// Moves one pin count on `key` from `from` to `to` — the
    /// re-assertion transfer: a reconnecting client (new id `to`)
    /// claims a pin the WAL recovery restored under its prior id
    /// `from`. The cache pin count is untouched (the pin itself
    /// persists; only its owner changes). Returns whether `from`
    /// actually held a pin to transfer.
    pub fn transfer_pin(&mut self, from: ClientId, to: ClientId, key: u64) -> bool {
        let held = match self.clients.get_mut(&from) {
            Some(state) => match state.pins.get_mut(&key) {
                Some(n) if *n > 1 => {
                    *n -= 1;
                    true
                }
                Some(_) => {
                    state.pins.remove(&key);
                    true
                }
                None => false,
            },
            None => false,
        };
        if held {
            *self.client_mut(to).pins.entry(key).or_insert(0) += 1;
        }
        held
    }

    fn prefetch_inputs(&self) -> PrefetchInputs {
        PrefetchInputs {
            alpha: self.alpha_sim.estimate_or(Dur::ZERO),
            tau_sim: self.tau_sim.estimate_or(Dur::from_secs(1)),
            steps: self.cfg.steps,
            smax: self.cfg.smax,
            ramp: self.cfg.prefetch_ramp,
        }
    }

    fn client_mut(&mut self, id: ClientId) -> &mut ClientState {
        let ema = self.cfg.ema_alpha;
        self.clients.entry(id).or_insert_with(|| ClientState {
            agent: PrefetchAgent::new(ema),
            pins: u64_map(),
            last_ready: None,
            last_digest_epoch: None,
            discard_digest_window: false,
        })
    }

    /// Enqueues (or directly emits) a launch covering `keys`, skipping
    /// keys already cached or pending. Splits at covered keys so only
    /// genuinely missing spans are produced? No — re-simulations produce
    /// whole contiguous ranges (the simulator cannot skip timesteps), so
    /// the range is launched as soon as at least one key is uncovered.
    fn request_launch(
        &mut self,
        keys: RangeInclusive<u64>,
        level: u32,
        reason: LaunchReason,
        client: Option<ClientId>,
        actions: &mut Vec<DvAction>,
        now: SimTime,
    ) {
        let uncovered = (*keys.start()..=*keys.end())
            .any(|k| !self.cache.peek(k) && !self.pending.contains_key(&k));
        if !uncovered {
            return;
        }
        // Poison gate: speculative launches must not touch a
        // quarantined interval (a prefetch retrying a poisoned range
        // would be exactly the retry storm the quarantine breaks).
        // Demand launches cannot get here — `on_acquire`
        // short-circuits them first.
        if reason == LaunchReason::Prefetch
            && (*keys.start()..=*keys.end()).any(|k| self.quarantined(k, now))
        {
            return;
        }
        self.launch_queue.push_back(QueuedLaunch {
            keys,
            level,
            reason,
            client,
            not_before: SimTime::ZERO,
        });
        self.drain_launch_queue(actions, now);
    }

    /// Is `key`'s interval inside a live quarantine window?
    fn quarantined(&self, key: u64, now: SimTime) -> bool {
        self.retry
            .get(&self.cfg.steps.interval_of(key))
            .and_then(|r| r.quarantined_until)
            .is_some_and(|until| now < until)
    }

    /// Does a queued *demand* launch cover `key`? Miss entries are
    /// never purged (only prefetches are, on direction changes), so
    /// they count as coverage: a fresh miss on a key whose retry is
    /// parked in backoff must add a waiter, not a duplicate launch.
    fn queued_miss_covers(&self, key: u64) -> bool {
        self.launch_queue
            .iter()
            .any(|q| q.reason == LaunchReason::Miss && q.keys.contains(&key))
    }

    fn drain_launch_queue(&mut self, actions: &mut Vec<DvAction>, now: SimTime) {
        // Entries inspected and re-parked this pass (backoff deadline
        // still in the future): bounds the rotation.
        let mut parked = 0usize;
        while self.sims.len() < self.cfg.smax as usize && parked < self.launch_queue.len() {
            let Some(q) = self.launch_queue.pop_front() else {
                break;
            };
            if q.not_before > now {
                self.launch_queue.push_back(q);
                parked += 1;
                continue;
            }
            // Re-check coverage: productions may have landed meanwhile.
            let uncovered = (*q.keys.start()..=*q.keys.end())
                .any(|k| !self.cache.peek(k) && !self.pending.contains_key(&k));
            if !uncovered {
                continue;
            }
            let sim = self.next_sim;
            self.next_sim += self.sim_stride;
            // Claim the range as this sim's pending production (cached
            // keys included — the simulator re-produces its whole range
            // and refreshes their files). First producer wins;
            // overlapping ranges refresh files but only one sim is "the"
            // pending producer. Count claimed keys with live waiters for
            // the O(1) kill check.
            let mut waited_keys = 0u32;
            for k in *q.keys.start()..=*q.keys.end() {
                let std::collections::hash_map::Entry::Vacant(e) = self.pending.entry(k)
                else {
                    continue;
                };
                e.insert(sim);
                if self.waiting.get(&k).is_some_and(|w| !w.is_empty()) {
                    waited_keys += 1;
                }
            }
            let n_keys = q.keys.end() - q.keys.start() + 1;
            self.stats.restarts += 1;
            self.stats.scheduled_steps += n_keys;
            if q.reason == LaunchReason::Prefetch {
                self.stats.prefetch_launches += 1;
                if let Some(c) = q.client {
                    self.prefetches_by_client.entry(c).or_default().push(sim);
                }
            }
            self.sims.insert(
                sim,
                SimState {
                    keys: q.keys.clone(),
                    next_key: *q.keys.start(),
                    reason: q.reason,
                    client: q.client,
                    launched_at: now,
                    started: false,
                    production: IntervalTracker::new(self.cfg.ema_alpha),
                    waited_keys,
                    last_progress: now,
                },
            );
            actions.push(DvAction::Launch {
                sim,
                keys: q.keys,
                level: q.level,
                reason: q.reason,
            });
        }
    }

    /// Registers `client` as blocked on `key`, keeping the per-sim
    /// waited-key counter in sync.
    fn add_waiter(&mut self, key: u64, client: ClientId) {
        let list = self.waiting.entry(key).or_default();
        let was_empty = list.is_empty();
        list.push(client);
        if was_empty {
            if let Some(&sim) = self.pending.get(&key) {
                if let Some(s) = self.sims.get_mut(&sim) {
                    s.waited_keys += 1;
                }
            }
        }
    }

    /// Removes and returns `key`'s waiter list, keeping the per-sim
    /// waited-key counter in sync. Call *before* removing the key's
    /// `pending` entry so the producing sim is still resolvable.
    fn take_waiters(&mut self, key: u64) -> Vec<ClientId> {
        let waiters = self.waiting.remove(&key).unwrap_or_default();
        if !waiters.is_empty() {
            if let Some(&sim) = self.pending.get(&key) {
                if let Some(s) = self.sims.get_mut(&sim) {
                    s.waited_keys = s.waited_keys.saturating_sub(1);
                }
            }
        }
        waiters
    }

    /// Kills the prefetch simulations launched for `client` that no one
    /// is waiting on (§IV-C: "a simulation can be killed only if there
    /// are no other analyses waiting for the files that are going to be
    /// produced by it"). The per-client index plus the per-sim
    /// waited-key counters make this O(victims), not O(sims × keys).
    ///
    /// Deliberate narrowing vs. a full range scan: `waited_keys` counts
    /// only keys this sim is *the* registered pending producer of. When
    /// production ranges overlap, a sim whose claim on a waited key
    /// lost to another producer is killable even though it would also
    /// have produced that key. The waiter stays safe — its registered
    /// producer cannot be killed, and its failure notifies the waiter —
    /// but the redundant overlap sim no longer doubles as a fallback.
    fn kill_client_prefetches(
        &mut self,
        client: ClientId,
        actions: &mut Vec<DvAction>,
        now: SimTime,
    ) {
        let mut victims = std::mem::take(&mut self.kill_scratch);
        victims.clear();
        if let Some(sims) = self.prefetches_by_client.get(&client) {
            for &sim in sims {
                if self.sims.get(&sim).is_some_and(|s| s.waited_keys == 0) {
                    victims.push(sim);
                }
            }
        }
        for &sim in &victims {
            self.remove_sim(sim);
            self.stats.kills += 1;
            actions.push(DvAction::Kill { sim });
        }
        victims.clear();
        self.kill_scratch = victims;
        // Drop queued prefetches for this client as well.
        self.launch_queue.retain(|q| {
            !(q.reason == LaunchReason::Prefetch && q.client == Some(client))
        });
        // The kills freed s_max slots: deferred launches (e.g. the miss
        // that accompanied this very direction change) must start now —
        // no SimFinished will ever arrive from the killed sims to drain
        // the queue otherwise.
        self.drain_launch_queue(actions, now);
    }

    /// A production attempt failed (crash, watchdog kill, corrupt
    /// output): the supervision tier decides between retry, drop, and
    /// poison. See the module doc's state machine.
    fn fail_sim(&mut self, sim: SimId, cause: FailCode, now: SimTime, actions: &mut Vec<DvAction>) {
        let Some(state) = self.sims.remove(&sim) else {
            return;
        };
        self.stats.failures += 1;
        self.unindex_prefetch(&state, sim);
        // Release the sim's pending claims; remember whether any
        // released key has live waiters (a prefetch someone caught up
        // with is demand work now).
        let mut waited = false;
        for k in *state.keys.start()..=*state.keys.end() {
            if self.pending.get(&k) == Some(&sim) {
                self.pending.remove(&k);
                if self.waiting.get(&k).is_some_and(|w| !w.is_empty()) {
                    waited = true;
                }
            }
        }
        let demand = state.reason == LaunchReason::Miss || waited;
        if !demand {
            // Speculative failure: drop. The slot it frees may unblock
            // queued work.
            self.drain_launch_queue(actions, now);
            return;
        }
        let interval = self.cfg.steps.interval_of(*state.keys.start());
        let sup = self.cfg.supervisor;
        let entry = self.retry.entry(interval).or_insert(RetryState {
            attempts: 0,
            last_cause: cause,
            quarantined_until: None,
        });
        entry.attempts += 1;
        entry.last_cause = cause;
        let attempts = entry.attempts;
        if attempts < sup.attempt_budget {
            // Retry: park the range on the queue behind a backoff
            // deadline. Waiters stay registered — the retried launch
            // re-claims their keys when it drains.
            self.stats.sim_retries += 1;
            let delay = backoff_delay(&sup, interval, attempts);
            self.launch_queue.push_back(QueuedLaunch {
                keys: state.keys.clone(),
                level: 0,
                reason: LaunchReason::Miss,
                client: state.client,
                not_before: now.saturating_add(delay),
            });
            self.drain_launch_queue(actions, now);
            return;
        }
        // Budget exhausted: poison the interval. Waiters on its keys
        // get a typed failure coloured by the terminal cause; the
        // quarantine short-circuits everything after them.
        entry.quarantined_until = Some(now.saturating_add(sup.quarantine));
        self.stats.intervals_poisoned += 1;
        let verdict = match cause {
            FailCode::HangKilled => FailCode::HangKilled,
            FailCode::CorruptOutput => FailCode::CorruptOutput,
            _ => FailCode::Poisoned,
        };
        let reason = format!(
            "interval {interval} poisoned: {} production attempts failed (last: {})",
            attempts,
            cause.as_str()
        );
        let keys = self.cfg.steps.interval_keys(interval);
        for k in *keys.start()..=*keys.end() {
            // A key another live sim still claims keeps its waiters —
            // that producer may yet deliver.
            if self.pending.contains_key(&k) {
                continue;
            }
            for c in self.take_waiters(k) {
                actions.push(DvAction::NotifyFailed {
                    client: c,
                    key: k,
                    code: verdict,
                    reason: reason.clone(),
                });
            }
        }
        // Purge parked retries of the poisoned interval (there can be
        // stale ones when overlapping ranges failed at different
        // times); prefetches into it are refused at request time.
        let steps = self.cfg.steps;
        self.launch_queue.retain(|q| {
            !(q.reason == LaunchReason::Miss && steps.interval_of(*q.keys.start()) == interval)
        });
        self.drain_launch_queue(actions, now);
    }

    /// Removes a sim: its `sims` entry, its pending productions (walking
    /// only its own key range — `pending` is the key→sim index) and its
    /// slot in the per-client prefetch index. Waiter notification is the
    /// caller's job.
    fn remove_sim(&mut self, sim: SimId) -> Option<SimState> {
        let state = self.sims.remove(&sim)?;
        for k in *state.keys.start()..=*state.keys.end() {
            if self.pending.get(&k) == Some(&sim) {
                self.pending.remove(&k);
            }
        }
        self.unindex_prefetch(&state, sim);
        Some(state)
    }

    /// Applies a prefetch plan coming out of an agent.
    fn apply_agent_outcome(
        &mut self,
        client: ClientId,
        outcome: crate::prefetch::AgentOutcome,
        actions: &mut Vec<DvAction>,
        now: SimTime,
    ) {
        self.apply_agent_outcome_owned(client, outcome, &|_| true, actions, now)
    }

    /// [`apply_agent_outcome`](Self::apply_agent_outcome) restricted to
    /// the keys this DV owns: plan blocks are split at ownership
    /// boundaries (interval-granular, like all routing) and only the
    /// owned runs launch here — the sibling shards, replaying the same
    /// digest, launch theirs. Direction-change kills always apply: each
    /// shard kills its own prefetch sims for the client.
    fn apply_agent_outcome_owned(
        &mut self,
        client: ClientId,
        outcome: crate::prefetch::AgentOutcome,
        owns_key: &dyn Fn(u64) -> bool,
        actions: &mut Vec<DvAction>,
        now: SimTime,
    ) {
        if outcome.direction_changed {
            self.kill_client_prefetches(client, actions, now);
        }
        let Some(plan) = outcome.plan else { return };
        let level = plan.level.min(self.cfg.parallelism.max_level);
        for block in plan.blocks {
            for run in owned_runs(&self.cfg.steps, block, owns_key) {
                self.request_launch(
                    run,
                    level,
                    LaunchReason::Prefetch,
                    Some(client),
                    actions,
                    now,
                );
            }
        }
    }

    /// Handles one event; returns the actions the front-end must apply.
    ///
    /// Thin allocating wrapper over [`handle_into`](Self::handle_into) —
    /// hot front-ends (the daemon, the virtual harness, replay loops)
    /// should hold a scratch buffer and call `handle_into` to avoid one
    /// `Vec` allocation per event.
    pub fn handle(&mut self, now: SimTime, event: DvEvent) -> Vec<DvAction> {
        let mut actions = Vec::new();
        self.handle_into(now, event, &mut actions);
        actions
    }

    /// Handles one event, appending the actions the front-end must
    /// apply to `actions` (which is *not* cleared — callers owning the
    /// buffer clear it between transitions).
    pub fn handle_into(&mut self, now: SimTime, event: DvEvent, actions: &mut Vec<DvAction>) {
        // Legal with no locks held (harness use) or under exactly the
        // owning DV shard lock (daemon use) — never while an inner-tier
        // lock (WAL, ledger, hit-index) is held, since eviction inside
        // this call re-enters the hit-index tier.
        lockrank::assert_none_held_below(lockrank::DV_SHARD.level, "DataVirtualizer::handle_into");
        match event {
            DvEvent::Acquire { client, key } => {
                self.on_acquire(client, key, now, actions);
            }
            DvEvent::Release { client, key } => {
                let state = self.client_mut(client);
                match state.pins.get_mut(&key) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        self.cache.unpin(key);
                    }
                    Some(_) => {
                        state.pins.remove(&key);
                        self.cache.unpin(key);
                    }
                    None => {
                        // Release of something never pinned: protocol
                        // misuse; tolerated (client may release after a
                        // failed acquire).
                    }
                }
            }
            DvEvent::SimStarted { sim } => {
                if let Some(s) = self.sims.get_mut(&sim) {
                    s.last_progress = now;
                    if !s.started {
                        s.started = true;
                        let latency = now.saturating_since(s.launched_at);
                        self.alpha_sim.observe(latency);
                    }
                }
            }
            DvEvent::FileProduced { sim, key, size } => {
                self.on_file_produced(sim, key, size, now, actions);
            }
            DvEvent::SimFinished { sim } => {
                // A finished sim has normally produced (and so cleared
                // the `pending` entry of) every key it claimed. One
                // that finishes in violation of that contract is a
                // failed production attempt: the supervisor retries it
                // (waiters stay parked) or poisons the interval.
                let violated = self.sims.get(&sim).is_some_and(|s| {
                    (*s.keys.start()..=*s.keys.end())
                        .any(|k| self.pending.get(&k) == Some(&sim))
                });
                if violated {
                    self.fail_sim(sim, FailCode::Retriable, now, actions);
                } else {
                    self.remove_sim(sim);
                    self.drain_launch_queue(actions, now);
                }
            }
            DvEvent::SimFailed { sim } => {
                self.fail_sim(sim, FailCode::Retriable, now, actions);
            }
            DvEvent::OutputCorrupt { sim, key } => {
                self.stats.corrupt_outputs += 1;
                // The producer may still be alive, writing more junk:
                // kill it, then let the supervisor decide retry/poison.
                // An unknown sim (already reaped/killed; or a prefetch
                // spill into a foreign shard) has nothing to supervise
                // beyond the count — `key`'s claim, if any, belongs to
                // a sim this shard does know.
                if self.sims.contains_key(&sim) {
                    actions.push(DvAction::Kill { sim });
                    self.fail_sim(sim, FailCode::CorruptOutput, now, actions);
                } else {
                    let _ = key;
                }
            }
            DvEvent::ClientGone { client } => {
                if let Some(state) = self.clients.remove(&client) {
                    for (key, pins) in state.pins {
                        for _ in 0..pins {
                            self.cache.unpin(key);
                        }
                    }
                }
                // Strip the departed client from every waiter list,
                // releasing per-sim waited-key counts for lists that
                // empty out (no list in `waiting` is ever empty, so
                // emptying one is exactly one count to release).
                let DataVirtualizer {
                    waiting,
                    pending,
                    sims,
                    ..
                } = self;
                waiting.retain(|key, list| {
                    list.retain(|&c| c != client);
                    if !list.is_empty() {
                        return true;
                    }
                    if let Some(&sim) = pending.get(key) {
                        if let Some(s) = sims.get_mut(&sim) {
                            s.waited_keys = s.waited_keys.saturating_sub(1);
                        }
                    }
                    false
                });
                self.kill_client_prefetches(client, actions, now);
            }
        }
    }

    /// Drops `sim` from the per-client prefetch index (after its
    /// `SimState` was removed from `sims` by hand).
    fn unindex_prefetch(&mut self, state: &SimState, sim: SimId) {
        if state.reason != LaunchReason::Prefetch {
            return;
        }
        let Some(c) = state.client else { return };
        if let Some(list) = self.prefetches_by_client.get_mut(&c) {
            if let Some(pos) = list.iter().position(|&s| s == sim) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                self.prefetches_by_client.remove(&c);
            }
        }
    }

    fn on_acquire(
        &mut self,
        client: ClientId,
        key: u64,
        now: SimTime,
        actions: &mut Vec<DvAction>,
    ) {
        if !self.cfg.steps.valid_key(key) {
            actions.push(DvAction::NotifyFailed {
                client,
                key,
                code: FailCode::Other,
                reason: format!(
                    "key {key} outside the timeline 1..={}",
                    self.cfg.steps.n_outputs()
                ),
            });
            return;
        }

        let prefetch_enabled = self.cfg.prefetch;
        // Observation is decoupled in digest mode: acquires neither feed
        // the agents nor sample tau_cli here — the recorded stream
        // replays through `ingest_digest` instead.
        let observe_inline = prefetch_enabled && !self.digest_observation;
        let inputs = self.prefetch_inputs();

        // Sample the client's consumption time: from its last data
        // becoming ready to this request.
        let inline_tau_cli = !self.digest_observation;
        {
            let state = self.client_mut(client);
            if let Some(ready_at) = state.last_ready.take() {
                if inline_tau_cli {
                    state
                        .agent
                        .observe_tau_cli(now.saturating_since(ready_at));
                }
            }
        }

        if self.cache.access(key) {
            self.stats.hits += 1;
            self.cache.pin(key);
            let state = self.client_mut(client);
            *state.pins.entry(key).or_insert(0) += 1;
            state.last_ready = Some(now);
            actions.push(DvAction::NotifyReady { client, key });
            if observe_inline {
                let outcome = state.agent.on_access(key, &inputs);
                self.apply_agent_outcome(client, outcome, actions, now);
            }
            return;
        }

        self.stats.misses += 1;

        // Poison quarantine: a miss inside a quarantined interval gets
        // an immediate typed failure — no waiter, no launch, no retry
        // storm. (Hits above still serve: poison gates production, not
        // residency.) An expired quarantine clears here, resetting the
        // interval's attempt budget.
        let interval = self.cfg.steps.interval_of(key);
        if let Some(r) = self.retry.get(&interval) {
            if let Some(until) = r.quarantined_until {
                if now < until {
                    let attempts = r.attempts;
                    let verdict = match r.last_cause {
                        FailCode::HangKilled => FailCode::HangKilled,
                        FailCode::CorruptOutput => FailCode::CorruptOutput,
                        _ => FailCode::Poisoned,
                    };
                    actions.push(DvAction::NotifyFailed {
                        client,
                        key,
                        code: verdict,
                        reason: format!(
                            "interval {interval} quarantined: {attempts} production \
                             attempts failed (last: {})",
                            r.last_cause.as_str()
                        ),
                    });
                    return;
                }
                self.retry.remove(&interval);
            }
        }

        // Pollution detection (§IV-C): a miss on a step this client's
        // own agent prefetched *and nobody is producing* means it was
        // produced and evicted before use — reset every agent. A
        // prefetched step still in production is not pollution, just an
        // analysis that caught up with the simulation.
        let polluted = !self.pending.contains_key(&key)
            && self
                .clients
                .get(&client)
                .is_some_and(|c| c.agent.was_prefetched(key));
        if polluted {
            self.stats.pollution_resets += 1;
            self.pollution_signal = true;
            for c in self.clients.values_mut() {
                c.agent.reset();
                // Digest mode: the next replayed window predates this
                // reset — discard it, as the inline path implicitly
                // does by only ever observing post-reset accesses.
                c.discard_digest_window = self.digest_observation;
            }
        }

        self.add_waiter(key, client);

        // A queued Miss entry (an `s_max`-deferred launch or a parked
        // retry) counts as coverage: piggyback on it instead of
        // enqueueing a duplicate — and, for retries, instead of
        // bypassing the backoff.
        let covered = self.pending.contains_key(&key) || self.queued_miss_covers(key);
        if !covered {
            let range = self.cfg.steps.resim_range(key);
            let level = self
                .clients
                .get(&client)
                .map_or(0, |c| c.agent.level())
                .min(self.cfg.parallelism.max_level);
            // Inform the agent of the coverage this miss will create so
            // its trigger math sees the right frontier.
            if prefetch_enabled {
                let state = self.client_mut(client);
                if let Some(dir) = state.agent.direction() {
                    let frontier = match dir {
                        Direction::Forward => *range.end(),
                        Direction::Backward => *range.start(),
                    };
                    state.agent.note_planned(dir, frontier);
                } else {
                    state
                        .agent
                        .note_planned(Direction::Forward, *range.end());
                }
            }
            self.request_launch(range, level, LaunchReason::Miss, Some(client), actions, now);
        }

        if observe_inline && !polluted {
            let state = self.client_mut(client);
            let outcome = state.agent.on_access(key, &inputs);
            self.apply_agent_outcome(client, outcome, actions, now);
        }
    }

    fn on_file_produced(
        &mut self,
        sim: SimId,
        key: u64,
        size: u64,
        now: SimTime,
        actions: &mut Vec<DvAction>,
    ) {
        self.stats.produced_steps += 1;
        if let Some(s) = self.sims.get_mut(&sim) {
            s.last_progress = now;
            if !s.started {
                // Front-ends that do not report SimStarted separately:
                // the first production marks the start.
                s.started = true;
                self.alpha_sim.observe(now.saturating_since(s.launched_at));
            }
            s.production.mark(now);
            if let Some(tau) = s.production.estimate() {
                self.tau_sim.observe(tau);
            }
            s.next_key = key + 1;
        }
        // A successful production clears its interval's retry record:
        // fresh attempt budget, and an active quarantine lifts early
        // when a foreign producer (an overlapping prefetch block)
        // covers the poisoned range after all.
        self.retry.remove(&self.cfg.steps.interval_of(key));
        // Take the waiters while `pending[key]` still names its producer
        // (the waited-key counters resolve through it), then clear the
        // pending entry.
        let waiters = self.take_waiters(key);
        if self.pending.get(&key) == Some(&sim) {
            self.pending.remove(&key);
        }

        if !self.cache.contains(key) {
            let cost = self.cfg.steps.miss_cost(key);
            let evicted = self
                .cache
                .insert_pinned(key, size, cost, waiters.len() as u32);
            for e in evicted {
                // The fresh step itself may be the victim when every
                // other resident step is pinned and nobody waits on it
                // (a speculative interval step under extreme pin
                // pressure): produced, written, immediately dropped.
                // With waiters it enters pinned and cannot be chosen.
                debug_assert!(e != key || waiters.is_empty());
                self.stats.evictions += 1;
                let dropped = self.take_waiters(e);
                debug_assert!(dropped.is_empty(), "evicted a waited-on step");
                actions.push(DvAction::Evict { key: e });
            }
        } else {
            // Refresh of an already-materialized step (overlapping
            // production): pin for the new waiters.
            for _ in &waiters {
                self.cache.pin(key);
            }
        }
        for c in &waiters {
            let state = self.client_mut(*c);
            *state.pins.entry(key).or_insert(0) += 1;
            state.last_ready = Some(now);
            actions.push(DvAction::NotifyReady { client: *c, key });
        }
    }
}

/// Backoff before retry attempt `attempt` (1-based) of `interval`:
/// `base · 2^(attempt-1)` capped, with deterministic ±25 % jitter from
/// an FNV-1a hash of `(interval, attempt)` — deterministic so virtual
/// replays are bit-reproducible, spread so a cluster-wide outage does
/// not re-launch every interval on the same tick.
fn backoff_delay(sup: &crate::model::SupervisorCfg, interval: u64, attempt: u32) -> Dur {
    let base = sup.backoff_base.as_nanos().max(1);
    let exp = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(32));
    let capped = exp.min(sup.backoff_cap.as_nanos().max(1));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in interval.to_le_bytes().into_iter().chain(attempt.to_le_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let span = capped / 4;
    let jitter = if span == 0 { 0 } else { h % (2 * span + 1) };
    Dur::from_nanos(capped - span + jitter)
}

/// Splits `block` into its maximal sub-ranges of owned keys. Ownership
/// is interval-granular everywhere in SimFS (shards and cluster members
/// both route whole restart intervals), so the walk advances one
/// interval at a time and merges consecutive owned intervals back into
/// one run — under full ownership the block comes back whole, and a
/// launch can never claim a key its DV does not own.
fn owned_runs(
    steps: &StepMath,
    block: RangeInclusive<u64>,
    owns_key: &dyn Fn(u64) -> bool,
) -> Vec<RangeInclusive<u64>> {
    let (lo, hi) = (*block.start(), *block.end());
    let mut runs = Vec::new();
    let mut current: Option<(u64, u64)> = None;
    let last = steps.interval_of(hi);
    let mut j = steps.interval_of(lo);
    loop {
        let keys = steps.interval_keys(j);
        let start = lo.max(*keys.start());
        let end = hi.min(*keys.end());
        if start <= end {
            if owns_key(start) {
                current = match current {
                    Some((run_start, run_end)) if run_end + 1 == start => {
                        Some((run_start, end))
                    }
                    Some((run_start, run_end)) => {
                        runs.push(run_start..=run_end);
                        Some((start, end))
                    }
                    None => Some((start, end)),
                };
            } else if let Some((run_start, run_end)) = current.take() {
                runs.push(run_start..=run_end);
            }
        }
        if j == last {
            break;
        }
        j += 1;
    }
    if let Some((run_start, run_end)) = current {
        runs.push(run_start..=run_end);
    }
    runs
}

/// Where the sharded DV must deliver an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventRoute {
    /// Exactly one shard owns the event.
    Shard(usize),
    /// Every shard must see the event (client teardown).
    Broadcast,
}

/// Key-range router for the sharded DV.
///
/// The granularity is the *restart interval*, not the raw key: a
/// re-simulation always produces a contiguous interval
/// ([`StepMath::resim_range`]), so interval-granular routing keeps each
/// launch — its pending claims, its waiters, its productions — inside
/// one shard. Raw `key % N` would scatter every launch across all
/// shards and reintroduce cross-shard coordination on the miss path.
///
/// Sim ids are partitioned by [`DataVirtualizer::with_sim_ids`]: shard
/// `s` of `n` allocates `s + 1, s + 1 + n, ...`, so the owner of sim
/// lifecycle events is recovered arithmetically with no shared map.
///
/// Inside a daemon cluster ([`DvRouter::for_member`]) the member's
/// local shards split only the intervals the member owns — those
/// `≡ member.index (mod member.size)` — so the local hash first
/// divides the cluster dimension out: interval `j` routes to local
/// shard `(j / size) % n`, and sim ids (allocated as
/// `s*size + index + 1` step `size*n`) recover locally as
/// `((sim - 1 - index) / size) % n`. Hashing the raw interval (or raw
/// sim residue) instead would leave the local shards whose indices
/// never intersect the member's residue class unreachable — stranding
/// their budget slices. With [`ClusterMember::SOLO`] both rules reduce
/// to the plain `% n` above.
#[derive(Clone, Copy, Debug)]
pub struct DvRouter {
    steps: StepMath,
    shards: u32,
    member: ClusterMember,
}

impl DvRouter {
    /// Creates a router over `shards` shards (clamped to ≥ 1).
    pub fn new(steps: StepMath, shards: u32) -> DvRouter {
        Self::for_member(steps, shards, ClusterMember::SOLO)
    }

    /// A cluster member's local router: `shards` shards over the
    /// intervals `member` owns.
    ///
    /// # Panics
    /// Panics unless `member.index < member.size` (hand-built
    /// `ClusterMember` literals can bypass [`ClusterMember::new`]'s
    /// check; an invalid member here would divide by zero or silently
    /// misroute every key).
    pub fn for_member(steps: StepMath, shards: u32, member: ClusterMember) -> DvRouter {
        assert!(
            member.index < member.size,
            "cluster index {} out of range 0..{}",
            member.index,
            member.size
        );
        DvRouter {
            steps,
            shards: shards.max(1),
            member,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard owning `key`'s restart interval. Invalid keys route to
    /// shard 0, which rejects them with the usual `NotifyFailed`.
    /// Intervals of *other* cluster members (which the daemon rejects
    /// before routing an acquire, and absorbs like unknown-sim traffic
    /// elsewhere) resolve to an arbitrary-but-deterministic shard.
    pub fn shard_of_key(&self, key: u64) -> usize {
        if !self.steps.valid_key(key) {
            return 0;
        }
        let interval = self.steps.interval_of(key);
        let local = interval.wrapping_sub(self.member.index as u64) / self.member.size as u64;
        (local % self.shards as u64) as usize
    }

    /// The shard that launched `sim` (id-space partition). Unknown /
    /// rogue ids resolve to *some* shard, which ignores them exactly as
    /// the unsharded DV ignores unknown sims.
    pub fn shard_of_sim(&self, sim: SimId) -> usize {
        let local = sim
            .wrapping_sub(1)
            .wrapping_sub(self.member.index as u64)
            / self.member.size as u64;
        (local % self.shards as u64) as usize
    }

    /// Routes one event.
    pub fn route(&self, event: &DvEvent) -> EventRoute {
        match event {
            DvEvent::Acquire { key, .. } | DvEvent::Release { key, .. } => {
                EventRoute::Shard(self.shard_of_key(*key))
            }
            // Productions route by *key*: the waiters to notify and the
            // cache to insert into live in the key's shard. For every
            // miss launch (and any interval-sized prefetch block) this
            // is also the sim's owner; a multi-interval prefetch block
            // spills productions into neighbour shards, where they are
            // absorbed exactly like the unsharded DV absorbs
            // productions from unknown sims.
            DvEvent::FileProduced { key, .. } | DvEvent::OutputCorrupt { key, .. } => {
                EventRoute::Shard(self.shard_of_key(*key))
            }
            DvEvent::SimStarted { sim }
            | DvEvent::SimFinished { sim }
            | DvEvent::SimFailed { sim } => EventRoute::Shard(self.shard_of_sim(*sim)),
            DvEvent::ClientGone { .. } => EventRoute::Broadcast,
        }
    }
}

/// The per-shard context slice: capacity is partitioned evenly and
/// `s_max` divided (floored at one running sim per shard).
pub fn shard_cfg(cfg: &ContextCfg, n: u32) -> ContextCfg {
    let n = n.max(1);
    let mut cfg = cfg.clone();
    cfg.cache_capacity /= n as u64;
    cfg.smax = (cfg.smax / n).max(1);
    cfg
}

/// Position of one daemon in a multi-daemon cluster: the daemon-level
/// analogue of a shard index. Member `index` of `size` owns the restart
/// intervals with `interval % size == index` (the same
/// interval-granularity rule [`DvRouter`] applies intra-process), runs
/// on the `1/size` context slice of [`shard_cfg`], and allocates sim
/// ids from its own residue class of the cluster-wide stride so every
/// daemon recovers sim owners arithmetically with no shared state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterMember {
    /// This daemon's index (`0..size`).
    pub index: u32,
    /// Total daemons in the cluster.
    pub size: u32,
}

impl ClusterMember {
    /// The unclustered singleton: member 0 of 1.
    pub const SOLO: ClusterMember = ClusterMember { index: 0, size: 1 };

    /// Member `index` of a `size`-daemon cluster.
    ///
    /// # Panics
    /// Panics unless `index < size` (which also forces `size >= 1`).
    pub fn new(index: u32, size: u32) -> ClusterMember {
        assert!(index < size, "cluster index {index} out of range 0..{size}");
        ClusterMember { index, size }
    }

    /// True for real clusters (`size > 1`).
    pub fn is_clustered(&self) -> bool {
        self.size > 1
    }

    /// Does this member own `key`'s restart interval? Invalid keys
    /// belong to member 0, which rejects them with the timeline error —
    /// exactly as [`DvRouter::shard_of_key`] assigns them to shard 0.
    pub fn owns_key(&self, steps: &StepMath, key: u64) -> bool {
        DvRouter::new(*steps, self.size).shard_of_key(key) == self.index as usize
    }
}

impl Default for ClusterMember {
    fn default() -> ClusterMember {
        ClusterMember::SOLO
    }
}

/// N independent [`DataVirtualizer`]s behind a [`DvRouter`]: the
/// single-threaded composition the daemon's per-shard locking mirrors,
/// and the reference object of the sharding equivalence tests. Each
/// shard owns a disjoint set of restart intervals, a `1/N` slice of the
/// cache budget and `s_max`, and its own waiter/prefetch state;
/// `ClientGone` fans out to every shard in index order.
pub struct ShardedDv {
    shards: Vec<DataVirtualizer>,
    router: DvRouter,
}

impl ShardedDv {
    /// Creates `n` shards over `cfg` (see [`shard_cfg`]).
    ///
    /// # Panics
    /// Panics if the context names an unknown replacement policy.
    pub fn new(cfg: ContextCfg, n: u32) -> ShardedDv {
        Self::cluster_member(cfg, n, ClusterMember::SOLO)
    }

    /// The shard composition of one daemon in a multi-daemon cluster:
    /// `n` intra-process shards over `member`'s slice of `cfg`.
    ///
    /// This is [`new`](Self::new) generalized one level up. The member
    /// first takes the `1/size` context slice ([`shard_cfg`] — the same
    /// budget/`s_max` split the intra-process shards use), then splits
    /// it `n` ways with a [`DvRouter::for_member`] local router. Sim
    /// ids stride over the *whole cluster*: local shard `s` allocates
    /// `s*size + member.index + 1` step `size*n`, so no two daemons
    /// can ever collide on a sim id and both the local shard and the
    /// owning daemon recover arithmetically from any id.
    ///
    /// The choice of id interleaving and local routing makes a
    /// `size`-member cluster with `n` local shards each *exactly* the
    /// flat `size*n`-shard [`ShardedDv::new`] composition, partitioned
    /// by process: member `k`'s local shard `s` is flat shard
    /// `s*size + k` — same config slice, same sim ids, same interval
    /// ownership. With [`ClusterMember::SOLO`] this is byte-for-byte
    /// what `new` produces, so the sharding equivalence property tests
    /// pin the clustered construction too.
    ///
    /// # Panics
    /// Panics if the context names an unknown replacement policy or if
    /// `member.index >= member.size`.
    pub fn cluster_member(cfg: ContextCfg, n: u32, member: ClusterMember) -> ShardedDv {
        let n = n.max(1);
        let router = DvRouter::for_member(cfg.steps, n, member);
        let member_cfg = shard_cfg(&cfg, member.size);
        let per_shard = shard_cfg(&member_cfg, n);
        let global_stride = member.size as SimId * n as SimId;
        let first_of = |s: u32| s as SimId * member.size as SimId + member.index as SimId + 1;
        let shards = (0..n)
            .map(|s| {
                DataVirtualizer::new(per_shard.clone())
                    .with_sim_ids(first_of(s), global_stride)
            })
            .collect();
        ShardedDv { shards, router }
    }

    /// The router (for front-ends that lock shards independently).
    pub fn router(&self) -> DvRouter {
        self.router
    }

    /// Decomposes into the shard DVs and their router, in shard order —
    /// for front-ends that wrap each shard in its own lock. Building
    /// daemon shards through here (rather than re-deriving the per-shard
    /// config slice and sim-id striding by hand) keeps them on exactly
    /// the composition the sharding equivalence tests pin.
    pub fn into_parts(self) -> (Vec<DataVirtualizer>, DvRouter) {
        (self.shards, self.router)
    }

    /// Borrow one shard.
    pub fn shard(&self, i: usize) -> &DataVirtualizer {
        &self.shards[i]
    }

    /// Handles one event, appending resulting actions to `actions`.
    pub fn handle_into(&mut self, now: SimTime, event: DvEvent, actions: &mut Vec<DvAction>) {
        match self.router.route(&event) {
            EventRoute::Shard(s) => self.shards[s].handle_into(now, event, actions),
            EventRoute::Broadcast => {
                for shard in &mut self.shards {
                    shard.handle_into(now, event.clone(), actions);
                }
            }
        }
    }

    /// Allocating wrapper over [`handle_into`](Self::handle_into).
    pub fn handle(&mut self, now: SimTime, event: DvEvent) -> Vec<DvAction> {
        let mut actions = Vec::new();
        self.handle_into(now, event, &mut actions);
        actions
    }

    /// Switches every shard to digest-mode agent observation (see
    /// [`DataVirtualizer::set_digest_observation`]).
    pub fn set_digest_observation(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.set_digest_observation(on);
        }
    }

    /// Replays a drained access digest into *every* shard's agents —
    /// sharding is exactly why the digest exists: each shard's agents
    /// must observe the full stream even though the shard serves only
    /// its own intervals. Planning stays partitioned: shard `s` launches
    /// only the plan runs whose intervals it owns, so the shards'
    /// launches compose to the unsharded plan without overlap.
    pub fn ingest_digest(
        &mut self,
        now: SimTime,
        records: &[AccessRecord],
        window_dropped: u64,
        actions: &mut Vec<DvAction>,
    ) {
        let router = self.router;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            shard.ingest_digest(
                now,
                records,
                window_dropped,
                &|key| router.shard_of_key(key) == s,
                actions,
            );
        }
    }

    /// Is `key` materialized (in its owning shard)?
    pub fn is_cached(&self, key: u64) -> bool {
        self.shards[self.router.shard_of_key(key)].is_cached(key)
    }

    /// Active sims across all shards.
    pub fn active_sims(&self) -> usize {
        self.shards.iter().map(DataVirtualizer::active_sims).sum()
    }

    /// Queued launches across all shards.
    pub fn queued_launches(&self) -> usize {
        self.shards.iter().map(DataVirtualizer::queued_launches).sum()
    }

    /// Pending-producer claims across all shards (leak probe).
    pub fn pending_keys(&self) -> usize {
        self.shards.iter().map(DataVirtualizer::pending_keys).sum()
    }

    /// Non-empty waiter lists across all shards (leak probe).
    pub fn waiting_keys(&self) -> usize {
        self.shards.iter().map(DataVirtualizer::waiting_keys).sum()
    }

    /// Quarantined intervals across all shards.
    pub fn quarantined_intervals(&self, now: SimTime) -> usize {
        self.shards
            .iter()
            .map(|s| s.quarantined_intervals(now))
            .sum()
    }

    /// Runs every shard's supervision timers (see
    /// [`DataVirtualizer::tick`]).
    pub fn tick(&mut self, now: SimTime, actions: &mut Vec<DvAction>) {
        for shard in &mut self.shards {
            shard.tick(now, actions);
        }
    }

    /// Earliest supervision deadline across the shards (see
    /// [`DataVirtualizer::next_due`]).
    pub fn next_due(&self, now: SimTime) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.next_due(now)).min()
    }

    /// Lifetime statistics summed over the shards.
    pub fn stats(&self) -> DvStats {
        let mut total = DvStats::default();
        for shard in &self.shards {
            total.accumulate(shard.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StepMath;

    fn cfg(cache_steps: u64) -> ContextCfg {
        // B = 4 outputs per restart interval, N = 40.
        let steps = StepMath::new(1, 4, 40);
        ContextCfg::new("test", steps, 100, cache_steps * 100)
            .with_policy("lru")
            .with_smax(4)
            .with_prefetch(false)
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Drives production of everything a Launch action covers,
    /// immediately.
    fn produce_all(dv: &mut DataVirtualizer, actions: &[DvAction], now: SimTime) -> Vec<DvAction> {
        let mut out = Vec::new();
        for a in actions {
            if let DvAction::Launch { sim, keys, .. } = a {
                out.extend(dv.handle(now, DvEvent::SimStarted { sim: *sim }));
                for k in keys.clone() {
                    out.extend(dv.handle(
                        now,
                        DvEvent::FileProduced {
                            sim: *sim,
                            key: k,
                            size: 100,
                        },
                    ));
                }
                out.extend(dv.handle(now, DvEvent::SimFinished { sim: *sim }));
            }
        }
        out
    }

    #[test]
    fn miss_launches_enclosing_interval() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let actions = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let launch = actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { keys, reason, .. } => Some((keys.clone(), *reason)),
                _ => None,
            })
            .expect("miss must launch");
        assert_eq!(launch.0, 5..=8, "interval containing key 6");
        assert_eq!(launch.1, LaunchReason::Miss);
        assert_eq!(dv.stats().misses, 1);
    }

    #[test]
    fn production_notifies_waiter_and_hits_after() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let a1 = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let notifications = produce_all(&mut dv, &a1, t(5));
        assert!(notifications
            .iter()
            .any(|a| matches!(a, DvAction::NotifyReady { client: 1, key: 6 })));
        // Release, then re-acquire: now a hit.
        dv.handle(t(6), DvEvent::Release { client: 1, key: 6 });
        let a2 = dv.handle(t(7), DvEvent::Acquire { client: 1, key: 6 });
        assert!(a2
            .iter()
            .any(|a| matches!(a, DvAction::NotifyReady { client: 1, key: 6 })));
        assert!(!a2.iter().any(|a| matches!(a, DvAction::Launch { .. })));
        assert_eq!(dv.stats().hits, 1);
    }

    #[test]
    fn duplicate_miss_does_not_double_launch() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let a1 = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let a2 = dv.handle(t(1), DvEvent::Acquire { client: 2, key: 7 });
        let launches_1 = a1.iter().filter(|a| matches!(a, DvAction::Launch { .. })).count();
        let launches_2 = a2.iter().filter(|a| matches!(a, DvAction::Launch { .. })).count();
        assert_eq!(launches_1, 1);
        assert_eq!(launches_2, 0, "key 7 covered by the running sim");
        // Both clients notified when their keys arrive.
        let notifs = produce_all(&mut dv, &a1, t(2));
        assert!(notifs
            .iter()
            .any(|a| matches!(a, DvAction::NotifyReady { client: 1, key: 6 })));
        assert!(notifs
            .iter()
            .any(|a| matches!(a, DvAction::NotifyReady { client: 2, key: 7 })));
    }

    #[test]
    fn invalid_key_fails_immediately() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let actions = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 0 });
        assert!(matches!(actions[0], DvAction::NotifyFailed { key: 0, .. }));
        let actions = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 41 });
        assert!(matches!(actions[0], DvAction::NotifyFailed { key: 41, .. }));
    }

    #[test]
    fn boundary_key_simulates_only_itself() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let actions = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 8 });
        let keys = actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { keys, .. } => Some(keys.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(keys, 8..=8, "restart dump only");
    }

    #[test]
    fn smax_defers_launches() {
        let mut dv = DataVirtualizer::new(cfg(100).with_smax(1));
        let a1 = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        let a2 = dv.handle(t(1), DvEvent::Acquire { client: 2, key: 10 });
        assert_eq!(
            a1.iter().filter(|a| matches!(a, DvAction::Launch { .. })).count(),
            1
        );
        assert_eq!(
            a2.iter().filter(|a| matches!(a, DvAction::Launch { .. })).count(),
            0,
            "second launch deferred by smax=1"
        );
        assert_eq!(dv.queued_launches(), 1);
        // Finishing the first sim releases the slot.
        let notifs = produce_all(&mut dv, &a1, t(2));
        let launched_after: Vec<_> = notifs
            .iter()
            .filter(|a| matches!(a, DvAction::Launch { .. }))
            .collect();
        assert_eq!(launched_after.len(), 1, "queued launch drained");
    }

    #[test]
    fn pinned_steps_survive_cache_pressure() {
        // Cache of 4 steps; client holds a pin on key 2.
        let mut dv = DataVirtualizer::new(cfg(4));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        produce_all(&mut dv, &a, t(1)); // produces 1..=4, pin on 2
        assert!(dv.is_cached(2));
        // Flood the cache with another interval.
        let b = dv.handle(t(2), DvEvent::Acquire { client: 2, key: 6 });
        produce_all(&mut dv, &b, t(3));
        assert!(dv.is_cached(2), "pinned key must not be evicted");
        // Unpin, flood again, now it can go.
        dv.handle(t(4), DvEvent::Release { client: 1, key: 2 });
        let c = dv.handle(t(5), DvEvent::Acquire { client: 2, key: 10 });
        produce_all(&mut dv, &c, t(6));
        assert!(!dv.is_cached(2), "unpinned key evictable under pressure");
    }

    #[test]
    fn eviction_actions_emitted() {
        let mut dv = DataVirtualizer::new(cfg(4));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        produce_all(&mut dv, &a, t(1));
        dv.handle(t(2), DvEvent::Release { client: 1, key: 2 });
        let b = dv.handle(t(3), DvEvent::Acquire { client: 1, key: 6 });
        let notifs = produce_all(&mut dv, &b, t(4));
        assert!(
            notifs.iter().any(|a| matches!(a, DvAction::Evict { .. })),
            "cache of 4 flooded by 4 new steps must evict"
        );
        assert!(dv.stats().evictions > 0);
    }

    fn launched_sim(actions: &[DvAction]) -> SimId {
        actions
            .iter()
            .find_map(|x| match x {
                DvAction::Launch { sim, .. } => Some(*sim),
                _ => None,
            })
            .expect("expected a launch")
    }

    #[test]
    fn sim_failure_retries_instead_of_failing_waiters() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let sim = launched_sim(&a);
        let actions = dv.handle(t(1), DvEvent::SimFailed { sim });
        assert!(
            !actions
                .iter()
                .any(|x| matches!(x, DvAction::NotifyFailed { .. })),
            "attempt 1 must retry, not fail the waiter: {actions:?}"
        );
        assert_eq!(dv.stats().failures, 1);
        assert_eq!(dv.stats().sim_retries, 1);
        assert_eq!(dv.active_sims(), 0);
        assert_eq!(dv.queued_launches(), 1, "retry parked in backoff");

        // The backoff deadline is strictly future and bounded by
        // cap · 1.25; a tick before it must not launch.
        let due = dv.next_due(t(1)).expect("a parked retry has a deadline");
        assert!(due > t(1));
        let mut early = Vec::new();
        dv.tick(t(1), &mut early);
        assert!(!early.iter().any(|x| matches!(x, DvAction::Launch { .. })));

        // At the deadline the retry launches; production then serves
        // the original waiter — the failure was transparent.
        let mut retried = Vec::new();
        dv.tick(due, &mut retried);
        let sim2 = launched_sim(&retried);
        assert_ne!(sim2, sim);
        let notifs = produce_all(&mut dv, &retried, due);
        assert!(notifs
            .iter()
            .any(|x| matches!(x, DvAction::NotifyReady { client: 1, key: 6 })));
        assert_eq!(dv.pending_keys(), 0);
        assert_eq!(dv.waiting_keys(), 0);
        assert_eq!(dv.quarantined_intervals(due), 0);
    }

    #[test]
    fn budget_exhaustion_poisons_and_quarantine_expires() {
        let sup = crate::model::SupervisorCfg {
            attempt_budget: 2,
            backoff_base: Dur::from_nanos(1),
            backoff_cap: Dur::from_nanos(1),
            quarantine: Dur::from_secs(100),
            ..Default::default()
        };
        let mut dv = DataVirtualizer::new(cfg(100).with_supervisor(sup));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let sim = launched_sim(&a);
        dv.handle(t(1), DvEvent::SimFailed { sim });
        let mut retried = Vec::new();
        dv.tick(t(2), &mut retried);
        let sim2 = launched_sim(&retried);

        // Second failure exhausts the budget: typed poison verdict.
        let actions = dv.handle(t(3), DvEvent::SimFailed { sim: sim2 });
        let code = actions
            .iter()
            .find_map(|x| match x {
                DvAction::NotifyFailed { client: 1, key: 6, code, .. } => Some(*code),
                _ => None,
            })
            .expect("waiter must fail on exhaustion");
        assert_eq!(code, FailCode::Poisoned);
        assert_eq!(dv.stats().intervals_poisoned, 1);
        assert_eq!(dv.stats().sim_retries, 1);
        // Nothing leaked.
        assert_eq!(dv.active_sims(), 0);
        assert_eq!(dv.queued_launches(), 0);
        assert_eq!(dv.pending_keys(), 0);
        assert_eq!(dv.waiting_keys(), 0);
        assert_eq!(dv.quarantined_intervals(t(3)), 1);

        // Short-circuit inside the window: typed failure, no launch.
        let b = dv.handle(t(4), DvEvent::Acquire { client: 2, key: 7 });
        assert!(matches!(
            b[0],
            DvAction::NotifyFailed { client: 2, key: 7, code: FailCode::Poisoned, .. }
        ));
        assert!(!b.iter().any(|x| matches!(x, DvAction::Launch { .. })));
        assert_eq!(dv.waiting_keys(), 0, "short-circuit must not park a waiter");

        // After expiry the interval gets a fresh budget.
        let c = dv.handle(t(3 + 100), DvEvent::Acquire { client: 2, key: 7 });
        let sim3 = launched_sim(&c);
        let notifs = produce_all(&mut dv, &c, t(104));
        assert!(notifs
            .iter()
            .any(|x| matches!(x, DvAction::NotifyReady { client: 2, key: 7 })));
        let _ = sim3;
        assert_eq!(dv.quarantined_intervals(t(104)), 0);
    }

    #[test]
    fn hang_watchdog_kills_and_retries_stalled_sim() {
        let sup = crate::model::SupervisorCfg {
            hang_multiplier: 1.0,
            hang_floor: Dur::from_secs(5),
            hang_ceiling: Dur::from_secs(5),
            backoff_base: Dur::from_nanos(1),
            backoff_cap: Dur::from_nanos(1),
            ..Default::default()
        };
        let mut dv = DataVirtualizer::new(cfg(100).with_supervisor(sup));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let sim = launched_sim(&a);

        // Alive sims are left alone.
        let mut quiet = Vec::new();
        dv.tick(t(4), &mut quiet);
        assert!(quiet.is_empty(), "{quiet:?}");

        // Past the deadline: kill + retry, waiter still parked.
        let mut acted = Vec::new();
        dv.tick(t(100), &mut acted);
        assert!(acted.iter().any(|x| matches!(x, DvAction::Kill { sim: s } if *s == sim)));
        assert_eq!(dv.stats().sims_hung_killed, 1);
        assert_eq!(dv.stats().sim_retries, 1);
        assert!(!acted.iter().any(|x| matches!(x, DvAction::NotifyFailed { .. })));

        // The retry drains (backoff ~1ns) and production unwedges the
        // interval.
        let mut retried = Vec::new();
        dv.tick(t(101), &mut retried);
        let notifs = produce_all(&mut dv, &retried, t(102));
        assert!(notifs
            .iter()
            .any(|x| matches!(x, DvAction::NotifyReady { client: 1, key: 6 })));
        assert_eq!(dv.pending_keys(), 0);
        assert_eq!(dv.waiting_keys(), 0);
    }

    #[test]
    fn corrupt_output_kills_producer_and_colours_the_poison() {
        let sup = crate::model::SupervisorCfg {
            attempt_budget: 1,
            ..Default::default()
        };
        let mut dv = DataVirtualizer::new(cfg(100).with_supervisor(sup));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let sim = launched_sim(&a);
        dv.handle(t(1), DvEvent::SimStarted { sim });
        let actions = dv.handle(t(2), DvEvent::OutputCorrupt { sim, key: 5 });
        assert!(actions.iter().any(|x| matches!(x, DvAction::Kill { sim: s } if *s == sim)));
        assert_eq!(dv.stats().corrupt_outputs, 1);
        // Budget of 1: the terminal cause colours the verdict.
        assert!(actions.iter().any(|x| matches!(
            x,
            DvAction::NotifyFailed { client: 1, key: 6, code: FailCode::CorruptOutput, .. }
        )));
        assert_eq!(dv.stats().intervals_poisoned, 1);
        // A second report for the dead sim only counts.
        let again = dv.handle(t(3), DvEvent::OutputCorrupt { sim, key: 6 });
        assert!(again.is_empty());
        assert_eq!(dv.stats().corrupt_outputs, 2);
    }

    #[test]
    fn failed_prefetch_is_dropped_not_retried() {
        // Digest-driven prefetch launch (as in the pollution tests),
        // then fail it with nobody waiting: the speculative attempt is
        // dropped — no retry entry, no queued launch, no poison.
        let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
        dv.set_digest_observation(true);
        dv.seed_estimates(Dur::from_secs(4), Dur::from_secs(1));
        let records: Vec<_> = (1..=4).map(|k| digest_record(1, k, k)).collect();
        let mut actions = Vec::new();
        dv.ingest_digest(t(10), &records, 0, &|_| true, &mut actions);
        let sim = actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { sim, reason: LaunchReason::Prefetch, .. } => Some(*sim),
                _ => None,
            })
            .expect("scan must plan a prefetch");
        let after = dv.handle(t(11), DvEvent::SimFailed { sim });
        assert!(!after.iter().any(|x| matches!(x, DvAction::NotifyFailed { .. })));
        assert_eq!(dv.stats().sim_retries, 0);
        assert_eq!(dv.stats().intervals_poisoned, 0);
        assert_eq!(dv.stats().failures, 1);
        assert_eq!(dv.quarantined_intervals(t(11)), 0);
    }

    #[test]
    fn duplicate_miss_piggybacks_on_parked_retry() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 6 });
        let sim = launched_sim(&a);
        dv.handle(t(1), DvEvent::SimFailed { sim });
        assert_eq!(dv.queued_launches(), 1);
        // A second client missing on the same interval while the retry
        // is parked must wait on it, not bypass the backoff.
        let b = dv.handle(t(1), DvEvent::Acquire { client: 2, key: 7 });
        assert!(!b.iter().any(|x| matches!(x, DvAction::Launch { .. })));
        assert_eq!(dv.queued_launches(), 1);
        let due = dv.next_due(t(1)).unwrap();
        let mut retried = Vec::new();
        dv.tick(due, &mut retried);
        let notifs = produce_all(&mut dv, &retried, due);
        assert!(notifs
            .iter()
            .any(|x| matches!(x, DvAction::NotifyReady { client: 1, key: 6 })));
        assert!(notifs
            .iter()
            .any(|x| matches!(x, DvAction::NotifyReady { client: 2, key: 7 })));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let sup = crate::model::SupervisorCfg::default();
        let d1 = backoff_delay(&sup, 3, 1);
        assert_eq!(d1, backoff_delay(&sup, 3, 1), "deterministic");
        // Within ±25 % of the nominal value.
        let nominal = sup.backoff_base.as_nanos();
        assert!(d1.as_nanos() >= nominal - nominal / 4);
        assert!(d1.as_nanos() <= nominal + nominal / 4);
        // Monotone cap: huge attempt counts saturate at cap · 1.25.
        let dmax = backoff_delay(&sup, 3, 40);
        let cap = sup.backoff_cap.as_nanos();
        assert!(dmax.as_nanos() <= cap + cap / 4);
        assert!(dmax.as_nanos() >= cap - cap / 4);
        // Different intervals jitter differently (with these inputs).
        assert_ne!(backoff_delay(&sup, 1, 2), backoff_delay(&sup, 2, 2));
    }

    #[test]
    fn client_gone_releases_pins() {
        let mut dv = DataVirtualizer::new(cfg(4));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        produce_all(&mut dv, &a, t(1));
        assert!(dv.is_cached(2));
        dv.handle(t(2), DvEvent::ClientGone { client: 1 });
        // Now floodable.
        let b = dv.handle(t(3), DvEvent::Acquire { client: 2, key: 6 });
        produce_all(&mut dv, &b, t(4));
        assert!(!dv.is_cached(2), "pins of departed client released");
    }

    #[test]
    fn alpha_estimate_updates_from_sim_start() {
        let mut dv = DataVirtualizer::new(cfg(100));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        let sim = a
            .iter()
            .find_map(|x| match x {
                DvAction::Launch { sim, .. } => Some(*sim),
                _ => None,
            })
            .unwrap();
        dv.handle(t(13), DvEvent::SimStarted { sim });
        assert_eq!(dv.alpha_estimate(), Some(Dur::from_secs(13)));
    }

    #[test]
    fn estimate_wait_accounts_for_position() {
        let mut dv = DataVirtualizer::new(cfg(100));
        dv.seed_estimates(Dur::from_secs(10), Dur::from_secs(2));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 3 });
        let sim = a
            .iter()
            .find_map(|x| match x {
                DvAction::Launch { sim, .. } => Some(*sim),
                _ => None,
            })
            .unwrap();
        // Not started: alpha + 3 keys x tau (range 1..=4, key 3 is third).
        let est = dv.estimate_wait(3).unwrap();
        assert_eq!(est, Dur::from_secs(10 + 3 * 2));
        dv.handle(t(1), DvEvent::SimStarted { sim });
        dv.handle(
            t(3),
            DvEvent::FileProduced {
                sim,
                key: 1,
                size: 100,
            },
        );
        let est = dv.estimate_wait(3).unwrap();
        assert!(est <= Dur::from_secs(3 * 2), "started: no alpha, got {est}");
        assert!(dv.estimate_wait(30).is_none(), "nothing produces key 30");
    }

    #[test]
    fn release_of_unpinned_key_tolerated() {
        let mut dv = DataVirtualizer::new(cfg(4));
        let actions = dv.handle(t(0), DvEvent::Release { client: 9, key: 3 });
        assert!(actions.is_empty());
    }

    fn digest_record(client: u64, key: u64, epoch_s: u64) -> crate::prefetch::AccessRecord {
        crate::prefetch::AccessRecord {
            client,
            key,
            epoch: epoch_s * 1_000_000_000,
            ready: true,
        }
    }

    #[test]
    fn digest_replay_drives_prefetch_planning() {
        // Digest mode: acquires do not feed the agents; the replayed
        // records must carry observation (tau_cli from epoch gaps,
        // pattern confirmation, plan triggers) on their own.
        let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
        dv.set_digest_observation(true);
        dv.seed_estimates(Dur::from_secs(4), Dur::from_secs(1));

        // A miss launches coverage 1..=4 and informs the agent frontier,
        // but performs no observation.
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        produce_all(&mut dv, &a, t(0));
        assert!(
            dv.clients[&1].agent.direction().is_none(),
            "acquires must not observe in digest mode"
        );

        // Replaying a forward scan confirms the pattern and triggers a
        // prefetch plan beyond the miss coverage.
        let records: Vec<_> = (2..=4).map(|k| digest_record(1, k, k)).collect();
        let mut actions = Vec::new();
        dv.ingest_digest(t(10), &records, 0, &|_| true, &mut actions);
        let launch = actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { keys, reason, .. } => Some((keys.clone(), *reason)),
                _ => None,
            })
            .expect("digest replay must plan a prefetch");
        assert_eq!(launch.1, LaunchReason::Prefetch);
        assert!(*launch.0.start() > 4, "plans beyond the miss coverage: {launch:?}");
        assert_eq!(dv.stats().digest_replayed, 3);
        assert_eq!(
            dv.clients[&1].agent.direction(),
            Some(crate::prefetch::Direction::Forward)
        );
        assert_eq!(
            dv.clients[&1].agent.tau_cli(),
            Some(Dur::from_secs(1)),
            "tau_cli sampled from epoch gaps"
        );
    }

    #[test]
    fn digest_replay_skips_invalid_keys_and_counts_prefetch_hits() {
        let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
        dv.set_digest_observation(true);
        dv.seed_estimates(Dur::from_secs(4), Dur::from_secs(1));
        let mut actions = Vec::new();
        dv.ingest_digest(
            t(1),
            &[digest_record(1, 0, 1), digest_record(1, 9999, 2)],
            0,
            &|_| true,
            &mut actions,
        );
        assert!(actions.is_empty());
        assert_eq!(dv.stats().digest_replayed, 0, "invalid keys never replay");

        // Scan far enough that the agent plans ahead, produce the plan,
        // then replay accesses of the planned keys: prefetch hits.
        let records: Vec<_> = (1..=4).map(|k| digest_record(1, k, 2 + k)).collect();
        dv.ingest_digest(t(10), &records, 0, &|_| true, &mut actions);
        produce_all(&mut dv, &actions, t(11));
        let planned: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                DvAction::Launch { keys, reason: LaunchReason::Prefetch, .. } => {
                    Some(keys.clone())
                }
                _ => None,
            })
            .flatten()
            .collect();
        assert!(!planned.is_empty(), "scan must have planned prefetches");
        let before = dv.stats().prefetch_hits;
        let next_epoch = 20;
        let follow: Vec<_> = planned
            .iter()
            .take(2)
            .enumerate()
            .map(|(i, &k)| digest_record(1, k, next_epoch + i as u64))
            .collect();
        let mut more = Vec::new();
        dv.ingest_digest(t(30), &follow, 0, &|_| true, &mut more);
        assert!(
            dv.stats().prefetch_hits > before,
            "materialized planned keys count as prefetch hits"
        );
    }

    #[test]
    fn digest_replay_skips_tau_cli_gap_after_blocked_miss() {
        // A record that blocked on production carries its acquire-time
        // epoch, so the gap it opens is wait + consumption, not
        // consumption: replay must not sample it, or one slow restart
        // would inflate tau_cli by orders of magnitude.
        let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
        dv.set_digest_observation(true);
        let mk = |key: u64, epoch_s: u64, ready: bool| crate::prefetch::AccessRecord {
            client: 1,
            key,
            epoch: epoch_s * 1_000_000_000,
            ready,
        };
        let mut actions = Vec::new();
        dv.ingest_digest(
            t(100),
            &[
                mk(1, 1, true),
                mk(2, 2, true),   // gap 1 s after a ready point: sampled
                mk(3, 3, false),  // blocked miss (gap 1 s still sampled: starts at 2's ready point)
                mk(4, 63, true),  // 60 s gap after the *blocked* record: skipped
                mk(5, 64, true),  // 1 s after a ready point: sampled
            ],
            0,
            &|_| true,
            &mut actions,
        );
        assert_eq!(
            dv.clients[&1].agent.tau_cli(),
            Some(Dur::from_secs(1)),
            "the production wait must not leak into tau_cli"
        );
    }

    #[test]
    fn lossy_window_skips_first_gap_per_client() {
        // The gap into a drop window spans every lost record: sampling
        // it would feed one many-fold-inflated consumption sample into
        // tau_cli. Later gaps inside the same window are contiguous and
        // sample normally.
        let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
        dv.set_digest_observation(true);
        let mut actions = Vec::new();
        dv.ingest_digest(t(1), &[digest_record(1, 1, 1)], 0, &|_| true, &mut actions);
        // 500 records were dropped between the windows: the 2→502 gap
        // must not be sampled; the following 1 s gaps must.
        let lossy: Vec<_> = [(2u64, 502u64), (3, 503), (4, 504)]
            .iter()
            .map(|&(k, e)| digest_record(1, k, e))
            .collect();
        dv.ingest_digest(t(600), &lossy, 500, &|_| true, &mut actions);
        assert_eq!(
            dv.clients[&1].agent.tau_cli(),
            Some(Dur::from_secs(1)),
            "the drop-window gap must not inflate tau_cli"
        );
    }

    #[test]
    fn pollution_signal_fans_out_to_sibling_replicas() {
        // The detecting shard raises a signal; applying it to a sibling
        // resets that replica's agents (and arms its stale-window
        // discard) without double-counting the reset.
        let mk = || {
            let mut dv = DataVirtualizer::new(cfg(100).with_prefetch(true));
            dv.set_digest_observation(true);
            dv
        };
        let mut detecting = mk();
        let mut sibling = mk();
        assert!(!detecting.take_pollution_signal(), "no signal before pollution");

        // Sibling replica confirms a trajectory from the shared stream.
        let records: Vec<_> = (1..=3).map(|k| digest_record(1, k, k)).collect();
        let mut actions = Vec::new();
        sibling.ingest_digest(t(5), &records, 0, &|_| true, &mut actions);
        assert!(sibling.clients[&1].agent.direction().is_some());

        // Pollution in the detecting shard: agent planned a key, nobody
        // produces it, and the acquire misses.
        detecting.ingest_digest(t(5), &records, 0, &|_| true, &mut actions);
        let planned = *actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { keys, reason: LaunchReason::Prefetch, sim, .. } => {
                    // Fail the launch so the key stays unproduced and
                    // unpending.
                    Some((keys.clone(), *sim))
                }
                _ => None,
            })
            .expect("setup: prefetch planned")
            .0
            .start();
        let sim = actions
            .iter()
            .find_map(|a| match a {
                DvAction::Launch { sim, reason: LaunchReason::Prefetch, .. } => Some(*sim),
                _ => None,
            })
            .unwrap();
        detecting.handle(t(6), DvEvent::SimFailed { sim });
        detecting.handle(t(7), DvEvent::Acquire { client: 1, key: planned });
        assert_eq!(detecting.stats().pollution_resets, 1, "setup: pollution");
        assert!(detecting.take_pollution_signal(), "signal raised");
        assert!(!detecting.take_pollution_signal(), "signal is one-shot");

        // Fan-out: the sibling replica backs off too.
        sibling.apply_pollution_reset();
        assert!(sibling.clients[&1].agent.direction().is_none());
        assert_eq!(sibling.stats().pollution_resets, 0, "no double count");
    }

    #[test]
    fn pollution_reset_discards_stale_digest_window() {
        // A pollution reset discards the trajectory; the next drained
        // window predates the reset and must not instantly re-confirm
        // it (the inline path only ever observes post-reset accesses).
        let mut dv = DataVirtualizer::new(cfg(4).with_prefetch(true));
        dv.set_digest_observation(true);
        dv.seed_estimates(Dur::from_secs(4), Dur::from_secs(1));

        // Scan far enough that the agent plans ahead, produce the plan
        // into the tiny 4-step cache (evicting the early keys), then
        // miss on an evicted planned key: pollution.
        let records: Vec<_> = (1..=3).map(|k| digest_record(1, k, k)).collect();
        let mut actions = Vec::new();
        dv.ingest_digest(t(10), &records, 0, &|_| true, &mut actions);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                DvAction::Launch { reason: LaunchReason::Prefetch, .. }
            )),
            "setup: the scan must plan a prefetch: {actions:?}"
        );
        produce_all(&mut dv, &actions.clone(), t(11));
        let planned_low = 4u64; // 4..=11 was planned; cache keeps only 4
        assert!(!dv.is_cached(planned_low), "setup: key 4 must be evicted");
        let a = dv.handle(t(20), DvEvent::Acquire { client: 1, key: planned_low });
        assert_eq!(dv.stats().pollution_resets, 1, "setup: miss on evicted planned key");
        produce_all(&mut dv, &a, t(21));

        // Replaying the stale pre-reset window must not re-confirm the
        // killed trajectory or plan anything.
        let stale: Vec<_> = (4..=7).map(|k| digest_record(1, k, 10 + k)).collect();
        let mut after = Vec::new();
        dv.ingest_digest(t(30), &stale, 0, &|_| true, &mut after);
        assert!(
            dv.clients[&1].agent.direction().is_none(),
            "stale window re-confirmed the reset trajectory"
        );
        assert!(
            !after.iter().any(|a| matches!(a, DvAction::Launch { .. })),
            "stale window must not plan: {after:?}"
        );

        // Fresh post-reset observation works normally again.
        let fresh: Vec<_> = (20..=22).map(|k| digest_record(1, k, 20 + k)).collect();
        let mut more = Vec::new();
        dv.ingest_digest(t(40), &fresh, 0, &|_| true, &mut more);
        assert_eq!(
            dv.clients[&1].agent.direction(),
            Some(crate::prefetch::Direction::Forward),
            "post-reset windows must observe normally"
        );
    }

    #[test]
    fn sharded_digest_launches_partition_by_ownership() {
        let steps = StepMath::new(1, 4, 40);
        let ctx = ContextCfg::new("digest-shard", steps, 100, 100 * 100)
            .with_policy("lru")
            .with_smax(8)
            .with_prefetch(true);
        let mut sharded = ShardedDv::new(ctx, 2);
        sharded.set_digest_observation(true);
        let router = sharded.router();
        // Seed estimates via a real miss + production on each shard.
        let mut warm = Vec::new();
        sharded.handle_into(t(0), DvEvent::Acquire { client: 1, key: 2 }, &mut warm);
        sharded.handle_into(t(0), DvEvent::Acquire { client: 1, key: 6 }, &mut warm);
        for a in warm.clone() {
            if let DvAction::Launch { sim, keys, .. } = a {
                sharded.handle(t(1), DvEvent::SimStarted { sim });
                for k in keys {
                    sharded.handle(t(1), DvEvent::FileProduced { sim, key: k, size: 100 });
                }
                sharded.handle(t(1), DvEvent::SimFinished { sim });
            }
        }

        // Replay a long forward scan into both shards.
        let records: Vec<_> = (1..=10).map(|k| digest_record(1, k, k)).collect();
        let mut actions = Vec::new();
        sharded.ingest_digest(t(20), &records, 0, &mut actions);

        // Every prefetch launch must stay inside one shard's ownership,
        // and no key may be claimed by two launches.
        let mut claimed = std::collections::HashSet::new();
        for a in &actions {
            if let DvAction::Launch { keys, reason: LaunchReason::Prefetch, sim, .. } = a {
                let shard = router.shard_of_sim(*sim);
                for k in keys.clone() {
                    assert_eq!(
                        router.shard_of_key(k),
                        shard,
                        "launch {keys:?} crosses shard ownership"
                    );
                    assert!(claimed.insert(k), "key {k} claimed twice: {actions:?}");
                }
            }
        }
        assert!(!claimed.is_empty(), "scan must plan prefetches: {actions:?}");
    }

    #[test]
    fn nested_pins_require_matching_releases() {
        let mut dv = DataVirtualizer::new(cfg(4));
        let a = dv.handle(t(0), DvEvent::Acquire { client: 1, key: 2 });
        produce_all(&mut dv, &a, t(1));
        dv.handle(t(2), DvEvent::Release { client: 1, key: 2 });
        // Re-acquire twice (hits), pin count 2.
        dv.handle(t(3), DvEvent::Acquire { client: 1, key: 2 });
        dv.handle(t(4), DvEvent::Acquire { client: 1, key: 2 });
        dv.handle(t(5), DvEvent::Release { client: 1, key: 2 });
        // One pin remains: still not evictable.
        let b = dv.handle(t(6), DvEvent::Acquire { client: 2, key: 6 });
        produce_all(&mut dv, &b, t(7));
        assert!(dv.is_cached(2));
    }

    #[test]
    fn restore_pin_requires_materialized_key() {
        let mut dv = DataVirtualizer::new(cfg(4));
        // Nothing materialized yet: nothing to restore, never a launch.
        assert!(!dv.restore_pin(7, 2));
        assert_eq!(dv.stats().pins_recovered, 0);
        assert_eq!(dv.active_sims(), 0);
        // Invalid keys are refused like everywhere else.
        assert!(!dv.restore_pin(7, 9999));
        // Prime key 2 (recovery's storage rescan), then restore: the
        // pin must hold against eviction pressure exactly like a live
        // client's pin.
        assert!(dv.prime(2, 100).is_empty());
        assert!(dv.restore_pin(7, 2));
        assert_eq!(dv.stats().pins_recovered, 1);
        for key in [6u64, 10, 14, 18] {
            let a = dv.handle(t(1), DvEvent::Acquire { client: 1, key });
            produce_all(&mut dv, &a, t(2));
            dv.handle(t(3), DvEvent::Release { client: 1, key });
        }
        assert!(dv.is_cached(2), "recovered pin must veto eviction");
        // ClientGone (lease expiry) frees it normally.
        dv.handle(t(4), DvEvent::ClientGone { client: 7 });
        let b = dv.handle(t(5), DvEvent::Acquire { client: 1, key: 22 });
        produce_all(&mut dv, &b, t(6));
        assert!(!dv.is_cached(2), "expired lease pin must stop vetoing");
    }

    #[test]
    fn transfer_pin_moves_ownership() {
        let mut dv = DataVirtualizer::new(cfg(100));
        assert!(dv.prime(2, 100).is_empty());
        assert!(dv.restore_pin(7, 2));
        assert!(dv.restore_pin(7, 2), "counts restore per recorded acquire");
        // Claiming a pin the prior client never held fails.
        assert!(!dv.transfer_pin(7, 40, 3));
        assert!(!dv.transfer_pin(9, 40, 2));
        // One count moves per transfer.
        assert!(dv.transfer_pin(7, 40, 2));
        assert!(dv.transfer_pin(7, 40, 2));
        assert!(!dv.transfer_pin(7, 40, 2), "only two counts were held");
        // The new owner's releases balance the transferred counts; the
        // prior client's teardown no longer touches them.
        dv.handle(t(1), DvEvent::ClientGone { client: 7 });
        dv.handle(t(2), DvEvent::Release { client: 40, key: 2 });
        dv.handle(t(3), DvEvent::Release { client: 40, key: 2 });
        // All pins gone: key 2 is evictable under pressure.
        let mut dv2 = DataVirtualizer::new(cfg(4));
        assert!(dv2.prime(2, 100).is_empty());
        assert!(dv2.restore_pin(7, 2));
        assert!(dv2.transfer_pin(7, 40, 2));
        dv2.handle(t(1), DvEvent::Release { client: 40, key: 2 });
        for key in [6u64, 10, 14, 18] {
            let a = dv2.handle(t(2), DvEvent::Acquire { client: 1, key });
            produce_all(&mut dv2, &a, t(3));
            dv2.handle(t(4), DvEvent::Release { client: 1, key });
        }
        assert!(!dv2.is_cached(2), "released transferred pin must not veto eviction");
    }
}
