//! Parser for `crates/core/LOCKS.md`, the machine-readable lock
//! registry, plus the cross-check against the runtime constants in
//! `crates/simkit/src/lockrank.rs`.

use crate::lexer::{self, Tok};
use crate::Finding;

/// One acquisition-site matcher: `receiver.method`, or `receiver.*`
/// (method `None`) for "any method call on this receiver".
#[derive(Clone, Debug)]
pub struct Matcher {
    pub receiver: String,
    pub method: Option<String>,
}

/// One row of the `## Registry` table.
#[derive(Clone, Debug)]
pub struct LockRow {
    pub level: u16,
    pub name: String,
    pub blocking: bool,
    pub konst: String,
    pub files: Vec<String>,
    pub matchers: Vec<Matcher>,
    /// 1-based line of the row in LOCKS.md, for diagnostics.
    pub line: usize,
}

/// The parsed registry: lock rows plus the blocking denylist tokens.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    pub rows: Vec<LockRow>,
    pub denylist: Vec<String>,
}

/// Splits a markdown table line `| a | b | c |` into trimmed cells.
fn cells(line: &str) -> Vec<String> {
    let t = line.trim();
    let t = t.strip_prefix('|').unwrap_or(t);
    let t = t.strip_suffix('|').unwrap_or(t);
    t.split('|').map(|c| c.trim().to_string()).collect()
}

fn is_separator_row(c: &[String]) -> bool {
    c.iter().all(|s| s.chars().all(|ch| ch == '-' || ch == ':') && !s.is_empty())
}

/// Parses LOCKS.md. Malformed rows become findings rather than panics,
/// so a broken registry fails the lint with a pointer instead of a
/// stack trace.
pub fn parse(src: &str, label: &str) -> (Registry, Vec<Finding>) {
    let mut reg = Registry::default();
    let mut findings = Vec::new();
    #[derive(PartialEq)]
    enum Section {
        None,
        Registry,
        Denylist,
    }
    let mut section = Section::None;
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        let t = line.trim();
        if let Some(h) = t.strip_prefix("##") {
            let h = h.trim().to_ascii_lowercase();
            section = if h == "registry" {
                Section::Registry
            } else if h.starts_with("blocking denylist") {
                Section::Denylist
            } else {
                Section::None
            };
            continue;
        }
        if !t.starts_with('|') {
            continue;
        }
        let c = cells(t);
        if is_separator_row(&c) {
            continue;
        }
        match section {
            Section::Registry => {
                if c.first().is_some_and(|h| h == "level") {
                    continue; // header
                }
                if c.len() != 6 {
                    findings.push(Finding::new(
                        "registry",
                        label,
                        lineno,
                        format!("registry row has {} cells, expected 6", c.len()),
                    ));
                    continue;
                }
                let Ok(level) = c[0].parse::<u16>() else {
                    findings.push(Finding::new(
                        "registry",
                        label,
                        lineno,
                        format!("bad level {:?}", c[0]),
                    ));
                    continue;
                };
                let blocking = match c[2].as_str() {
                    "yes" => true,
                    "no" => false,
                    other => {
                        findings.push(Finding::new(
                            "registry",
                            label,
                            lineno,
                            format!("blocking column must be yes/no, got {other:?}"),
                        ));
                        continue;
                    }
                };
                let mut matchers = Vec::new();
                for m in c[5].split_whitespace() {
                    match m.rsplit_once('.') {
                        Some((recv, "*")) => matchers.push(Matcher {
                            receiver: recv.to_string(),
                            method: None,
                        }),
                        Some((recv, meth)) => matchers.push(Matcher {
                            receiver: recv.to_string(),
                            method: Some(meth.to_string()),
                        }),
                        None => findings.push(Finding::new(
                            "registry",
                            label,
                            lineno,
                            format!("matcher {m:?} is not receiver.method"),
                        )),
                    }
                }
                reg.rows.push(LockRow {
                    level,
                    name: c[1].clone(),
                    blocking,
                    konst: c[3].clone(),
                    files: c[4].split_whitespace().map(String::from).collect(),
                    matchers,
                    line: lineno,
                });
            }
            Section::Denylist => {
                if c.first().is_some_and(|h| h == "token") {
                    continue;
                }
                if let Some(tok) = c.first() {
                    if !tok.is_empty() {
                        reg.denylist.push(tok.clone());
                    }
                }
            }
            Section::None => {}
        }
    }
    if reg.rows.is_empty() {
        findings.push(Finding::new(
            "registry",
            label,
            1,
            "no rows parsed from ## Registry".to_string(),
        ));
    }
    if reg.denylist.is_empty() {
        findings.push(Finding::new(
            "registry",
            label,
            1,
            "no tokens parsed from ## Blocking denylist".to_string(),
        ));
    }
    (reg, findings)
}

/// Cross-checks the registry against `lockrank.rs` source: every row's
/// `const` must exist as `pub const NAME: Rank = Rank { level: N, ...,
/// blocking: B }` with matching level and blocking flag.
pub fn check_lockrank_consistency(
    reg: &Registry,
    lockrank_src: &str,
    label: &str,
) -> Vec<Finding> {
    let (toks, _) = lexer::lex(lockrank_src);
    // Collect (const_name, level, blocking, line) triples.
    let mut consts: Vec<(String, u16, bool, usize)> = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        if lexer::is_ident(&toks[i].tok, "const") {
            if let Tok::Ident(name) = &toks[i + 1].tok {
                // Scan forward within the initializer for `level: N`
                // and `blocking: true/false` up to the terminating `;`.
                let line = toks[i].line as usize;
                let mut level: Option<u16> = None;
                let mut blocking: Option<bool> = None;
                let mut j = i + 2;
                while j < toks.len() && toks[j].tok != Tok::Punct(';') {
                    if lexer::is_ident(&toks[j].tok, "level") {
                        if let Some(Tok::Num(n)) = toks.get(j + 2).map(|t| &t.tok) {
                            level = n.parse().ok();
                        }
                    }
                    if lexer::is_ident(&toks[j].tok, "blocking") {
                        match toks.get(j + 2).map(|t| &t.tok) {
                            Some(Tok::Ident(b)) if b == "true" => blocking = Some(true),
                            Some(Tok::Ident(b)) if b == "false" => blocking = Some(false),
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if let (Some(lv), Some(bl)) = (level, blocking) {
                    consts.push((name.clone(), lv, bl, line));
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }

    let mut findings = Vec::new();
    for row in &reg.rows {
        match consts.iter().find(|(n, ..)| *n == row.konst) {
            None => findings.push(Finding::new(
                "lockrank-sync",
                label,
                row.line,
                format!(
                    "registry row {:?} names const {} which does not exist in lockrank.rs",
                    row.name, row.konst
                ),
            )),
            Some((_, lv, bl, cline)) => {
                if *lv != row.level {
                    findings.push(Finding::new(
                        "lockrank-sync",
                        label,
                        row.line,
                        format!(
                            "{}: registry level {} but lockrank.rs:{} says {}",
                            row.konst, row.level, cline, lv
                        ),
                    ));
                }
                if *bl != row.blocking {
                    findings.push(Finding::new(
                        "lockrank-sync",
                        label,
                        row.line,
                        format!(
                            "{}: registry blocking={} but lockrank.rs:{} says {}",
                            row.konst, row.blocking, cline, bl
                        ),
                    ));
                }
            }
        }
    }
    findings
}
