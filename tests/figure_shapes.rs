//! Shape regression tests: the qualitative findings of the paper's
//! evaluation, asserted against fast (reduced-repetition) runs of the
//! actual figure harnesses. These are the "who wins / where is the
//! crossover" guarantees EXPERIMENTS.md documents.

use simfs_bench::prefetchfigs::{latency, scaling, ScalingConfig};
use simfs_bench::{costfigs, fig5, RunOpts};
use simtrace::Pattern;

fn quick() -> RunOpts {
    RunOpts {
        reps: 2,
        seed: 20260610,
        ..RunOpts::default()
    }
}

/// Fig. 5: LIRS performs worst on backward scans ("it prioritizes the
/// eviction of files that are most likely to be accessed with this
/// trajectory"), and the cost-aware schemes are competitive everywhere.
#[test]
fn fig5_lirs_is_worst_on_backward() {
    let cfg = fig5::Fig5Config {
        timeline_steps: 1152,
        outputs_per_restart: 48,
        cache_fraction: 0.25,
        n_traces: 20,
        len_range: (100, 400),
        ecmwf_accesses: 20_000,
    };
    let cells = fig5::run(&cfg, &quick());
    let lirs = fig5::cell(&cells, Pattern::Backward, "LIRS").steps_median;
    for policy in ["LRU", "ARC", "BCL", "DCL"] {
        let other = fig5::cell(&cells, Pattern::Backward, policy).steps_median;
        assert!(
            lirs >= other,
            "paper: LIRS worst on backward; got LIRS {lirs} < {policy} {other}"
        );
    }
}

/// Fig. 5: on the skewed archival (ECMWF-like) pattern, DCL does not
/// lose to plain LRU ("the cost-based schemes, in particular DCL,
/// minimize the number of restarts/produced output steps").
#[test]
fn fig5_dcl_competitive_on_archival_pattern() {
    let cfg = fig5::Fig5Config {
        timeline_steps: 1152,
        outputs_per_restart: 48,
        cache_fraction: 0.25,
        n_traces: 20,
        len_range: (100, 400),
        ecmwf_accesses: 30_000,
    };
    let cells = fig5::run(&cfg, &quick());
    for pattern in [Pattern::Ecmwf, Pattern::Random] {
        let dcl = fig5::cell(&cells, pattern, "DCL").steps_median;
        let lru = fig5::cell(&cells, pattern, "LRU").steps_median;
        assert!(
            dcl <= lru * 1.05,
            "{}: DCL {dcl} should not lose to LRU {lru}",
            pattern.label()
        );
    }
}

/// Fig. 1: on-disk grows linearly with the availability period and
/// SimFS undercuts it over long periods; in-situ is period-independent.
#[test]
fn fig1_cost_crossover() {
    let (_, results) = costfigs::fig1(&quick());
    let first = &results[0]; // 6 months
    let last = results.last().unwrap(); // 5 years
    assert!(first.on_disk < first.in_situ, "short period: on-disk wins");
    assert!(last.simfs < last.on_disk, "5 years: SimFS beats on-disk");
    assert!(
        (first.in_situ - last.in_situ).abs() < first.in_situ * 0.2,
        "in-situ is period-independent"
    );
}

/// Fig. 14: the in-situ/SimFS crossover in the number of analyses —
/// few analyses favour in-situ, many favour SimFS (paper: crossover
/// around 20).
#[test]
fn fig14_analysis_count_crossover() {
    let opts = quick();
    let (_, results) = costfigs::fig14(&opts);
    let pick = |z: u32| {
        results
            .iter()
            .find(|r| {
                r.case.n_analyses == z
                    && r.case.dr_hours == 8.0
                    && r.case.cache_fraction == 0.25
            })
            .unwrap()
    };
    assert!(pick(5).in_situ < pick(5).simfs, "z=5: in-situ cheaper");
    assert!(pick(125).simfs < pick(125).in_situ, "z=125: SimFS cheaper");
}

/// Fig. 16: analysis completion scales with `s_max` beyond the full
/// forward re-simulation; Fig. 18's FLASH configuration scales too.
#[test]
fn fig16_18_strong_scalability() {
    let opts = quick();
    for cfg in [ScalingConfig::cosmo(), ScalingConfig::flash()] {
        let points = scaling(&cfg, &opts);
        let p2 = points.iter().find(|p| p.smax == 2).unwrap();
        let p8 = points.iter().find(|p| p.smax == 8).unwrap();
        assert!(
            p8.forward_s <= p2.forward_s,
            "{}: smax=8 ({:.0}s) should not be slower than smax=2 ({:.0}s)",
            cfg.name,
            p8.forward_s,
            p2.forward_s
        );
        let speedup = p8.full_forward_s / p8.forward_s;
        assert!(
            speedup > 1.3,
            "{}: speedup over full forward re-simulation only {speedup:.2}",
            cfg.name
        );
    }
}

/// Fig. 17: with very high restart latencies the analysis time is
/// bounded by roughly twice the single-simulation time ("the warm-up
/// time is a factor of two higher than T_single ... this bounds the
/// overhead that SimFS can introduce w.r.t. an in-situ analysis").
#[test]
fn fig17_warmup_bounds_overhead() {
    let opts = quick();
    let cfg = ScalingConfig::cosmo();
    let points = latency(&cfg, &[288], &[600], &opts);
    let p = &points[0];
    assert!(
        p.simfs_s <= p.t_single_s * 2.5,
        "SimFS {:.0}s exceeds ~2x T_single ({:.0}s)",
        p.simfs_s,
        p.t_single_s
    );
    assert!(p.simfs_s >= p.t_lower_s, "cannot beat the parallel bound");
}
