//! Climate-analysis scenario (the paper's COSMO use case, §VI):
//! a 2-D advection–diffusion model is virtualized; an analysis walks
//! forward in time computing the mean and variance of the field — the
//! exact analysis the paper runs — while SimFS re-simulates missing
//! output steps from hourly restart files and verifies
//! bit-reproducibility.
//!
//! ```sh
//! cargo run --example climate_analysis
//! ```

use simfs::launchers::KernelLauncher;
use simfs::prelude::*;
use simfs::setup::run_initial_simulation;
use simulators::SimKind;
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // COSMO-like cadence (scaled): Δd = 5 timesteps per output step,
    // Δr = 60 per restart (12 outputs per interval), 720 timesteps
    // (144 output steps).
    let (dd, dr, timesteps) = (5u64, 60u64, 720u64);
    let dir = std::env::temp_dir().join(format!("simfs-climate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = StorageArea::create(&dir, u64::MAX)?;

    println!("running the initial climate simulation (writes restarts only)...");
    let init = run_initial_simulation(&storage, SimKind::Heat2d, 2026, dd, dr, timesteps)?;
    println!(
        "  {} restart files, {} output checksums recorded, 0 output steps stored",
        init.restarts,
        init.checksums.len()
    );

    // Virtualize: cache holds only 36 of the 144 output steps (25%).
    let steps = StepMath::new(dd, dr, timesteps);
    let sample = simulators::build_sim(SimKind::Heat2d, 2026).output().encode();
    let step_bytes = sample.len() as u64;
    let ctx = ContextCfg::new("climate", steps, step_bytes, 36 * step_bytes)
        .with_policy("dcl")
        .with_smax(4);
    let driver = Arc::new(PatternDriver::new("out-", ".sdf", 6));
    let launcher = Arc::new(KernelLauncher::new(
        SimKind::Heat2d,
        dd,
        dr,
        Duration::from_millis(30), // alpha_sim
        Duration::from_millis(5),  // tau_sim
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: driver.clone(),
            storage: storage.clone(),
            launcher,
            checksums: init.checksums,
            dv_shards: 1,
            cluster: ClusterMember::SOLO,
            durability: DurabilityCfg::default(),
        },
        "127.0.0.1:0",
    )?;
    println!("DV daemon on {} (cache: 36/144 steps)", server.addr());

    // Forward-in-time analysis over 2 restart intervals.
    let mut client = SimfsClient::connect(server.addr(), "climate")?;
    println!("\nforward analysis of output steps 61..=84:");
    for key in 61..=84u64 {
        let status = client.acquire(&[key])?;
        assert!(status.ok(), "acquire failed: {status:?}");
        let bytes = storage.read(&driver.filename_of(key))?;
        let ds = Dataset::decode(&bytes).map_err(std::io::Error::other)?;
        let field = ds.var("u").and_then(|v| v.data.as_f64()).expect("field u");
        let mean = field.iter().sum::<f64>() / field.len() as f64;
        let var = field.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / field.len() as f64;
        if key % 6 == 1 {
            println!("  step {key:3}: mean = {mean:.6}, variance = {var:.6}");
        }
        client.release(key)?;
    }

    // Bit-reproducibility: the re-simulated files must match the
    // checksums recorded during the initial run (§III-C SIMFS_Bitrep).
    print!("\nSIMFS_Bitrep over the re-simulated steps: ");
    let mut verified = 0;
    for key in 61..=84u64 {
        client.acquire(&[key])?;
        match client.bitrep(key)? {
            Some(true) => verified += 1,
            Some(false) => panic!("step {key} is NOT bit-reproducible"),
            None => panic!("step {key} has no recorded checksum"),
        }
        client.release(key)?;
    }
    println!("{verified}/24 bitwise identical to the initial simulation");

    let stats = server.stats();
    println!(
        "\nDV stats: {} hits, {} misses, {} restarts, {} steps produced, {} evictions",
        stats.hits, stats.misses, stats.restarts, stats.produced_steps, stats.evictions
    );

    client.finalize()?;
    server.shutdown();
    std::fs::remove_dir_all(&dir)?;
    println!("\nclimate analysis OK");
    Ok(())
}
