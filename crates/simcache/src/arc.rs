//! Adaptive Replacement Cache (Megiddo & Modha, FAST'03), §III-D.
//!
//! ARC splits resident entries into `T1` (seen once recently) and `T2`
//! (seen at least twice), shadowed by ghost lists `B1`/`B2` that remember
//! recently evicted keys. A self-tuning target `p` grows when B1 ghosts
//! are re-referenced (recency is winning) and shrinks on B2 ghost hits
//! (frequency is winning).
//!
//! Two adaptations for SimFS (shared with all policies in this crate):
//!
//! * Eviction is driven externally by the byte-budget manager rather than
//!   by the textbook's fixed `c`-slot REPLACE-on-insert, so [`Arc::evict`]
//!   implements the REPLACE victim rule and can be called repeatedly.
//! * Pinned (referenced) entries are skipped; if the preferred side has
//!   only pinned entries, the other side is tried before giving up.

use crate::fasthash::{u64_set, U64Set};
use crate::order::KeyedList;
use crate::{PinFn, Policy};

/// ARC policy state. `capacity` is the nominal entry capacity, used for
/// the adaptation step and the ghost-list bounds.
#[derive(Clone, Debug)]
pub struct Arc {
    capacity: usize,
    /// Target size for T1 (the "recency" side), `0 ..= capacity`.
    p: usize,
    t1: KeyedList,
    t2: KeyedList,
    b1: KeyedList,
    b2: KeyedList,
    /// Keys currently in T2 (to route ghost transitions on eviction).
    in_t2: U64Set,
    /// The most recent insert was a B2 ghost hit (biases REPLACE toward
    /// T1 per the original algorithm).
    last_was_b2_hit: bool,
}

impl Arc {
    /// Creates an ARC policy with the given nominal capacity in entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ARC capacity must be positive");
        Arc {
            capacity,
            p: 0,
            t1: KeyedList::new(),
            t2: KeyedList::new(),
            b1: KeyedList::new(),
            b2: KeyedList::new(),
            in_t2: u64_set(),
            last_was_b2_hit: false,
        }
    }

    /// Current adaptation target for T1 (diagnostics).
    pub fn target_t1(&self) -> usize {
        self.p
    }

    /// Resident split `(|T1|, |T2|)` (diagnostics).
    pub fn split(&self) -> (usize, usize) {
        (self.t1.len(), self.t2.len())
    }

    fn trim_ghosts(&mut self) {
        // |T1| + |B1| <= c  and  |T1|+|T2|+|B1|+|B2| <= 2c.
        while self.t1.len() + self.b1.len() > self.capacity {
            if self.b1.pop_back().is_none() {
                break;
            }
        }
        while self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() > 2 * self.capacity {
            if self.b2.pop_back().is_none() {
                break;
            }
        }
    }

    /// The REPLACE rule: should the next victim come from T1?
    fn prefer_t1(&self) -> bool {
        let t1 = self.t1.len();
        if t1 == 0 {
            return false;
        }
        t1 > self.p || (self.last_was_b2_hit && t1 == self.p)
    }

    fn evict_from(list_is_t1: bool, arc: &mut Arc, pinned: PinFn<'_>) -> Option<u64> {
        let list = if list_is_t1 { &arc.t1 } else { &arc.t2 };
        let victim = list.iter_back_to_front().find(|&k| !pinned(k))?;
        if list_is_t1 {
            arc.t1.remove(victim);
            arc.b1.push_front(victim);
        } else {
            arc.t2.remove(victim);
            arc.in_t2.remove(&victim);
            arc.b2.push_front(victim);
        }
        Some(victim)
    }
}

impl Policy for Arc {
    fn name(&self) -> &'static str {
        "ARC"
    }

    fn contains(&self, key: u64) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    fn on_hit(&mut self, key: u64) {
        if self.t1.remove(key) {
            // Second reference: promote to the frequency side.
            self.t2.push_front(key);
            self.in_t2.insert(key);
        } else {
            let present = self.t2.move_to_front(key);
            assert!(present, "ARC hit on non-resident key {key}");
        }
    }

    fn on_insert(&mut self, key: u64, _cost: u64) {
        debug_assert!(!self.contains(key), "ARC insert of resident key {key}");
        if self.b1.remove(key) {
            // Recency ghost hit: grow p.
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.capacity);
            self.last_was_b2_hit = false;
            self.t2.push_front(key);
            self.in_t2.insert(key);
        } else if self.b2.remove(key) {
            // Frequency ghost hit: shrink p.
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.last_was_b2_hit = true;
            self.t2.push_front(key);
            self.in_t2.insert(key);
        } else {
            self.last_was_b2_hit = false;
            self.t1.push_front(key);
        }
        self.trim_ghosts();
    }

    fn evict(&mut self, pinned: PinFn<'_>) -> Option<u64> {
        let first_t1 = self.prefer_t1();
        Arc::evict_from(first_t1, self, pinned)
            .or_else(|| Arc::evict_from(!first_t1, self, pinned))
    }

    fn on_remove(&mut self, key: u64) {
        if !self.t1.remove(key) && self.t2.remove(key) {
            self.in_t2.remove(&key);
        }
        // Forget ghosts too: externally removed keys should not influence
        // future adaptation.
        self.b1.remove(key);
        self.b2.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_PIN: fn(u64) -> bool = |_| false;

    #[test]
    fn single_access_stays_in_t1() {
        let mut p = Arc::new(4);
        p.on_insert(1, 0);
        assert_eq!(p.split(), (1, 0));
    }

    #[test]
    fn second_access_promotes_to_t2() {
        let mut p = Arc::new(4);
        p.on_insert(1, 0);
        p.on_hit(1);
        assert_eq!(p.split(), (0, 1));
        p.on_hit(1); // further hits stay in T2
        assert_eq!(p.split(), (0, 1));
    }

    #[test]
    fn ghost_hit_in_b1_grows_p() {
        let mut p = Arc::new(2);
        p.on_insert(1, 0);
        p.on_insert(2, 0);
        let v = p.evict(&NO_PIN).unwrap(); // goes to B1
        assert_eq!(v, 1);
        let before = p.target_t1();
        p.on_insert(1, 0); // B1 ghost hit
        assert!(p.target_t1() > before);
        assert_eq!(p.split(), (1, 1), "ghost hit lands in T2");
    }

    #[test]
    fn ghost_hit_in_b2_shrinks_p() {
        let mut p = Arc::new(2);
        p.on_insert(1, 0);
        p.on_hit(1); // T2
        p.on_insert(2, 0);
        p.on_insert(3, 0);
        // evict from T2 (p=0 so T1 preferred... force T2 eviction)
        // Fill to make T1 preferred eviction leave T2 element for later.
        let mut evicted = Vec::new();
        while let Some(v) = p.evict(&NO_PIN) {
            evicted.push(v);
        }
        assert!(evicted.contains(&1));
        // p may have been bumped by ghost activity; record and hit B2.
        let before = p.target_t1();
        p.on_insert(1, 0); // B2 ghost hit
        assert!(p.target_t1() <= before);
    }

    #[test]
    fn scan_does_not_flush_frequent_set() {
        // The signature ARC behaviour: a one-pass scan of many cold keys
        // must not evict the hot, frequently-hit working set.
        let cap = 8;
        let mut p = Arc::new(cap);
        // Hot set: 4 keys, hit repeatedly -> T2.
        for k in 0..4u64 {
            p.on_insert(k, 0);
            p.on_hit(k);
            p.on_hit(k);
        }
        // Scan 100 cold keys through the cache.
        for k in 100..200u64 {
            p.on_insert(k, 0);
            while p.len() > cap {
                p.evict(&NO_PIN).unwrap();
            }
        }
        let hot_resident = (0..4u64).filter(|&k| p.contains(k)).count();
        assert!(
            hot_resident >= 3,
            "scan flushed the hot set: only {hot_resident}/4 resident"
        );
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let mut p = Arc::new(2);
        for k in [1, 2, 3] {
            p.on_insert(k, 0);
        }
        let pin = |k: u64| k == 1;
        while p.evict(&pin).is_some() {}
        assert!(p.contains(1));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let cap = 4;
        let mut p = Arc::new(cap);
        for k in 0..1000u64 {
            p.on_insert(k, 0);
            while p.len() > cap {
                p.evict(&NO_PIN).unwrap();
            }
        }
        assert!(p.b1.len() + p.b2.len() <= 2 * cap);
    }

    #[test]
    fn on_remove_purges_ghosts() {
        let mut p = Arc::new(2);
        p.on_insert(1, 0);
        p.on_insert(2, 0);
        p.evict(&NO_PIN).unwrap(); // 1 -> B1
        p.on_remove(1);
        let before = p.target_t1();
        p.on_insert(1, 0);
        assert_eq!(p.target_t1(), before, "removed ghost must not adapt p");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Arc::new(0);
    }
}
