//! Calibration constants and the simulation scenario (§V-A, Table II).

use serde::{Deserialize, Serialize};

/// Infrastructure price point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rates {
    /// Compute cost `c_c` in $/node/hour.
    pub compute_per_node_hour: f64,
    /// Storage cost `c_s` in $/GiB/month.
    pub storage_per_gib_month: f64,
}

/// Microsoft Azure calibration used throughout §V: NCv2 VM (P100 GPU)
/// compute, Azure Files storage.
pub const AZURE: Rates = Rates {
    compute_per_node_hour: 2.07,
    storage_per_gib_month: 0.06,
};

/// Piz Daint price point derived from the CSCS cost catalog, as placed
/// on the Fig. 15a heatmap (lower compute cost, comparable storage).
pub const PIZ_DAINT: Rates = Rates {
    compute_per_node_hour: 1.00,
    storage_per_gib_month: 0.12,
};

/// A simulation configuration: cadences, sizes, and performance
/// (Table II symbols `n`, `Δd`, `Δr`, `s_o`, `s_r`, `P`, `tau_sim`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Physical seconds advanced per timestep (COSMO: 20 s).
    pub timestep_secs: f64,
    /// Total simulation length in timesteps (`n`).
    pub n_timesteps: u64,
    /// Timesteps between output steps (`Δd`).
    pub dd: u64,
    /// Timesteps between restart steps (`Δr`).
    pub dr: u64,
    /// Wall-clock seconds to produce one output step at `nodes`
    /// (`tau_sim(P)`).
    pub tau_sim_secs: f64,
    /// Compute nodes used for (re-)simulations (`P`).
    pub nodes: u32,
    /// Output step size in GiB (`s_o`).
    pub output_gib: f64,
    /// Restart step size in GiB (`s_r`).
    pub restart_gib: f64,
}

impl Scenario {
    /// The paper's COSMO production calibration with a restart interval
    /// of `dr_hours` of simulated time (§V-A uses 4 h / 8 h / 16 h /
    /// 32 h): 20 s timesteps, one output step per 15 timesteps (5 min),
    /// `tau_sim(100) = 20 s`, 6 GiB outputs, 36 GiB restarts, ≈50 TiB
    /// total output volume.
    pub fn cosmo_paper(dr_hours: f64) -> Scenario {
        let timestep_secs = 20.0;
        let dd = 15;
        // 50 TiB / 6 GiB = 8533.3 output steps; keep the volume at
        // 50 TiB.
        let n_outputs = (50.0_f64 * 1024.0 / 6.0).round() as u64;
        let dr = ((dr_hours * 3600.0 / timestep_secs).round() as u64).max(dd);
        Scenario {
            timestep_secs,
            n_timesteps: n_outputs * dd,
            dd,
            dr,
            tau_sim_secs: 20.0,
            nodes: 100,
            output_gib: 6.0,
            restart_gib: 36.0,
        }
    }

    /// Number of output steps `n_o = ⌊n / Δd⌋`.
    pub fn n_outputs(&self) -> u64 {
        self.n_timesteps / self.dd
    }

    /// Number of restart steps `n_r = ⌊n / Δr⌋`.
    pub fn n_restarts(&self) -> u64 {
        self.n_timesteps / self.dr
    }

    /// Output steps per restart interval (`Δr/Δd`) — the "cache block
    /// size" analogy of §II-A.
    pub fn outputs_per_restart(&self) -> u64 {
        (self.dr / self.dd).max(1)
    }

    /// Total output data volume in GiB.
    pub fn total_output_gib(&self) -> f64 {
        self.n_outputs() as f64 * self.output_gib
    }

    /// Total restart data volume in GiB.
    pub fn total_restart_gib(&self) -> f64 {
        self.n_restarts() as f64 * self.restart_gib
    }

    /// Wall-clock hours to simulate `output_steps` output steps.
    pub fn sim_hours(&self, output_steps: u64) -> f64 {
        output_steps as f64 * self.tau_sim_secs / 3600.0
    }

    /// `C_sim(O, P) = O · tau_sim(P) · P · c_c` (§V).
    pub fn csim(&self, output_steps: u64, rates: &Rates) -> f64 {
        self.sim_hours(output_steps) * self.nodes as f64 * rates.compute_per_node_hour
    }

    /// `C_store(F, s, Δt) = F · s · Δt · c_s` (§V), with `F·s` in GiB
    /// and `Δt` in months.
    pub fn cstore(gib: f64, months: f64, rates: &Rates) -> f64 {
        gib * months * rates.storage_per_gib_month
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmo_calibration_matches_paper() {
        let sc = Scenario::cosmo_paper(8.0);
        assert_eq!(sc.dd, 15);
        assert_eq!(sc.dr, 1440, "8 h of 20 s timesteps");
        assert_eq!(sc.outputs_per_restart(), 96);
        // ~50 TiB of output.
        assert!((sc.total_output_gib() - 50.0 * 1024.0).abs() < 10.0);
    }

    #[test]
    fn restart_space_matches_fig15_annotations() {
        // Fig. 15b/c x-axis: restart space 6.33/3.16/1.58/0.79 TiB for
        // Δr = 4/8/16/32 h. Allow a few percent (the paper rounds its
        // step counts differently).
        for (dr_h, paper_tib) in [(4.0, 6.33), (8.0, 3.16), (16.0, 1.58), (32.0, 0.79)] {
            let sc = Scenario::cosmo_paper(dr_h);
            let tib = sc.total_restart_gib() / 1024.0;
            let rel = (tib - paper_tib).abs() / paper_tib;
            assert!(rel < 0.05, "Δr={dr_h}h: {tib:.2} TiB vs paper {paper_tib}");
        }
    }

    #[test]
    fn initial_simulation_cost_is_about_10k() {
        // n_o ≈ 8533 steps × (20/3600) h × 100 nodes × 2.07 $ ≈ 9.8 k$.
        let sc = Scenario::cosmo_paper(8.0);
        let c = sc.csim(sc.n_outputs(), &AZURE);
        assert!((9_000.0..11_000.0).contains(&c), "got {c}");
    }

    #[test]
    fn storage_cost_scales_linearly() {
        let c1 = Scenario::cstore(1000.0, 12.0, &AZURE);
        let c2 = Scenario::cstore(1000.0, 24.0, &AZURE);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        assert!((c1 - 1000.0 * 12.0 * 0.06).abs() < 1e-9);
    }

    #[test]
    fn dr_is_never_below_dd() {
        let sc = Scenario::cosmo_paper(0.01);
        assert!(sc.dr >= sc.dd);
    }
}
