//! Table I: mapping of data-access operations to I/O libraries, as
//! realized by the `simfs_core::intercept` facade.
//!
//! `cargo run -p simfs-bench --bin table01_api_mapping`

use simfs_bench::Table;
use simfs_core::intercept::TABLE_I;

fn main() {
    let mut t = Table::new(
        "Table I — mapping data access operations to I/O libraries",
        &["call", "(P)NetCDF", "(P)HDF5", "ADIOS"],
    );
    for row in TABLE_I {
        t.row(vec![
            row.call.to_string(),
            row.netcdf.to_string(),
            row.hdf5.to_string(),
            row.adios.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nfacade entry points: simfs_core::intercept::{{netcdf, hdf5, adios}} over VirtualFs"
    );
}
