//! Property tests: every policy against shared invariants, LRU against a
//! brute-force oracle, and the byte-budget manager against its contract.

use proptest::prelude::*;
use simcache::{policy_by_name, CacheSim, Policy, PAPER_POLICIES};
use std::collections::HashSet;

/// Operations applied to a policy under test.
#[derive(Clone, Debug)]
enum Op {
    Access(u64),
    Evict,
    EvictWithPins(Vec<u64>),
    Remove(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..key_space).prop_map(Op::Access),
        2 => Just(Op::Evict),
        1 => prop::collection::vec(0..key_space, 0..4).prop_map(Op::EvictWithPins),
        1 => (0..key_space).prop_map(Op::Remove),
    ]
}

/// Drives any policy through an operation sequence while mirroring
/// residency in a `HashSet`, checking the membership contract at every
/// step.
fn check_policy_contract(mut policy: Box<dyn Policy + Send>, ops: &[Op], costs: &[u64]) {
    let mut resident: HashSet<u64> = HashSet::new();
    for op in ops {
        match op {
            Op::Access(k) => {
                if resident.contains(k) {
                    policy.on_hit(*k);
                } else {
                    let cost = costs[(*k as usize) % costs.len()];
                    policy.on_insert(*k, cost);
                    resident.insert(*k);
                }
            }
            Op::Evict => {
                if let Some(v) = policy.evict(&|_| false) {
                    assert!(resident.remove(&v), "evicted non-resident {v}");
                } else {
                    assert!(resident.is_empty(), "evict=None with residents");
                }
            }
            Op::EvictWithPins(pins) => {
                let pinset: HashSet<u64> = pins.iter().copied().collect();
                let pinned = move |k: u64| pinset.contains(&k);
                if let Some(v) = policy.evict(&pinned) {
                    assert!(!pins.contains(&v), "evicted pinned key {v}");
                    assert!(resident.remove(&v), "evicted non-resident {v}");
                } else {
                    // Every resident key must be pinned.
                    assert!(
                        resident.iter().all(|k| pins.contains(k)),
                        "evict=None but unpinned residents exist"
                    );
                }
            }
            Op::Remove(k) => {
                policy.on_remove(*k);
                resident.remove(k);
            }
        }
        assert_eq!(policy.len(), resident.len(), "len drifted from history");
        for k in &resident {
            assert!(policy.contains(*k), "resident {k} reported absent");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All five paper policies (plus FIFO) satisfy the membership/pinning
    /// contract under arbitrary operation sequences.
    #[test]
    fn all_policies_respect_contract(
        ops in prop::collection::vec(op_strategy(24), 1..300),
        costs in prop::collection::vec(1u64..50, 1..8),
    ) {
        for name in PAPER_POLICIES.iter().chain(["FIFO"].iter()) {
            let policy = policy_by_name(name, 8).unwrap();
            check_policy_contract(policy, &ops, &costs);
        }
    }

    /// O(1) LRU matches a brute-force Vec-based oracle exactly.
    #[test]
    fn lru_matches_oracle(ops in prop::collection::vec(op_strategy(16), 1..300)) {
        let mut policy = policy_by_name("lru", 8).unwrap();
        let mut oracle: Vec<u64> = Vec::new(); // front = LRU
        for op in &ops {
            match op {
                Op::Access(k) => {
                    if let Some(pos) = oracle.iter().position(|x| x == k) {
                        policy.on_hit(*k);
                        oracle.remove(pos);
                        oracle.push(*k);
                    } else {
                        policy.on_insert(*k, 1);
                        oracle.push(*k);
                    }
                }
                Op::Evict => {
                    let got = policy.evict(&|_| false);
                    let want = if oracle.is_empty() {
                        None
                    } else {
                        Some(oracle.remove(0))
                    };
                    prop_assert_eq!(got, want);
                }
                Op::EvictWithPins(pins) => {
                    let pinset: HashSet<u64> = pins.iter().copied().collect();
                    let pinned = move |k: u64| pinset.contains(&k);
                    let got = policy.evict(&pinned);
                    let want_pos = oracle.iter().position(|k| !pins.contains(k));
                    let want = want_pos.map(|p| oracle.remove(p));
                    prop_assert_eq!(got, want);
                }
                Op::Remove(k) => {
                    policy.on_remove(*k);
                    oracle.retain(|x| x != k);
                }
            }
        }
    }

    /// The manager never exceeds its budget unless pins force it, and its
    /// byte accounting matches entry history.
    #[test]
    fn cache_sim_budget_invariant(
        name in prop::sample::select(vec!["lru", "arc", "lirs", "bcl", "dcl", "fifo"]),
        accesses in prop::collection::vec((0u64..32, 1u64..5), 1..200),
        capacity_units in 2u64..10,
    ) {
        let unit = 100u64;
        let capacity = capacity_units * unit;
        let mut cache = CacheSim::new(policy_by_name(name, capacity_units as usize).unwrap(), capacity);
        let mut pinned_now: Vec<u64> = Vec::new();
        for (i, (key, cost)) in accesses.iter().enumerate() {
            if !cache.access(*key) {
                cache.insert(*key, unit, *cost);
            }
            // Pin every 7th access, unpin when 3 pins accumulate.
            if i % 7 == 0 && cache.contains(*key) && !pinned_now.contains(key) {
                cache.pin(*key);
                pinned_now.push(*key);
            }
            if pinned_now.len() > 3 {
                let k = pinned_now.remove(0);
                if cache.contains(k) {
                    cache.unpin(k);
                }
            }
            let pinned_bytes = pinned_now.iter().filter(|k| cache.contains(**k)).count() as u64 * unit;
            prop_assert!(
                cache.used_bytes() <= capacity.max(pinned_bytes + unit),
                "budget exceeded beyond pin pressure: used={} cap={}",
                cache.used_bytes(),
                capacity
            );
            prop_assert_eq!(cache.used_bytes(), cache.len() as u64 * unit);
        }
    }

    /// Uniform costs make BCL and DCL behave exactly like LRU.
    #[test]
    fn cost_policies_reduce_to_lru_with_uniform_costs(
        ops in prop::collection::vec(op_strategy(16), 1..200),
    ) {
        for name in ["bcl", "dcl"] {
            let mut cost_policy = policy_by_name(name, 8).unwrap();
            let mut lru = policy_by_name("lru", 8).unwrap();
            for op in &ops {
                match op {
                    Op::Access(k) => {
                        let resident = lru.contains(*k);
                        prop_assert_eq!(resident, cost_policy.contains(*k));
                        if resident {
                            lru.on_hit(*k);
                            cost_policy.on_hit(*k);
                        } else {
                            lru.on_insert(*k, 5);
                            cost_policy.on_insert(*k, 5);
                        }
                    }
                    Op::Evict => {
                        prop_assert_eq!(lru.evict(&|_| false), cost_policy.evict(&|_| false));
                    }
                    Op::EvictWithPins(pins) => {
                        let pinset: HashSet<u64> = pins.iter().copied().collect();
                        let p1 = pinset.clone();
                        let a = lru.evict(&move |k| p1.contains(&k));
                        let p2 = pinset.clone();
                        let b = cost_policy.evict(&move |k| p2.contains(&k));
                        prop_assert_eq!(a, b);
                    }
                    Op::Remove(k) => {
                        lru.on_remove(*k);
                        cost_policy.on_remove(*k);
                    }
                }
            }
        }
    }
}
