// Fixture: duplicate wire tag value inside one family. A miniature
// wire.rs shape; REQ_PIN and REQ_UNPIN collide on 2. Not compiled —
// consumed by include_str! in tests.

pub mod tag {
    pub const REQ_HELLO: u8 = 0;
    pub const REQ_PIN: u8 = 2;
    pub const REQ_UNPIN: u8 = 2; // <-- duplicate value
    pub const RESP_OK: u8 = 0;
}

impl Request {
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Request::Hello => buf.put_u8(tag::REQ_HELLO),
            Request::Pin => buf.put_u8(tag::REQ_PIN),
            Request::Unpin => buf.put_u8(tag::REQ_UNPIN),
        }
    }
    pub fn decode(mut buf: &[u8]) -> io::Result<Request> {
        match take_u8(&mut buf)? {
            tag::REQ_HELLO => Ok(Request::Hello),
            tag::REQ_PIN => Ok(Request::Pin),
            tag::REQ_UNPIN => Ok(Request::Unpin),
            other => Err(bad_tag(other)),
        }
    }
}

impl Response {
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Response::Ok => buf.put_u8(tag::RESP_OK),
        }
    }
    pub fn decode(mut buf: &[u8]) -> io::Result<Response> {
        match take_u8(&mut buf)? {
            tag::RESP_OK => Ok(Response::Ok),
            other => Err(bad_tag(other)),
        }
    }
}
