//! Property tests for the Data Virtualizer and the model math.

use proptest::prelude::*;
use simfs_core::dv::{
    shard_cfg, ClusterMember, DataVirtualizer, DvAction, DvEvent, DvRouter, EventRoute,
    LaunchReason, ShardedDv,
};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::prefetch::{AccessLog, AccessRecord};
use simfs_core::replay::replay;
use simkit::SimTime;
use std::collections::{HashMap, HashSet};
use std::ops::RangeInclusive;

/// Event generator over a small key/client/sim space so streams hit
/// every DV code path (hits, misses, productions for both live and
/// stale sims, failures, departures).
fn arb_event() -> impl Strategy<Value = DvEvent> {
    prop_oneof![
        4 => (1u64..6, 1u64..30).prop_map(|(client, key)| DvEvent::Acquire { client, key }),
        3 => (1u64..6, 1u64..30).prop_map(|(client, key)| DvEvent::Release { client, key }),
        1 => (1u64..10).prop_map(|sim| DvEvent::SimStarted { sim }),
        3 => (1u64..10, 1u64..30, 1u64..500).prop_map(|(sim, key, size)| {
            DvEvent::FileProduced { sim, key, size }
        }),
        1 => (1u64..10).prop_map(|sim| DvEvent::SimFinished { sim }),
        1 => (1u64..10).prop_map(|sim| DvEvent::SimFailed { sim }),
        1 => (1u64..6).prop_map(|client| DvEvent::ClientGone { client }),
    ]
}

/// Runs every launch in `pending` to synchronous completion (FIFO, so
/// launch order is the comparison order), recording `(range, reason)`
/// per launch — including launches that only drain out of the `s_max`
/// queue when an earlier sim finishes.
fn settle(
    dv: &mut DataVirtualizer,
    mut pending: Vec<DvAction>,
    now: SimTime,
    launches: &mut Vec<(RangeInclusive<u64>, LaunchReason)>,
) {
    let mut i = 0;
    while i < pending.len() {
        let action = pending[i].clone();
        i += 1;
        if let DvAction::Launch {
            sim, keys, reason, ..
        } = action
        {
            launches.push((keys.clone(), reason));
            pending.extend(dv.handle(now, DvEvent::SimStarted { sim }));
            for k in keys {
                pending.extend(dv.handle(
                    now,
                    DvEvent::FileProduced { sim, key: k, size: 10 },
                ));
            }
            pending.extend(dv.handle(now, DvEvent::SimFinished { sim }));
        }
    }
}

/// The scan of `keys` driven the pre-digest way: every access goes
/// through `on_acquire`, which feeds the agent inline.
fn run_full_observation_scan(
    cfg: &ContextCfg,
    keys: &[u64],
) -> (DataVirtualizer, Vec<(RangeInclusive<u64>, LaunchReason)>) {
    let mut dv = DataVirtualizer::new(cfg.clone());
    let mut launches = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        let now = SimTime::from_secs(1 + i as u64);
        let acts = dv.handle(now, DvEvent::Acquire { client: 1, key });
        settle(&mut dv, acts, now, &mut launches);
    }
    (dv, launches)
}

/// The same scan driven the daemon's digest-decoupled way: hits bypass
/// the DV entirely (the lock-free fast path) and only leave a record;
/// misses go through `on_acquire` (which no longer observes); records
/// drain into `ingest_digest` every `drain_every` accesses and after
/// every miss — the piggyback + tick schedule.
fn run_digest_scan(
    cfg: &ContextCfg,
    keys: &[u64],
    log_capacity: usize,
    drain_every: usize,
) -> (DataVirtualizer, Vec<(RangeInclusive<u64>, LaunchReason)>) {
    let mut dv = DataVirtualizer::new(cfg.clone());
    dv.set_digest_observation(true);
    let mut log = AccessLog::new(log_capacity);
    let mut scratch = Vec::new();
    let mut launches = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        let now = SimTime::from_secs(1 + i as u64);
        let missed = !dv.is_cached(key);
        if missed {
            let acts = dv.handle(now, DvEvent::Acquire { client: 1, key });
            settle(&mut dv, acts, now, &mut launches);
        }
        // Productions in this harness complete at the same SimTime as
        // the acquire, so every record's epoch is a true ready point —
        // matching the inline path's ready-to-next-acquire sampling.
        log.push(AccessRecord {
            client: 1,
            key,
            epoch: now.as_nanos(),
            ready: true,
        });
        if missed || (i + 1) % drain_every == 0 || i + 1 == keys.len() {
            scratch.clear();
            let dropped = log.drain_into(&mut scratch);
            dv.note_digest_dropped(dropped);
            let mut acts = Vec::new();
            dv.ingest_digest(now, &scratch, dropped, &|_| true, &mut acts);
            settle(&mut dv, acts, now, &mut launches);
        }
    }
    (dv, launches)
}

fn scan_cfg(n_outputs: u64, smax: u32) -> ContextCfg {
    let steps = StepMath::new(1, 4, n_outputs);
    // Cache big enough that the scan never evicts: pollution resets off
    // the table, so the comparison isolates the observation plumbing.
    ContextCfg::new("digest-eq", steps, 10, n_outputs * 100)
        .with_policy("lru")
        .with_smax(smax)
        .with_prefetch(true)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The digest contract's equivalence half: a strided scan served
    /// through the lock-free fast path with lossless digest drains
    /// reaches exactly the launch decisions — ranges, reasons, order —
    /// of the pre-digest full-observation path, and the same agent
    /// state. (The §IV-B planner is driven purely by what it observes,
    /// so identical replayed streams must produce identical plans.)
    #[test]
    fn digest_drained_scan_matches_full_observation(
        n_intervals in 4u64..16,
        stride in 1u64..3,
        backward in any::<bool>(),
        smax in 1u32..5,
    ) {
        let n = n_intervals * 4;
        let cfg = scan_cfg(n, smax);
        let mut keys: Vec<u64> = (1..=n).step_by(stride as usize).collect();
        if backward {
            keys.reverse();
        }

        let (full_dv, full_launches) = run_full_observation_scan(&cfg, &keys);
        // Capacity covers the whole scan and a drain follows every
        // access: the lossless limit.
        let (digest_dv, digest_launches) =
            run_digest_scan(&cfg, &keys, keys.len() + 1, 1);

        prop_assert_eq!(&digest_launches, &full_launches);
        let (f, d) = (full_dv.stats(), digest_dv.stats());
        prop_assert_eq!(d.restarts, f.restarts);
        prop_assert_eq!(d.prefetch_launches, f.prefetch_launches);
        prop_assert_eq!(d.kills, f.kills);
        prop_assert_eq!(d.pollution_resets, f.pollution_resets);
        prop_assert_eq!(d.digest_dropped, 0);
        prop_assert_eq!(d.digest_replayed, keys.len() as u64);
        prop_assert_eq!(digest_dv.active_sims(), full_dv.active_sims());
        prop_assert_eq!(digest_dv.queued_launches(), full_dv.queued_launches());
    }

    /// The digest contract's lossy half: a tiny ring with sparse drains
    /// loses records (counted), which may delay or skip prefetch
    /// triggers and even fake a stride jump at a drop boundary — but it
    /// can only *degrade* the agents, never corrupt the DV: every miss
    /// still resolves, launches stay inside the timeline and inside
    /// `s_max`, the system quiesces, and the surviving (contiguous,
    /// order-preserved) suffix of the stream still re-confirms the
    /// trajectory.
    #[test]
    fn digest_overflow_degrades_but_never_corrupts(
        n_intervals in 6u64..16,
        // B = 4 scans drain at every interval-opening miss, i.e. after
        // at most 4 records: capacities below that guarantee overflow.
        log_capacity in 2usize..4,
        drain_every in 4usize..12,
        smax in 1u32..5,
    ) {
        let n = n_intervals * 4;
        let cfg = scan_cfg(n, smax);
        let keys: Vec<u64> = (1..=n).collect();
        let (dv, launches) = run_digest_scan(&cfg, &keys, log_capacity, drain_every);

        let stats = dv.stats();
        prop_assert!(stats.digest_dropped > 0, "parameters must force drops");
        prop_assert_eq!(
            stats.digest_replayed + stats.digest_dropped,
            keys.len() as u64,
            "every record is replayed or counted dropped"
        );
        for (range, _) in &launches {
            prop_assert!(*range.start() >= 1 && *range.end() <= n,
                "launch {range:?} outside the timeline");
        }
        // Degradation bound: with loss, the planner can only see fewer
        // triggers than full observation, never invent extra coverage.
        prop_assert!(stats.scheduled_steps <= 2 * n,
            "lossy observation over-planned: {} steps for a {}-step scan",
            stats.scheduled_steps, n);
        // The scan itself always completes: every key materialized.
        for key in 1..=n {
            prop_assert!(dv.is_cached(key), "scan left key {key} unproduced");
        }
        prop_assert_eq!(dv.active_sims(), 0);
        prop_assert_eq!(dv.queued_launches(), 0);
    }

    /// R(d_i) and the resim range satisfy the §II-A contract for every
    /// cadence.
    #[test]
    fn step_math_contract(
        dd in 1u64..20,
        intervals in 1u64..20,
        n_intervals in 1u64..50,
        key_sel in any::<prop::sample::Index>(),
    ) {
        let dr = dd * intervals;
        let steps = StepMath::new(dd, dr, dr * n_intervals);
        let n = steps.n_outputs();
        prop_assume!(n >= 1);
        let key = 1 + key_sel.index(n as usize) as u64;

        // Restart mapping bounds.
        let r = steps.restart_before(key);
        prop_assert!(r * dr <= key * dd);
        prop_assert!((r + 1) * dr > key * dd || (key * dd).is_multiple_of(dr));

        // The resim range contains the key and stays in the timeline.
        let range = steps.resim_range(key);
        prop_assert!(range.contains(&key));
        prop_assert!(*range.start() >= 1 && *range.end() <= n);

        // Cost is the distance from the previous restart boundary.
        let cost = steps.miss_cost(key);
        prop_assert!(cost < steps.outputs_per_interval());
        prop_assert_eq!(cost == 0, key.is_multiple_of(steps.outputs_per_interval()));
    }

    /// Replay invariants: every miss restarts at most one simulation,
    /// simulated steps bound the misses, hits+misses = valid accesses.
    #[test]
    fn replay_accounting(
        accesses in prop::collection::vec(0u64..200, 1..400),
        cache_steps in 2u64..100,
        policy in prop::sample::select(vec!["lru", "arc", "lirs", "bcl", "dcl"]),
    ) {
        let steps = StepMath::new(1, 8, 160); // N = 160, B = 8
        let ctx = ContextCfg::new("prop", steps, 10, cache_steps * 10)
            .with_policy(policy);
        let valid = accesses.iter().filter(|&&k| (1..=160).contains(&k)).count() as u64;
        let stats = replay(&ctx, accesses.iter().copied());
        prop_assert_eq!(stats.hits + stats.misses, valid);
        prop_assert_eq!(stats.restarts, stats.misses);
        prop_assert!(stats.simulated_steps >= stats.misses);
        prop_assert!(stats.simulated_steps <= stats.misses * 8);
    }

    /// The DV never evicts a pinned step, never double-launches a key,
    /// and keeps `active_sims <= s_max` under arbitrary acquire/release
    /// interleavings with immediate production. Actions are executed
    /// depth-first in emission order — exactly how the daemon applies
    /// them — so the on-disk mirror tracks eviction/re-production
    /// churn faithfully.
    #[test]
    fn dv_invariants_under_random_workloads(
        ops in prop::collection::vec((0u64..50, any::<bool>()), 1..150),
        smax in 1u32..5,
        cache_steps in 2u64..20,
    ) {
        struct Mirror {
            pinned: HashMap<u64, u64>,
            on_disk: HashSet<u64>,
            ready_for_client: HashSet<u64>,
            smax: u32,
        }

        /// Applies one action (and everything it triggers) in order.
        fn exec(
            dv: &mut DataVirtualizer,
            m: &mut Mirror,
            now: SimTime,
            action: DvAction,
        ) -> Result<(), proptest::test_runner::TestCaseError> {
            match action {
                DvAction::Launch { sim, keys, .. } => {
                    prop_assert!(dv.active_sims() <= m.smax as usize);
                    for a in dv.handle(now, DvEvent::SimStarted { sim }) {
                        exec(dv, m, now, a)?;
                    }
                    for k in keys.clone() {
                        m.on_disk.insert(k);
                        for a in dv.handle(now, DvEvent::FileProduced { sim, key: k, size: 10 }) {
                            exec(dv, m, now, a)?;
                        }
                    }
                    for a in dv.handle(now, DvEvent::SimFinished { sim }) {
                        exec(dv, m, now, a)?;
                    }
                }
                DvAction::Evict { key } => {
                    prop_assert_eq!(
                        m.pinned.get(&key).copied().unwrap_or(0),
                        0,
                        "evicted a pinned step"
                    );
                    m.on_disk.remove(&key);
                }
                DvAction::NotifyReady { key, .. } => {
                    prop_assert!(m.on_disk.contains(&key), "ready for a missing step");
                    m.ready_for_client.insert(key);
                }
                DvAction::NotifyFailed { .. } | DvAction::Kill { .. } => {}
            }
            Ok(())
        }

        let steps = StepMath::new(1, 4, 40);
        let ctx = ContextCfg::new("prop", steps, 10, cache_steps * 10)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(true);
        let mut dv = DataVirtualizer::new(ctx);
        let mut m = Mirror {
            pinned: HashMap::new(),
            on_disk: HashSet::new(),
            ready_for_client: HashSet::new(),
            smax,
        };
        let mut now_ns = 0u64;

        for (key_raw, do_release) in ops {
            now_ns += 1;
            let now = SimTime::from_nanos(now_ns);
            let key = 1 + key_raw % 40;
            if do_release {
                if m.pinned.get(&key).copied().unwrap_or(0) > 0 {
                    *m.pinned.get_mut(&key).unwrap() -= 1;
                    for a in dv.handle(now, DvEvent::Release { client: 1, key }) {
                        exec(&mut dv, &mut m, now, a)?;
                    }
                }
            } else {
                m.ready_for_client.remove(&key);
                for a in dv.handle(now, DvEvent::Acquire { client: 1, key }) {
                    exec(&mut dv, &mut m, now, a)?;
                }
                // The acquire must have resolved (synchronous production)
                // and the step must still be on disk: it is pinned now.
                prop_assert!(
                    m.ready_for_client.contains(&key),
                    "acquire of {} never became ready",
                    key
                );
                prop_assert!(m.on_disk.contains(&key), "ready step {} missing", key);
                *m.pinned.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Liveness at scale: a long random acquire/release session always
    /// terminates with zero queued launches once all sims finish.
    #[test]
    fn dv_drains_launch_queue(keys in prop::collection::vec(1u64..100, 1..100)) {
        let steps = StepMath::new(1, 10, 100);
        let ctx = ContextCfg::new("drain", steps, 1, 1000)
            .with_smax(1)
            .with_prefetch(true);
        let mut dv = DataVirtualizer::new(ctx);
        let mut t = 0u64;
        let mut worklist: Vec<DvAction> = Vec::new();
        for key in keys {
            t += 1;
            worklist.extend(dv.handle(SimTime::from_nanos(t), DvEvent::Acquire { client: 1, key }));
            // Run every launch to completion before the next access.
            while let Some(action) = worklist.pop() {
                if let DvAction::Launch { sim, keys, .. } = action {
                    for k in keys {
                        worklist.extend(dv.handle(
                            SimTime::from_nanos(t),
                            DvEvent::FileProduced { sim, key: k, size: 1 },
                        ));
                    }
                    worklist.extend(dv.handle(SimTime::from_nanos(t), DvEvent::SimFinished { sim }));
                }
            }
            t += 1;
            dv.handle(SimTime::from_nanos(t), DvEvent::Release { client: 1, key });
        }
        prop_assert_eq!(dv.active_sims(), 0);
        prop_assert_eq!(dv.queued_launches(), 0);
    }

    /// The scratch-buffer API is observationally identical to the
    /// allocating one: `handle_into` with one reused buffer produces
    /// exactly the action sequences `handle` does, event for event, over
    /// arbitrary streams (including nonsense events for unknown
    /// sims/clients).
    #[test]
    fn handle_into_matches_handle(
        events in prop::collection::vec(arb_event(), 1..200),
        cache_steps in 2u64..20,
        smax in 1u32..5,
        prefetch in any::<bool>(),
    ) {
        let steps = StepMath::new(1, 4, 40);
        let mk = || {
            DataVirtualizer::new(
                ContextCfg::new("equiv", steps, 10, cache_steps * 10)
                    .with_policy("lru")
                    .with_smax(smax)
                    .with_prefetch(prefetch),
            )
        };
        let mut alloc_dv = mk();
        let mut scratch_dv = mk();
        let mut scratch = Vec::new();
        for (i, event) in events.into_iter().enumerate() {
            let now = SimTime::from_nanos(1 + i as u64);
            let fresh = alloc_dv.handle(now, event.clone());
            scratch.clear();
            scratch_dv.handle_into(now, event, &mut scratch);
            prop_assert_eq!(&fresh, &scratch);
        }
        prop_assert_eq!(alloc_dv.stats().hits, scratch_dv.stats().hits);
        prop_assert_eq!(alloc_dv.stats().misses, scratch_dv.stats().misses);
        prop_assert_eq!(alloc_dv.stats().restarts, scratch_dv.stats().restarts);
        prop_assert_eq!(alloc_dv.stats().kills, scratch_dv.stats().kills);
        prop_assert_eq!(alloc_dv.stats().evictions, scratch_dv.stats().evictions);
        prop_assert_eq!(alloc_dv.active_sims(), scratch_dv.active_sims());
        prop_assert_eq!(alloc_dv.queued_launches(), scratch_dv.queued_launches());
    }

    /// The sharding contract: a 4-shard [`ShardedDv`] fed an arbitrary
    /// interleaved event stream behaves exactly like four independent
    /// unsharded DVs — each constructed with the 1/N context slice and
    /// the shard's sim-id stride — fed the per-shard subsequences, with
    /// `ClientGone` broadcast in shard order. This pins capacity
    /// splitting, `s_max` splitting, sim-id striding, key/sim routing
    /// and fan-out order against drift.
    #[test]
    fn sharded_dv_equivalent_to_per_shard_unsharded(
        events in prop::collection::vec(arb_event(), 1..200),
        cache_steps in 2u64..20,
        smax in 1u32..8,
        prefetch in any::<bool>(),
    ) {
        const N: u32 = 4;
        let steps = StepMath::new(1, 4, 40);
        let cfg = ContextCfg::new("shardeq", steps, 10, cache_steps * 10)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(prefetch);
        let mut sharded = ShardedDv::new(cfg.clone(), N);
        let router = sharded.router();
        let per_shard = shard_cfg(&cfg, N);
        let mut reference: Vec<DataVirtualizer> = (0..N)
            .map(|s| {
                DataVirtualizer::new(per_shard.clone())
                    .with_sim_ids(s as u64 + 1, N as u64)
            })
            .collect();

        for (i, event) in events.into_iter().enumerate() {
            let now = SimTime::from_nanos(1 + i as u64);
            let got = sharded.handle(now, event.clone());
            let mut want = Vec::new();
            match router.route(&event) {
                EventRoute::Shard(s) => {
                    want.extend(reference[s].handle(now, event));
                }
                EventRoute::Broadcast => {
                    for shard in reference.iter_mut() {
                        want.extend(shard.handle(now, event.clone()));
                    }
                }
            }
            prop_assert_eq!(&got, &want);
        }

        let total = sharded.stats();
        let mut want_hits = 0;
        let mut want_misses = 0;
        let mut want_restarts = 0;
        let mut want_evictions = 0;
        let mut want_kills = 0;
        for shard in &reference {
            let s = shard.stats();
            want_hits += s.hits;
            want_misses += s.misses;
            want_restarts += s.restarts;
            want_evictions += s.evictions;
            want_kills += s.kills;
        }
        prop_assert_eq!(total.hits, want_hits);
        prop_assert_eq!(total.misses, want_misses);
        prop_assert_eq!(total.restarts, want_restarts);
        prop_assert_eq!(total.evictions, want_evictions);
        prop_assert_eq!(total.kills, want_kills);
    }

    /// Shard isolation: when every event routes to one shard (keys
    /// confined to that shard's restart intervals), the 4-shard DV is
    /// observably equivalent — responses, launches, evictions, stats
    /// totals — to a single unsharded DV given that shard's context
    /// slice. The other shards contribute nothing, so key-range
    /// sharding cannot change single-range semantics.
    #[test]
    fn sharded_dv_matches_unsharded_on_same_shard_events(
        picks in prop::collection::vec(
            (0u8..8, 1u64..6, 0u64..12, 1u64..10, 1u64..500),
            1..200,
        ),
        cache_steps in 2u64..20,
        smax in 1u32..8,
        prefetch in any::<bool>(),
    ) {
        const N: u32 = 4;
        // B = 4, 12 intervals; shard 0 owns intervals 0, 4 and 8, i.e.
        // keys 1..=4, 17..=20, 33..=36.
        let steps = StepMath::new(1, 4, 48);
        let shard0_key = |raw: u64| {
            let interval = [0u64, 4, 8][(raw % 3) as usize];
            interval * 4 + 1 + raw % 4
        };
        let events: Vec<DvEvent> = picks
            .into_iter()
            .map(|(kind, client, key_raw, sim, size)| match kind {
                0..=2 => DvEvent::Acquire { client, key: shard0_key(key_raw) },
                3..=4 => DvEvent::Release { client, key: shard0_key(key_raw) },
                5 => DvEvent::FileProduced { sim, key: shard0_key(key_raw), size },
                6 => DvEvent::SimFinished { sim },
                _ => DvEvent::ClientGone { client },
            })
            .collect();

        let cfg = ContextCfg::new("shardiso", steps, 10, N as u64 * cache_steps * 10)
            .with_policy("lru")
            .with_smax(N * smax)
            .with_prefetch(prefetch);
        let mut sharded = ShardedDv::new(cfg.clone(), N);
        // The lone reference DV gets exactly shard 0's slice: 1/N of
        // the budget and s_max, and shard 0's sim-id stride.
        let mut reference =
            DataVirtualizer::new(shard_cfg(&cfg, N)).with_sim_ids(1, N as u64);

        for (i, event) in events.into_iter().enumerate() {
            let now = SimTime::from_nanos(1 + i as u64);
            let got = sharded.handle(now, event.clone());
            let want = reference.handle(now, event);
            prop_assert_eq!(&got, &want);
        }
        let total = sharded.stats();
        let want = reference.stats();
        prop_assert_eq!(total.hits, want.hits);
        prop_assert_eq!(total.misses, want.misses);
        prop_assert_eq!(total.restarts, want.restarts);
        prop_assert_eq!(total.evictions, want.evictions);
        prop_assert_eq!(total.produced_steps, want.produced_steps);
        prop_assert_eq!(sharded.active_sims(), reference.active_sims());
        prop_assert_eq!(sharded.queued_launches(), reference.queued_launches());
    }

    /// The multi-daemon contract: a 3-daemon cluster — each member an
    /// unsharded [`ShardedDv::cluster_member`] receiving only the
    /// events DVLib's interval hash routes to it, with `ClientGone`
    /// fanned out to every member — behaves exactly like the 3-shard
    /// [`ShardedDv`] fed the interleaved stream. This pins the
    /// daemon-level composition (per-member budget slice, cluster-wide
    /// sim-id striding, interval routing, teardown fan-out order) to
    /// the intra-process reference the other equivalence tests verify.
    #[test]
    fn cluster_members_compose_to_sharded_dv(
        events in prop::collection::vec(arb_event(), 1..200),
        cache_steps in 2u64..20,
        smax in 1u32..8,
        prefetch in any::<bool>(),
    ) {
        const K: u32 = 3;
        let steps = StepMath::new(1, 4, 40);
        let cfg = ContextCfg::new("clustereq", steps, 10, cache_steps * 10)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(prefetch);
        let mut reference = ShardedDv::new(cfg.clone(), K);
        // DVLib's routing tier: the same interval-granular router the
        // intra-process shards use, one level up.
        let dvlib = DvRouter::new(steps, K);
        let mut members: Vec<ShardedDv> = (0..K)
            .map(|k| ShardedDv::cluster_member(cfg.clone(), 1, ClusterMember::new(k, K)))
            .collect();

        for (i, event) in events.into_iter().enumerate() {
            let now = SimTime::from_nanos(1 + i as u64);
            let want = reference.handle(now, event.clone());
            let mut got = Vec::new();
            match dvlib.route(&event) {
                EventRoute::Shard(k) => {
                    members[k].handle_into(now, event, &mut got);
                }
                EventRoute::Broadcast => {
                    for member in members.iter_mut() {
                        member.handle_into(now, event.clone(), &mut got);
                    }
                }
            }
            prop_assert_eq!(&got, &want);
        }

        let want = reference.stats();
        let mut got = simfs_core::dv::DvStats::default();
        for member in &members {
            got.accumulate(&member.stats());
        }
        prop_assert_eq!(got.hits, want.hits);
        prop_assert_eq!(got.misses, want.misses);
        prop_assert_eq!(got.restarts, want.restarts);
        prop_assert_eq!(got.evictions, want.evictions);
        prop_assert_eq!(got.kills, want.kills);
        prop_assert_eq!(got.produced_steps, want.produced_steps);
        let got_active: usize = members.iter().map(ShardedDv::active_sims).sum();
        prop_assert_eq!(got_active, reference.active_sims());
    }

    /// Local shards inside cluster members must compose to flat
    /// sharding: 2 members × 2 local shards each ≡ the flat 4-shard
    /// [`ShardedDv`] (member `k`'s local shard `s` is flat shard
    /// `s*2 + k`). This is the case the first cluster cut got wrong —
    /// hashing the *raw* interval locally leaves local shards whose
    /// index never intersects the member's residue class unreachable
    /// (member 0 of 2 only ever sees even intervals, so raw `% 2`
    /// never reaches local shard 1), stranding their budget slices;
    /// the local router must divide the cluster dimension out. The
    /// sizes are chosen with `gcd(K, n) > 1` precisely so raw hashing
    /// cannot accidentally coincide with the correct rule. Broadcast
    /// fan-out visits members (then locals) in a different order than
    /// the flat shard walk, so broadcast actions are compared as
    /// multisets.
    #[test]
    fn clustered_local_shards_compose_to_flat_sharding(
        events in prop::collection::vec(arb_event(), 1..200),
        cache_steps in 2u64..20,
        smax in 1u32..12,
        prefetch in any::<bool>(),
    ) {
        const K: u32 = 2;
        const N_LOCAL: u32 = 2;
        let steps = StepMath::new(1, 4, 40);
        let cfg = ContextCfg::new("clusterflat", steps, 10, cache_steps * 10)
            .with_policy("lru")
            .with_smax(smax)
            .with_prefetch(prefetch);
        let mut reference = ShardedDv::new(cfg.clone(), K * N_LOCAL);
        let dvlib = DvRouter::new(steps, K);
        let mut members: Vec<ShardedDv> = (0..K)
            .map(|k| ShardedDv::cluster_member(cfg.clone(), N_LOCAL, ClusterMember::new(k, K)))
            .collect();

        for (i, event) in events.into_iter().enumerate() {
            let now = SimTime::from_nanos(1 + i as u64);
            let want = reference.handle(now, event.clone());
            let mut got = Vec::new();
            match dvlib.route(&event) {
                EventRoute::Shard(k) => {
                    members[k].handle_into(now, event, &mut got);
                    prop_assert_eq!(&got, &want);
                }
                EventRoute::Broadcast => {
                    for member in members.iter_mut() {
                        member.handle_into(now, event.clone(), &mut got);
                    }
                    // Same actions, member-major order instead of
                    // flat-shard order: compare as multisets.
                    let mut got_keys: Vec<String> =
                        got.iter().map(|a| format!("{a:?}")).collect();
                    let mut want_keys: Vec<String> =
                        want.iter().map(|a| format!("{a:?}")).collect();
                    got_keys.sort();
                    want_keys.sort();
                    prop_assert_eq!(got_keys, want_keys);
                }
            }
        }

        let want = reference.stats();
        let mut got = simfs_core::dv::DvStats::default();
        for member in &members {
            got.accumulate(&member.stats());
        }
        prop_assert_eq!(got.hits, want.hits);
        prop_assert_eq!(got.misses, want.misses);
        prop_assert_eq!(got.restarts, want.restarts);
        prop_assert_eq!(got.evictions, want.evictions);
        prop_assert_eq!(got.produced_steps, want.produced_steps);
        let got_active: usize = members.iter().map(ShardedDv::active_sims).sum();
        prop_assert_eq!(got_active, reference.active_sims());
    }
}
