//! End-to-end daemon throughput and latency: N concurrent analysis
//! clients hammer a loopback daemon with hit-path `acquire`/`release`
//! pairs — the Fig. 4 control-message pattern that bounds how many
//! concurrent analyses one context can serve. Every pair is one full
//! request/response round trip through the wire codec, the client
//! routing table and the DV lock, so the numbers directly track the
//! front-end work in `server.rs`/`reactor.rs`.
//!
//! `cargo run --release -p simfs-bench --bin bench_daemon -- \
//!     [--frontend epoll|threads|both] \
//!     [--clients 1,2,4,8,16,32,128,256,1024] [--secs 2] \
//!     [--out BENCH_daemon.json]`
//!
//! Per point it records throughput plus p50/p99 round-trip latency, and
//! per front-end the daemon's thread count before any client connects
//! (the epoll reactor stays at shards + accept + reaper regardless of
//! client count; the threaded front-end adds one thread per client).
//! The JSON summary seeds the perf trajectory in `BENCH_daemon.json`.

use simbatch::ParallelismMap;
use simfs_core::client::SimfsClient;
use simfs_core::driver::{PatternDriver, SimDriver};
use simfs_core::model::{ContextCfg, StepMath};
use simfs_core::server::{DvServer, Frontend, ServerConfig, ThreadSimLauncher};
use simstore::{Data, Dataset, StorageArea};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const N_KEYS: u64 = 64;

fn step_bytes(key: u64) -> Vec<u8> {
    let mut ds = Dataset::new(key, key as f64);
    ds.set_attr("simulator", "synthetic");
    let field: Vec<f64> = (0..16).map(|i| (key * 31 + i) as f64).collect();
    ds.add_var("field", vec![16], Data::F64(field)).unwrap();
    ds.encode().to_vec()
}

fn start_daemon(dir: &std::path::Path, frontend: Frontend) -> (DvServer, StorageArea) {
    let _ = std::fs::remove_dir_all(dir);
    let storage = StorageArea::create(dir, u64::MAX).unwrap();
    let size = step_bytes(1).len() as u64;
    let ctx = ContextCfg::new(
        "bench-ctx",
        StepMath::new(1, 4, N_KEYS),
        size,
        u64::MAX / 4,
    )
    .with_prefetch(false)
    .with_smax(8);
    let launcher = Arc::new(ThreadSimLauncher::new(
        step_bytes,
        |key| PatternDriver::new("out-", ".sdf", 6).filename_of(key),
        Duration::from_millis(1),
        Duration::from_micros(200),
    ));
    let server = DvServer::start(
        ServerConfig {
            ctx,
            driver: Arc::new(
                PatternDriver::new("out-", ".sdf", 6)
                    .with_parallelism(ParallelismMap::unconstrained(1, 2)),
            ),
            storage: storage.clone(),
            launcher,
            checksums: HashMap::new(),
            frontend,
        },
        "127.0.0.1:0",
    )
    .unwrap();
    (server, storage)
}

/// Threads currently alive in this process (daemon threads + main,
/// sampled before any bench client exists).
fn process_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|entries| entries.count())
        .unwrap_or(0)
}

struct Point {
    round_trips: u64,
    elapsed: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// One point: `clients` threads, each looping a hit-path
/// `acquire([key])`/`release(key)` pair for `secs`, timing every round
/// trip. The measured window runs from barrier release to stop flag —
/// connect, handshake and teardown are excluded.
fn run_point(addr: std::net::SocketAddr, clients: usize, secs: f64) -> Point {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let stop = stop.clone();
        let start = start.clone();
        handles.push(std::thread::spawn(move || -> Vec<u64> {
            let mut client = SimfsClient::connect(addr, "bench-ctx").unwrap();
            // Spread clients over the key space so routing shards and
            // cache entries are all exercised.
            let mut key = 1 + (c as u64 * 17) % N_KEYS;
            let mut lat_ns = Vec::with_capacity(4096);
            start.wait();
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                let status = client.acquire(&[key]).unwrap();
                assert!(status.ok(), "hit-path acquire failed: {status:?}");
                client.release(key).unwrap();
                lat_ns.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                key = 1 + key % N_KEYS;
            }
            let _ = client.finalize();
            lat_ns
        }));
    }
    start.wait();
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(secs));
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed().as_secs_f64();
    let mut all_ns: Vec<u64> = Vec::new();
    for handle in handles {
        all_ns.extend(handle.join().unwrap());
    }
    let round_trips = all_ns.len() as u64;
    all_ns.sort_unstable();
    Point {
        round_trips,
        elapsed,
        p50_us: percentile_us(&all_ns, 0.50),
        p99_us: percentile_us(&all_ns, 0.99),
    }
}

fn frontend_name(frontend: Frontend) -> &'static str {
    match frontend {
        Frontend::Epoll => "epoll",
        Frontend::Threads => "threads",
    }
}

fn main() {
    let mut clients: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 128, 256, 1024];
    let mut secs = 2.0f64;
    let mut out = String::from("BENCH_daemon.json");
    let mut frontends: Vec<Frontend> = vec![Frontend::Threads, Frontend::Epoll];
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let val = args.next().unwrap_or_default();
        match flag.as_str() {
            "--clients" => {
                clients = val
                    .split(',')
                    .map(|s| s.trim().parse().expect("bad --clients"))
                    .collect();
            }
            "--secs" => secs = val.parse().expect("bad --secs"),
            "--out" => out = val,
            "--frontend" => {
                frontends = match val.as_str() {
                    "epoll" => vec![Frontend::Epoll],
                    "threads" => vec![Frontend::Threads],
                    "both" => vec![Frontend::Threads, Frontend::Epoll],
                    other => panic!("bad --frontend {other} (epoll|threads|both)"),
                };
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let mut lines = Vec::new();
    for &frontend in &frontends {
        let name = frontend_name(frontend);
        let dir = std::env::temp_dir().join(format!(
            "simfs-bench-daemon-{}-{}",
            name,
            std::process::id()
        ));
        let (server, _storage) = start_daemon(&dir, frontend);
        let addr = server.addr();

        // Materialize the whole timeline once so the measured loop is
        // pure hit-path control traffic (no re-simulations in the
        // timings).
        {
            let mut warm = SimfsClient::connect(addr, "bench-ctx").unwrap();
            let keys: Vec<u64> = (1..=N_KEYS).collect();
            let status = warm.acquire(&keys).unwrap();
            assert!(status.ok(), "warmup failed: {status:?}");
            for k in 1..=N_KEYS {
                warm.release(k).unwrap();
            }
            warm.finalize().unwrap();
        }
        // Let the warmup simulator threads wind down before counting.
        std::thread::sleep(Duration::from_millis(100));
        let daemon_threads = process_threads().saturating_sub(1); // minus main

        println!(
            "frontend {name}: {daemon_threads} daemon threads before clients"
        );
        println!(
            "{:>8} {:>12} {:>12} {:>10} {:>10}",
            "clients", "round_trips", "rtps", "p50_us", "p99_us"
        );
        for &n in &clients {
            let point = run_point(addr, n, secs);
            let rtps = point.round_trips as f64 / point.elapsed;
            println!(
                "{n:>8} {:>12} {rtps:>12.0} {:>10.1} {:>10.1}",
                point.round_trips, point.p50_us, point.p99_us
            );
            lines.push(format!(
                "    {{\"frontend\": \"{name}\", \"clients\": {n}, \"secs\": {:.3}, \
                 \"round_trips\": {}, \"rtps\": {rtps:.1}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"daemon_threads_before_clients\": {daemon_threads}}}",
                point.elapsed, point.round_trips, point.p50_us, point.p99_us
            ));
        }

        server.shutdown();
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let json = format!(
        "{{\n  \"bench\": \"daemon_acquire_release_roundtrips\",\n  \"keys\": {N_KEYS},\n  \"results\": [\n{}\n  ]\n}}\n",
        lines.join(",\n")
    );
    std::fs::write(&out, json).unwrap();
    println!("wrote {out}");
}
