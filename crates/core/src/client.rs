//! DVLib: the analysis-side client library (§III-C).
//!
//! The paper's API surface, in Rust form:
//!
//! | Paper call            | Here                                   |
//! |-----------------------|----------------------------------------|
//! | `SIMFS_Init`          | [`SimfsClient::connect`]               |
//! | `SIMFS_Finalize`      | [`SimfsClient::finalize`]              |
//! | `SIMFS_Acquire`       | [`SimfsClient::acquire`]               |
//! | `SIMFS_Acquire_nb`    | [`SimfsClient::acquire_nb`]            |
//! | `SIMFS_Release`       | [`SimfsClient::release`]               |
//! | `SIMFS_Wait`          | [`SimfsClient::wait`]                  |
//! | `SIMFS_Test`          | [`SimfsClient::test`]                  |
//! | `SIMFS_Waitsome`      | [`SimfsClient::waitsome`]              |
//! | `SIMFS_Testsome`      | [`SimfsClient::testsome`]              |
//! | `SIMFS_Bitrep`        | [`SimfsClient::bitrep`]                |
//!
//! The acquire calls return a [`SimfsStatus`] carrying error state and
//! the DV's estimated waiting time, which "the analysis can use for
//! debugging, profiling, and for saving compute hours/energy" (§III-C).
//!
//! [`SimulatorSession`] is the simulator-side half: the notifications a
//! launched re-simulation sends as DVLib intercepts its create/close
//! calls (§III-B).
//!
//! [`DvCluster`] is the multi-daemon routing tier: the same API surface
//! over K daemons, each owning a disjoint set of restart intervals.
//! DVLib hashes every key's interval to its owning daemon (the exact
//! rule [`crate::dv::DvRouter`] applies intra-process) and multiplexes
//! one write-coalescing [`SimfsClient`] connection per daemon; teardown
//! ([`DvCluster::finalize`] or drop) fans out to every member, so each
//! daemon releases this client's pins.
//!
//! # Connection lifetime
//!
//! The daemon's epoll front-end closes the connection *actively* after
//! `Bye`, after a `SimFinished`, and after any protocol error (the
//! threaded front-end merely stopped reading and dropped the socket).
//! Clients must treat EOF after a goodbye as a normal teardown — which
//! these APIs do: [`SimfsClient::finalize`] consumes the session, and a
//! mid-request EOF still surfaces as `UnexpectedEof`. Dropping a
//! session without `Bye` is also safe: the daemon maps the hangup to
//! `ClientGone` (releasing pins) or `SimFailed` exactly as before.

use crate::dv::DvRouter;
use crate::model::StepMath;
use crate::prefetch::{AccessLog, AccessRecord, ACCESS_LOG_CAPACITY};
use crate::wire::{self, ClientKind, FrameBatch, FrameReader, Membership, Request, Response};
use std::collections::HashSet;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Status of an acquire operation (§III-C `SIMFS_Status`).
#[derive(Clone, Debug, Default)]
pub struct SimfsStatus {
    /// Keys now available (and pinned for this client).
    pub ready: Vec<u64>,
    /// Keys that failed, with reasons (e.g. "restart failed").
    pub failed: Vec<(u64, String)>,
    /// Estimated waiting time for the pending keys, if the DV provided
    /// one.
    pub est_wait: Option<Duration>,
}

impl SimfsStatus {
    /// True if nothing failed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Handle for a non-blocking acquire (`SIMFS_Req`).
#[derive(Debug)]
pub struct AcquireRequest {
    req_id: u64,
    outstanding: HashSet<u64>,
    status: SimfsStatus,
    /// Keys the daemon reported `Queued` (they blocked on production):
    /// consumed by [`DvCluster`]'s digest recording — a blocked key's
    /// acquire-time epoch is not a ready point.
    queued: HashSet<u64>,
}

impl AcquireRequest {
    /// Keys still pending.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// True once every key resolved (ready or failed).
    pub fn done(&self) -> bool {
        self.outstanding.is_empty()
    }
}

/// An analysis session with the DV daemon (`SIMFS_Context`).
pub struct SimfsClient {
    /// Write half (a second handle to the same socket).
    stream: TcpStream,
    /// Buffered read half: drains multiple queued response frames per
    /// syscall; a read timeout never loses a partially received frame.
    reader: FrameReader<TcpStream>,
    client_id: u64,
    context: String,
    next_req: u64,
    /// Responses received while waiting for a different request (e.g. a
    /// `Ready` for an outstanding non-blocking acquire arriving during a
    /// `bitrep` round-trip). Consumed before reading the socket again.
    stray: Vec<Response>,
    /// Write-coalescing buffer: fire-and-forget frames (`Release`) are
    /// staged here and ride in the same write — and the same TCP
    /// segment — as the next request, halving the syscalls of the
    /// dominant release-then-acquire pattern. Flushed before anything
    /// that reads a response, so buffering is never observable beyond
    /// the release reaching the DV marginally later.
    pending_out: FrameBatch,
}

impl SimfsClient {
    /// `SIMFS_Init`: connects and performs the hello handshake.
    pub fn connect(addr: impl ToSocketAddrs, context: &str) -> io::Result<SimfsClient> {
        Self::connect_with(addr, context, None)
    }

    /// [`connect`](Self::connect) carrying a cluster-membership claim:
    /// the daemon verifies `(index, size, steps_hash)` against its own
    /// configuration at hello time and refuses the session on mismatch
    /// — the error names both sides' views. Used by [`DvCluster`] so a
    /// misconfigured member list or divergent [`StepMath`] fails loudly
    /// instead of silently misrouting intervals.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        context: &str,
        membership: Option<Membership>,
    ) -> io::Result<SimfsClient> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut reader = FrameReader::new(stream.try_clone()?);
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Analysis,
                context: context.to_string(),
                membership,
            }
            .encode(),
        )?;
        let frame = reader
            .read_frame()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { client_id } => Ok(SimfsClient {
                stream,
                reader,
                client_id,
                context: context.to_string(),
                next_req: 1,
                stray: Vec::new(),
                pending_out: FrameBatch::new(),
            }),
            Response::Error { message } => Err(io::Error::other(message)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// The DV-assigned client id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The context this session analyzes.
    pub fn context(&self) -> &str {
        &self.context
    }

    /// Sends `req` together with any staged fire-and-forget frames in
    /// one write.
    fn send(&mut self, req: &Request) -> io::Result<()> {
        self.pending_out.push_request(req);
        self.flush_pending()
    }

    /// Stages a fire-and-forget frame to ride the next coalesced write
    /// (how [`DvCluster`] attaches access digests to member traffic).
    fn stage(&mut self, req: &Request) {
        self.pending_out.push_request(req);
    }

    /// Delivers staged frames (if any) in a single write.
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending_out.is_empty() {
            return Ok(());
        }
        let result = self.stream.write_all(self.pending_out.as_bytes());
        self.pending_out.clear();
        result
    }

    /// `SIMFS_Acquire_nb`: requests `keys` without blocking.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<AcquireRequest> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Acquire {
            req_id,
            keys: keys.to_vec(),
        })?;
        Ok(AcquireRequest {
            req_id,
            outstanding: keys.iter().copied().collect(),
            status: SimfsStatus::default(),
            queued: HashSet::new(),
        })
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// Processes one incoming frame into the request's bookkeeping.
    fn dispatch(&mut self, req: &mut AcquireRequest, resp: Response) -> io::Result<()> {
        match resp {
            Response::Ready { req_id, key } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.ready.push(key);
                }
            Response::Failed {
                req_id,
                key,
                reason,
            } if req_id == req.req_id
                && req.outstanding.remove(&key) => {
                    req.status.failed.push((key, reason));
                }
            Response::Queued {
                req_id,
                key,
                est_wait_ms,
            } if req_id == req.req_id => {
                req.queued.insert(key);
                req.status.est_wait = Some(Duration::from_millis(est_wait_ms));
            }
            Response::Error { message } => {
                return Err(io::Error::other(message));
            }
            _ => {
                // A frame for a different outstanding request: with one
                // request in flight at a time this cannot happen; with
                // multiple, callers interleave wait() calls and each
                // request sees only its own frames because req_ids
                // differ. Dropping is safe for Queued (informational);
                // Ready/Failed for other requests are re-delivered by
                // the server only once, so multiplexing callers should
                // use waitsome on a merged request instead.
            }
        }
        Ok(())
    }

    /// Receives one response; `timeout: None` blocks, otherwise returns
    /// `Ok(None)` if no complete frame arrives in time. Partial frames
    /// stay buffered in the [`FrameReader`] — a timeout never
    /// desynchronizes the stream.
    fn pump_one(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        // Anything still staged must be on the wire before we wait for
        // responses (a buffered request would deadlock the wait).
        self.flush_pending()?;
        // Drain already-buffered frames without touching the socket (or
        // its timeout configuration).
        if let Some(body) = self.reader.pop_buffered()? {
            return Response::decode(&body).map(Some);
        }
        let Some(t) = timeout else {
            return match self.reader.read_frame()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the session",
                )),
            };
        };
        // Timed probe: exactly one read syscall, so a frame arriving in
        // pieces cannot stretch the wait past one timeout window
        // (read_frame loops and would re-arm the timeout per chunk).
        self.reader.get_ref().set_read_timeout(Some(t))?;
        let result = self.reader.fill_once();
        self.reader.get_ref().set_read_timeout(None)?;
        match result {
            Ok(0) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the session",
            )),
            Ok(_) => match self.reader.pop_buffered()? {
                Some(body) => Response::decode(&body).map(Some),
                None => Ok(None),
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Next response: strays first, then the socket.
    fn next_response(&mut self, timeout: Option<Duration>) -> io::Result<Option<Response>> {
        if !self.stray.is_empty() {
            return Ok(Some(self.stray.remove(0)));
        }
        self.pump_one(timeout)
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves.
    pub fn wait(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        while !req.done() {
            if let Some(resp) = self.next_response(None)? {
                self.dispatch(req, resp)?;
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Test`: non-blocking completion probe.
    pub fn test(&mut self, req: &mut AcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        // Drain whatever already arrived.
        while !req.done() {
            match self.next_response(Some(Duration::from_millis(1)))? {
                Some(resp) => self.dispatch(req, resp)?,
                None => break,
            }
        }
        Ok((req.done(), req.status.clone()))
    }

    /// `SIMFS_Waitsome`: blocks until at least one more key resolves;
    /// returns the status so far.
    pub fn waitsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let resolved_before = req.status.ready.len() + req.status.failed.len();
        while !req.done() && req.status.ready.len() + req.status.failed.len() == resolved_before {
            if let Some(resp) = self.next_response(None)? {
                self.dispatch(req, resp)?;
            }
        }
        Ok(req.status.clone())
    }

    /// `SIMFS_Testsome`: non-blocking; returns the resolved subset.
    pub fn testsome(&mut self, req: &mut AcquireRequest) -> io::Result<SimfsStatus> {
        let (_, status) = self.test(req)?;
        Ok(status)
    }

    /// `SIMFS_Release`: drops this client's pin on `key`. The frame is
    /// staged and coalesced into the next request's write (releases
    /// expect no response); sessions that release and then go idle
    /// should call [`flush`](Self::flush) to push the pin drop out
    /// immediately.
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        self.pending_out.push_request(&Request::Release { key });
        // Cap the staging buffer: a pathological release-only loop
        // still reaches the daemon in bounded batches.
        if self.pending_out.as_bytes().len() >= 16 * 1024 {
            self.flush_pending()?;
        }
        Ok(())
    }

    /// Delivers any staged fire-and-forget frames now.
    pub fn flush(&mut self) -> io::Result<()> {
        self.flush_pending()
    }

    /// `SIMFS_Bitrep`: checks the materialized file against the
    /// recorded checksum of the initial simulation. `Ok(None)` when no
    /// checksum was recorded for this key.
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Bitrep { req_id, key })?;
        loop {
            let Some(resp) = self.pump_one(None)? else {
                continue;
            };
            match resp {
                Response::BitrepResult {
                    req_id: r,
                    matches,
                    known,
                    ..
                } if r == req_id => {
                    return Ok(known.then_some(matches));
                }
                Response::Failed { req_id: r, reason, .. } if r == req_id => {
                    return Err(io::Error::other(reason));
                }
                Response::Error { message } => return Err(io::Error::other(message)),
                other => self.stray.push(other),
            }
        }
    }

    /// Queries the context's runtime statistics (the profiling support
    /// the status API provides, §III-C).
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let req_id = self.next_req;
        self.next_req += 1;
        self.send(&Request::Status { req_id })?;
        loop {
            let Some(resp) = self.pump_one(None)? else {
                continue;
            };
            match resp {
                Response::StatusInfo {
                    req_id: r,
                    hits,
                    misses,
                    restarts,
                    produced_steps,
                    active_sims,
                } if r == req_id => {
                    return Ok(ContextStats {
                        hits,
                        misses,
                        restarts,
                        produced_steps,
                        active_sims,
                    });
                }
                Response::Error { message } => return Err(io::Error::other(message)),
                other => self.stray.push(other),
            }
        }
    }

    /// `SIMFS_Finalize`: orderly goodbye; the DV releases this client's
    /// pins and kills its idle prefetches. The daemon closes the
    /// connection once the `Bye` is processed.
    pub fn finalize(mut self) -> io::Result<()> {
        self.send(&Request::Bye)
    }

    /// Closes the session without the `Bye` handshake, after delivering
    /// any staged `Release` frames. The daemon maps the resulting
    /// hangup to `ClientGone` exactly as for a plain drop — but the
    /// staged releases reach it first, so its pin counts drain through
    /// the normal path instead of the disconnect GC.
    pub fn close(mut self) -> io::Result<()> {
        self.flush_pending()
    }
}

impl Drop for SimfsClient {
    fn drop(&mut self) {
        // Best-effort: `Release` frames staged for write-coalescing
        // must not die in the buffer — a dropped session with staged
        // releases would otherwise strand daemon-side pins until the
        // hangup-driven `ClientGone` GC runs. Errors are ignored; the
        // socket is going away either way and `ClientGone` remains the
        // backstop.
        let _ = self.flush_pending();
    }
}

/// Runtime statistics of a simulation context, as reported by the DV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextStats {
    /// Cache hits so far.
    pub hits: u64,
    /// Cache misses so far.
    pub misses: u64,
    /// Re-simulations launched.
    pub restarts: u64,
    /// Output steps produced.
    pub produced_steps: u64,
    /// Currently running re-simulations.
    pub active_sims: u64,
}

/// Handle for a non-blocking acquire spanning a [`DvCluster`]: one
/// member-local [`AcquireRequest`] per daemon that received keys.
#[derive(Debug)]
pub struct ClusterAcquireRequest {
    /// Indexed by cluster member; `None` where no keys routed.
    parts: Vec<Option<AcquireRequest>>,
    /// The requested keys in request order, with the acquire-time
    /// epoch: the digest observation of this request, recorded into
    /// the member logs only once the request resolves — at which point
    /// the per-key `Queued` responses reveal which epochs were true
    /// ready points.
    keys: Vec<u64>,
    epoch: u64,
    /// Observation already recorded (guards double-recording when both
    /// `test` and `wait` see the request complete).
    observed: bool,
}

impl ClusterAcquireRequest {
    /// Keys still pending across all members.
    pub fn outstanding(&self) -> usize {
        self.parts.iter().flatten().map(AcquireRequest::outstanding).sum()
    }

    /// True once every key resolved (ready or failed) on every member.
    pub fn done(&self) -> bool {
        self.parts.iter().flatten().all(AcquireRequest::done)
    }

    /// Merged status across the members so far.
    fn merged(&self) -> SimfsStatus {
        let mut status = SimfsStatus::default();
        for part in self.parts.iter().flatten() {
            status.ready.extend_from_slice(&part.status.ready);
            status.failed.extend_from_slice(part.status.failed.as_slice());
            status.est_wait = match (status.est_wait, part.status.est_wait) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        status
    }
}

/// An analysis session spanning a cluster of DV daemons (§III scaled
/// out): daemon `k` of `K` owns the restart intervals with
/// `interval % K == k`, so every request routes to exactly one member —
/// by the same interval-granularity hash [`crate::dv::DvRouter`] uses
/// for intra-process shards (raw `key % K` would scatter each
/// re-simulation's claims, waiters and productions across daemons).
/// Each member connection is a full [`SimfsClient`], so the
/// write-coalescing of fire-and-forget `Release` frames applies
/// per-daemon unchanged.
///
/// The API mirrors [`SimfsClient`]; multi-key acquires are split by
/// owning member and merged back into one [`SimfsStatus`].
///
/// # Access-stream digests
///
/// Routing splits the stream: each member daemon sees only the keys of
/// the intervals it owns, so its prefetch agents — which need the full
/// sequence to detect direction and cadence — would observe a
/// subsequence full of artificial jumps. The cluster therefore records
/// its **full pre-routing access stream** into one bounded lossy
/// [`AccessLog`] per member and forwards each member's copy as a
/// fire-and-forget `AccessDigest` frame riding that member's next
/// coalesced write. Members told at hello time that they are clustered
/// ignore their local (post-routing) view and observe the forwarded
/// stream instead. Overflows degrade to counted drops, never blocking
/// or unbounded memory; a single-daemon "cluster" skips forwarding —
/// its local view already is the full stream.
pub struct DvCluster {
    members: Vec<SimfsClient>,
    router: DvRouter,
    /// Per-member copy of the full pre-routing access stream, drained
    /// into an `AccessDigest` on that member's next coalesced write.
    logs: Vec<AccessLog>,
    /// Clock for record epochs (client-side; only gaps carry meaning).
    epoch: Instant,
    /// Reused drain buffer.
    drain_scratch: Vec<AccessRecord>,
}

impl DvCluster {
    /// Connects to every daemon of the cluster, in member order.
    /// `steps` must match the context's step math on the daemons —
    /// it is what both sides hash intervals with; the hello handshake
    /// carries `(index, size, config_hash(steps))` so a daemon whose
    /// position or cadence disagrees rejects the session immediately.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn connect<A: ToSocketAddrs>(
        addrs: &[A],
        context: &str,
        steps: StepMath,
    ) -> io::Result<DvCluster> {
        assert!(!addrs.is_empty(), "a cluster needs at least one daemon");
        let size = addrs.len() as u32;
        let steps_hash = steps.config_hash();
        let members = addrs
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                SimfsClient::connect_with(
                    addr,
                    context,
                    Some(Membership {
                        index: index as u32,
                        size,
                        steps_hash,
                    }),
                )
            })
            .collect::<io::Result<Vec<_>>>()?;
        let router = DvRouter::new(steps, size);
        let logs = (0..members.len())
            .map(|_| AccessLog::new(ACCESS_LOG_CAPACITY))
            .collect();
        Ok(DvCluster {
            members,
            router,
            logs,
            epoch: Instant::now(),
            drain_scratch: Vec::new(),
        })
    }

    /// Records a *resolved* request's accesses (in request order, at
    /// their acquire-time epoch) into every member's digest log.
    /// Deferred to resolution so the per-key `Queued` responses can
    /// mark which epochs were true ready points — a blocked key's
    /// following gap is production wait, not consumption, and must not
    /// be sampled into tau_cli (the same rule the daemon applies to
    /// its local records). Overlapping non-blocking requests may
    /// record out of resolution order; replay skips the resulting
    /// non-positive gaps, so disorder degrades sampling, never
    /// corrupts it. No-op for single-member clusters: the one daemon's
    /// local view already is the full stream.
    fn observe_resolved(&mut self, req: &mut ClusterAcquireRequest) {
        if self.members.len() <= 1 || req.observed {
            return;
        }
        req.observed = true;
        for &key in &req.keys {
            let ready = !req
                .parts
                .iter()
                .flatten()
                .any(|part| part.queued.contains(&key));
            for log in &mut self.logs {
                // The member daemon attributes records to its own
                // session client id; the field here is a placeholder.
                log.push(AccessRecord {
                    client: 0,
                    key,
                    epoch: req.epoch,
                    ready,
                });
            }
        }
    }

    /// Stages member `m`'s pending digest (if any) to ride its next
    /// coalesced write.
    fn stage_digest(&mut self, m: usize) {
        if self.members.len() <= 1 {
            return;
        }
        let log = &mut self.logs[m];
        if log.is_empty() && log.dropped() == 0 {
            return;
        }
        self.drain_scratch.clear();
        let dropped = log.drain_into(&mut self.drain_scratch);
        let records = self
            .drain_scratch
            .iter()
            .map(|r| (r.key, r.epoch, r.ready))
            .collect();
        self.members[m].stage(&Request::AccessDigest { dropped, records });
    }

    /// Number of daemons in the cluster.
    pub fn members(&self) -> usize {
        self.members.len()
    }

    /// The member owning `key`'s restart interval.
    pub fn member_of(&self, key: u64) -> usize {
        self.router.shard_of_key(key)
    }

    /// `SIMFS_Acquire_nb` across the cluster: each member receives the
    /// keys it owns in one request.
    ///
    /// On a partial failure (a member's daemon died mid-send) the
    /// members that already took their subset are unwound — their
    /// requests waited out and every key that became ready released —
    /// before the error is returned. Without that, the orphaned
    /// `Ready` frames would be dropped by later requests' dispatch and
    /// the pins would survive on the healthy daemons until the whole
    /// session's teardown.
    pub fn acquire_nb(&mut self, keys: &[u64]) -> io::Result<ClusterAcquireRequest> {
        // The digest records the *pre-routing* stream — every member's
        // agents must see the whole trajectory, not the interval
        // subsequence the split below sends them. The observation is
        // stamped now (acquire time) but recorded into the member logs
        // only when the request resolves, once the Queued responses
        // have revealed which keys blocked (see `observe_resolved`).
        let epoch = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut per_member: Vec<Vec<u64>> = vec![Vec::new(); self.members.len()];
        for &key in keys {
            per_member[self.member_of(key)].push(key);
        }
        let mut parts: Vec<Option<AcquireRequest>> = Vec::with_capacity(self.members.len());
        for (i, keys) in per_member.iter().enumerate() {
            if keys.is_empty() {
                parts.push(None);
                continue;
            }
            // The member's digest rides in front of its acquire, in the
            // same write: observation reaches it no later than the keys
            // it will serve.
            self.stage_digest(i);
            match self.members[i].acquire_nb(keys) {
                Ok(part) => parts.push(Some(part)),
                Err(e) => {
                    for (member, part) in self.members.iter_mut().zip(&mut parts) {
                        let Some(part) = part else { continue };
                        if member.wait(part).is_ok() {
                            for key in part.status.ready.clone() {
                                let _ = member.release(key);
                            }
                            let _ = member.flush();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(ClusterAcquireRequest {
            parts,
            keys: keys.to_vec(),
            epoch,
            observed: false,
        })
    }

    /// `SIMFS_Acquire`: blocks until every key is ready or failed.
    pub fn acquire(&mut self, keys: &[u64]) -> io::Result<SimfsStatus> {
        let mut req = self.acquire_nb(keys)?;
        self.wait(&mut req)
    }

    /// `SIMFS_Wait`: blocks until the request fully resolves on every
    /// member (members resolve independently, so waiting them out one
    /// at a time loses no concurrency — each daemon keeps producing
    /// while another is being drained).
    ///
    /// If any member fails, the others are still waited out and every
    /// key this request acquired is released before the error returns
    /// — an erroring `wait` means the caller treats the whole acquire
    /// as failed and will never release, so the cluster must not leave
    /// its pins behind on the healthy daemons (the same unwind
    /// [`acquire_nb`](Self::acquire_nb) applies to partial sends).
    pub fn wait(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<SimfsStatus> {
        let mut first_err: Option<io::Error> = None;
        for (member, part) in self.members.iter_mut().zip(&mut req.parts) {
            let Some(part) = part else { continue };
            if let Err(e) = member.wait(part) {
                // Keep draining the remaining members: their requests
                // are already in flight and abandoning them would
                // strand whatever they pin.
                first_err.get_or_insert(e);
            }
        }
        let Some(err) = first_err else {
            self.observe_resolved(req);
            return Ok(req.merged());
        };
        for (member, part) in self.members.iter_mut().zip(&req.parts) {
            let Some(part) = part else { continue };
            for &key in &part.status.ready {
                let _ = member.release(key);
            }
            let _ = member.flush();
        }
        Err(err)
    }

    /// `SIMFS_Test`: non-blocking completion probe over all members.
    ///
    /// A member error gets the same unwind as [`wait`](Self::wait): the
    /// remaining members are still probed, and every key this request
    /// already acquired is released before the error returns — an
    /// erroring probe means the caller treats the whole acquire as
    /// failed and will never release, so the pins must not survive on
    /// the healthy daemons.
    pub fn test(&mut self, req: &mut ClusterAcquireRequest) -> io::Result<(bool, SimfsStatus)> {
        let mut first_err: Option<io::Error> = None;
        for (member, part) in self.members.iter_mut().zip(&mut req.parts) {
            let Some(part) = part else { continue };
            if let Err(e) = member.test(part) {
                first_err.get_or_insert(e);
            }
        }
        let Some(err) = first_err else {
            if req.done() {
                self.observe_resolved(req);
            }
            return Ok((req.done(), req.merged()));
        };
        for (member, part) in self.members.iter_mut().zip(&req.parts) {
            let Some(part) = part else { continue };
            for &key in &part.status.ready {
                let _ = member.release(key);
            }
            let _ = member.flush();
        }
        Err(err)
    }

    /// `SIMFS_Release`: staged for write-coalescing on the owning
    /// member's connection (any pending digest for that member is
    /// staged ahead of it).
    pub fn release(&mut self, key: u64) -> io::Result<()> {
        let member = self.member_of(key);
        self.stage_digest(member);
        self.members[member].release(key)
    }

    /// Delivers staged fire-and-forget frames on every member now.
    pub fn flush(&mut self) -> io::Result<()> {
        for member in &mut self.members {
            member.flush()?;
        }
        Ok(())
    }

    /// `SIMFS_Bitrep` on the member owning `key`.
    pub fn bitrep(&mut self, key: u64) -> io::Result<Option<bool>> {
        let member = self.member_of(key);
        self.members[member].bitrep(key)
    }

    /// Context statistics summed over every member (each daemon counts
    /// only the traffic of the intervals it owns).
    pub fn status(&mut self) -> io::Result<ContextStats> {
        let mut total = ContextStats {
            hits: 0,
            misses: 0,
            restarts: 0,
            produced_steps: 0,
            active_sims: 0,
        };
        for member in &mut self.members {
            let s = member.status()?;
            total.hits += s.hits;
            total.misses += s.misses;
            total.restarts += s.restarts;
            total.produced_steps += s.produced_steps;
            total.active_sims += s.active_sims;
        }
        Ok(total)
    }

    /// `SIMFS_Finalize` fanned out: an orderly goodbye to every daemon
    /// in the cluster, so each releases this client's pins. The first
    /// error is reported after all members were attempted (a failed
    /// goodbye must not strand pins on the remaining daemons — their
    /// sockets still close, mapping to `ClientGone`).
    pub fn finalize(self) -> io::Result<()> {
        let mut result = Ok(());
        for member in self.members {
            let r = member.finalize();
            if result.is_ok() {
                result = r;
            }
        }
        result
    }
}

/// The simulator side of the protocol: what a launched re-simulation
/// reports as it runs (used by the `simfs-simd` binary).
pub struct SimulatorSession {
    stream: TcpStream,
}

impl SimulatorSession {
    /// Connects a re-simulation identified by `sim_id` (from the job
    /// environment) to the daemon.
    pub fn connect(
        addr: impl ToSocketAddrs,
        context: &str,
        sim_id: u64,
    ) -> io::Result<SimulatorSession> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        wire::write_frame(
            &mut stream,
            &Request::Hello {
                kind: ClientKind::Simulator { sim_id },
                context: context.to_string(),
                membership: None,
            }
            .encode(),
        )?;
        let frame = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no hello reply"))?;
        match Response::decode(&frame)? {
            Response::HelloOk { .. } => Ok(SimulatorSession { stream }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply {other:?}"),
            )),
        }
    }

    /// Restart loaded; production begins (ends the `alpha_sim` phase).
    pub fn started(&mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimStarted.encode())
    }

    /// One output step was published (the intercepted `close`, Fig. 4
    /// step 4).
    pub fn file_produced(&mut self, key: u64, size: u64) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::FileProduced { key, size }.encode())
    }

    /// The assigned range is complete.
    pub fn finished(mut self) -> io::Result<()> {
        wire::write_frame(&mut self.stream, &Request::SimFinished.encode())
    }
}
