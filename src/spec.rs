//! Declarative simulation-context specifications.
//!
//! The paper configures simulators through LUA driver scripts (§III-B).
//! The equivalent here is a plain-text spec file — one `key = value`
//! per line — that fully describes a context: the simulator and its
//! cadences, the naming convention, the cache policy and budget, and
//! the daemon's runtime knobs. The `simfs-dv` binary serves a context
//! straight from such a file (see `examples/` and `tests/`).
//!
//! ```text
//! # climate.ctx — a SimFS context specification
//! name       = climate
//! sim        = heat2d
//! seed       = 2026
//! dd         = 5
//! dr         = 60
//! timesteps  = 720
//! policy     = dcl
//! smax       = 4
//! cache_steps = 36
//! prefix     = out-
//! suffix     = .sdf
//! pad        = 6
//! tau_ms     = 30
//! alpha_ms   = 5
//! data_dir   = /var/simfs/climate
//! ```

use simfs_core::driver::PatternDriver;
use simfs_core::model::{ContextCfg, StepMath};
use simulators::SimKind;
use std::collections::HashMap;

/// A parsed context specification.
#[derive(Clone, Debug, PartialEq)]
pub struct ContextSpec {
    /// Context name (`SIMFS_Init` argument).
    pub name: String,
    /// Simulator kind.
    pub sim: SimKind,
    /// Initial-condition seed.
    pub seed: u64,
    /// Timesteps per output step.
    pub dd: u64,
    /// Timesteps per restart step.
    pub dr: u64,
    /// Timeline length in timesteps.
    pub timesteps: u64,
    /// Replacement policy name.
    pub policy: String,
    /// Maximum concurrent re-simulations.
    pub smax: u32,
    /// Cache budget in output steps.
    pub cache_steps: u64,
    /// Output filename prefix.
    pub prefix: String,
    /// Output filename suffix.
    pub suffix: String,
    /// Zero-pad width of the step number.
    pub pad: usize,
    /// Emulated per-step production time (ms) for `simfs-simd`.
    pub tau_ms: u64,
    /// Emulated restart latency (ms) for `simfs-simd`.
    pub alpha_ms: u64,
    /// Storage-area directory.
    pub data_dir: String,
}

impl ContextSpec {
    /// Parses a spec document. Unknown keys are rejected (typos in a
    /// daemon config should fail loudly, not silently default).
    pub fn parse(text: &str) -> Result<ContextSpec, String> {
        let mut map: HashMap<&str, &str> = HashMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let key = key.trim();
            let value = value.trim();
            if map.insert(key, value).is_some() {
                return Err(format!("line {}: duplicate key {key:?}", lineno + 1));
            }
        }

        let known = [
            "name", "sim", "seed", "dd", "dr", "timesteps", "policy", "smax",
            "cache_steps", "prefix", "suffix", "pad", "tau_ms", "alpha_ms", "data_dir",
        ];
        for key in map.keys() {
            if !known.contains(key) {
                return Err(format!("unknown key {key:?} (known: {known:?})"));
            }
        }

        let get = |key: &str| -> Result<&str, String> {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing required key {key:?}"))
        };
        let parse_u64 = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("key {key:?}: {e}"))
        };

        let sim_name = get("sim")?;
        let spec = ContextSpec {
            name: get("name")?.to_string(),
            sim: SimKind::from_name(sim_name)
                .ok_or_else(|| format!("unknown simulator {sim_name:?}"))?,
            seed: map.get("seed").map_or(Ok(0), |v| {
                v.parse().map_err(|e| format!("key \"seed\": {e}"))
            })?,
            dd: parse_u64("dd")?,
            dr: parse_u64("dr")?,
            timesteps: parse_u64("timesteps")?,
            policy: map.get("policy").unwrap_or(&"dcl").to_string(),
            smax: map.get("smax").map_or(Ok(8), |v| {
                v.parse().map_err(|e| format!("key \"smax\": {e}"))
            })?,
            cache_steps: parse_u64("cache_steps")?,
            prefix: map.get("prefix").unwrap_or(&"out-").to_string(),
            suffix: map.get("suffix").unwrap_or(&".sdf").to_string(),
            pad: map.get("pad").map_or(Ok(6), |v| {
                v.parse().map_err(|e| format!("key \"pad\": {e}"))
            })?,
            tau_ms: map.get("tau_ms").map_or(Ok(0), |v| {
                v.parse().map_err(|e| format!("key \"tau_ms\": {e}"))
            })?,
            alpha_ms: map.get("alpha_ms").map_or(Ok(0), |v| {
                v.parse().map_err(|e| format!("key \"alpha_ms\": {e}"))
            })?,
            data_dir: get("data_dir")?.to_string(),
        };
        if spec.dd == 0 || !spec.dr.is_multiple_of(spec.dd) {
            return Err(format!(
                "dr ({}) must be a positive multiple of dd ({})",
                spec.dr, spec.dd
            ));
        }
        if simcache::policy_by_name(&spec.policy, 8).is_none() {
            return Err(format!("unknown policy {:?}", spec.policy));
        }
        Ok(spec)
    }

    /// Renders back to the spec format (for `--dump-spec` style tools).
    pub fn render(&self) -> String {
        format!(
            "name = {}\nsim = {}\nseed = {}\ndd = {}\ndr = {}\ntimesteps = {}\n\
             policy = {}\nsmax = {}\ncache_steps = {}\nprefix = {}\nsuffix = {}\n\
             pad = {}\ntau_ms = {}\nalpha_ms = {}\ndata_dir = {}\n",
            self.name,
            self.sim.name(),
            self.seed,
            self.dd,
            self.dr,
            self.timesteps,
            self.policy,
            self.smax,
            self.cache_steps,
            self.prefix,
            self.suffix,
            self.pad,
            self.tau_ms,
            self.alpha_ms,
            self.data_dir,
        )
    }

    /// The cadence math of this context.
    pub fn step_math(&self) -> StepMath {
        StepMath::new(self.dd, self.dr, self.timesteps)
    }

    /// Builds the [`ContextCfg`] (step size taken from a sample output
    /// of the configured simulator).
    pub fn context_cfg(&self) -> ContextCfg {
        let sample = simulators::build_sim(self.sim, self.seed).output().encode();
        let step_bytes = sample.len() as u64;
        ContextCfg::new(
            &self.name,
            self.step_math(),
            step_bytes,
            self.cache_steps * step_bytes,
        )
        .with_policy(&self.policy)
        .with_smax(self.smax)
    }

    /// Builds the naming-convention driver, wired to launch `program`
    /// (normally the `simfs-simd` binary) with this spec's simulator
    /// arguments.
    pub fn driver(&self, program: &str) -> PatternDriver {
        PatternDriver::new(&self.prefix, &self.suffix, self.pad).with_program(
            program,
            vec![
                "--sim".into(),
                self.sim.name().into(),
                "--dd".into(),
                self.dd.to_string(),
                "--dr".into(),
                self.dr.to_string(),
                "--seed".into(),
                self.seed.to_string(),
                "--tau-ms".into(),
                self.tau_ms.to_string(),
                "--alpha-ms".into(),
                self.alpha_ms.to_string(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs_core::driver::SimDriver;

    const SPEC: &str = "\
# demo context
name = climate
sim = heat2d
seed = 2026
dd = 5
dr = 60
timesteps = 720
policy = dcl
smax = 4
cache_steps = 36
data_dir = /tmp/simfs-demo
";

    #[test]
    fn parses_with_defaults() {
        let spec = ContextSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "climate");
        assert_eq!(spec.sim, SimKind::Heat2d);
        assert_eq!(spec.prefix, "out-", "default");
        assert_eq!(spec.pad, 6, "default");
        assert_eq!(spec.smax, 4);
        assert_eq!(spec.step_math().outputs_per_interval(), 12);
    }

    #[test]
    fn roundtrips_through_render() {
        let spec = ContextSpec::parse(SPEC).unwrap();
        let again = ContextSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn rejects_unknown_keys_and_typos() {
        let err = ContextSpec::parse(&format!("{SPEC}polciy = lru\n")).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = ContextSpec::parse(&format!("{SPEC}name = again\n")).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_missing_required() {
        let err = ContextSpec::parse("name = x\n").unwrap_err();
        assert!(err.contains("missing required"), "{err}");
    }

    #[test]
    fn rejects_bad_cadence() {
        let bad = SPEC.replace("dr = 60", "dr = 61");
        let err = ContextSpec::parse(&bad).unwrap_err();
        assert!(err.contains("multiple of dd"), "{err}");
    }

    #[test]
    fn rejects_unknown_policy_and_sim() {
        let bad = SPEC.replace("policy = dcl", "policy = clock");
        assert!(ContextSpec::parse(&bad).unwrap_err().contains("policy"));
        let bad = SPEC.replace("sim = heat2d", "sim = cosmo");
        assert!(ContextSpec::parse(&bad).unwrap_err().contains("simulator"));
    }

    #[test]
    fn builds_cfg_and_driver() {
        let spec = ContextSpec::parse(SPEC).unwrap();
        let cfg = spec.context_cfg();
        assert_eq!(cfg.name, "climate");
        assert_eq!(cfg.policy, "dcl");
        assert!(cfg.cache_capacity > 0);
        let driver = spec.driver("simfs-simd");
        assert_eq!(driver.filename_of(7), "out-000007.sdf");
        let job = driver.make_job(1, 12, 0);
        assert!(job.command_line().contains("--sim heat2d"));
        assert!(job.command_line().contains("--dd 5"));
    }
}
